"""Unit tests for records, kvmap and the JMT."""

import pytest

from repro.common.errors import EngineError, KeyNotFoundError
from repro.engine import (
    JournalEntry,
    JournalFlag,
    JournalMappingTable,
    KeyValueMap,
    Record,
    value_tag,
)


def make_entry(key, version, journal_lba=0, **kwargs):
    defaults = dict(key=key, version=version, target_lba=1000 + key * 8,
                    target_nsectors=1, value_bytes=256, stored_bytes=256,
                    journal_lba=journal_lba, journal_nsectors=1)
    defaults.update(kwargs)
    return JournalEntry(**defaults)


class TestRecord:
    def test_tag(self):
        record = Record(key=7, size_bytes=300, lba=100, nsectors=1)
        assert record.tag == (7, 0)
        record.version = 3
        assert record.tag == (7, 3)

    def test_size_validation(self):
        with pytest.raises(EngineError):
            Record(key=1, size_bytes=0, lba=0, nsectors=1)

    def test_sector_capacity_validated(self):
        with pytest.raises(EngineError):
            Record(key=1, size_bytes=1025, lba=0, nsectors=0)

    def test_value_tag_helper(self):
        assert value_tag(3, 9) == (3, 9)


class TestJournalEntry:
    def test_defaults(self):
        entry = make_entry(1, 1)
        assert entry.flag is JournalFlag.NEW
        assert entry.is_latest
        assert not entry.committed
        assert entry.tag == (1, 1)

    def test_validation(self):
        with pytest.raises(EngineError):
            make_entry(1, 1, journal_nsectors=0)
        with pytest.raises(EngineError):
            make_entry(1, 1, src_offset=-1)


class TestKeyValueMap:
    def test_insert_and_get(self):
        kvmap = KeyValueMap(1000, 100)
        record = kvmap.insert(5, 300)
        assert record.lba == 1000
        assert record.nsectors == 1
        assert kvmap.get(5) is record
        assert 5 in kvmap and 6 not in kvmap

    def test_sequential_allocation(self):
        kvmap = KeyValueMap(1000, 100)
        a = kvmap.insert(1, 1024)  # 2 sectors
        b = kvmap.insert(2, 100)   # 1 sector
        assert a.lba == 1000 and b.lba == 1002
        assert kvmap.used_sectors == 3

    def test_alignment(self):
        kvmap = KeyValueMap(1000, 100, align_sectors=4)
        a = kvmap.insert(1, 300)
        b = kvmap.insert(2, 300)
        assert a.nsectors == 4  # rounded to the unit
        assert b.lba == 1004
        assert b.lba % 4 == 0

    def test_misaligned_region_rejected(self):
        with pytest.raises(EngineError):
            KeyValueMap(1001, 100, align_sectors=4)

    def test_stored_bytes_override(self):
        kvmap = KeyValueMap(1000, 100)
        record = kvmap.insert(1, 2000, stored_bytes=1024)
        assert record.size_bytes == 2000
        assert record.nsectors == 2  # sized by the stored footprint

    def test_duplicate_key_rejected(self):
        kvmap = KeyValueMap(1000, 100)
        kvmap.insert(1, 100)
        with pytest.raises(EngineError):
            kvmap.insert(1, 100)

    def test_region_exhaustion(self):
        kvmap = KeyValueMap(1000, 2)
        kvmap.insert(1, 1024)
        with pytest.raises(EngineError):
            kvmap.insert(2, 100)

    def test_missing_key(self):
        with pytest.raises(KeyNotFoundError):
            KeyValueMap(0, 10).get(99)

    def test_bump_version(self):
        kvmap = KeyValueMap(0, 10)
        kvmap.insert(1, 100)
        assert kvmap.bump_version(1) == 1
        assert kvmap.bump_version(1) == 2
        assert kvmap.get(1).version == 2


class TestJournalMappingTable:
    def test_add_and_lookup(self):
        jmt = JournalMappingTable()
        entry = make_entry(1, 1)
        jmt.add(entry)
        assert jmt.lookup(1) is entry
        assert len(jmt) == 1
        assert jmt.bytes_logged == 256

    def test_resupersede_marks_old(self):
        """The §II-B case study: updating A again flags the old log OLD."""
        jmt = JournalMappingTable()
        first = make_entry(1, 1)
        second = make_entry(1, 2, journal_lba=2)
        jmt.add(first)
        jmt.add(second)
        assert first.flag is JournalFlag.OLD
        assert second.flag is JournalFlag.NEW
        assert jmt.lookup(1) is second
        assert len(jmt) == 2
        assert jmt.distinct_keys == 1

    def test_latest_entries_skip_old(self):
        jmt = JournalMappingTable()
        jmt.add(make_entry(1, 1))
        jmt.add(make_entry(2, 1, journal_lba=1))
        jmt.add(make_entry(1, 2, journal_lba=2))
        latest = jmt.latest_entries()
        assert [(e.key, e.version) for e in latest] == [(2, 1), (1, 2)]

    def test_latest_ratio(self):
        jmt = JournalMappingTable()
        assert jmt.latest_ratio() == 0.0
        for version in range(1, 5):
            jmt.add(make_entry(1, version))
        jmt.add(make_entry(2, 1))
        assert jmt.latest_ratio() == pytest.approx(2 / 5)

    def test_clear(self):
        jmt = JournalMappingTable()
        jmt.add(make_entry(1, 1))
        jmt.clear()
        assert len(jmt) == 0
        assert jmt.lookup(1) is None
        assert jmt.bytes_logged == 0
