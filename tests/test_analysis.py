"""Unit tests for the analysis helpers (tables, comparisons)."""

import pytest

from repro.analysis import (
    Claim,
    claims_table,
    format_cell,
    format_table,
    improvement_pct,
    monotonic,
    ordering_holds,
    reduction_pct,
    speedup,
)


class TestFormatting:
    def test_format_cell_float(self):
        assert format_cell(3.14159) == "3.14"
        assert format_cell(3.14159, ".1f") == "3.1"

    def test_format_cell_non_float(self):
        assert format_cell(42) == "42"
        assert format_cell("abc") == "abc"
        assert format_cell(True) == "True"

    def test_table_alignment(self):
        table = format_table(["name", "value"],
                             [["a", 1.5], ["longer", 22.25]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        # Numbers right-aligned: the 1.50 ends at the same column as 22.25.
        assert lines[2].rstrip().endswith("1.50")
        assert lines[3].rstrip().endswith("22.25")

    def test_table_title(self):
        table = format_table(["x"], [[1]], title="My title")
        assert table.splitlines()[0] == "My title"

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2


class TestRatios:
    def test_reduction(self):
        assert reduction_pct(100, 25) == pytest.approx(75.0)
        assert reduction_pct(0, 10) == 0.0

    def test_improvement(self):
        assert improvement_pct(100, 108) == pytest.approx(8.0)
        assert improvement_pct(0, 10) == 0.0

    def test_speedup(self):
        assert speedup(100, 25) == pytest.approx(4.0)
        assert speedup(100, 0) == float("inf")


class TestMonotonic:
    def test_increasing(self):
        assert monotonic([1, 2, 3])
        assert not monotonic([1, 3, 2])

    def test_decreasing(self):
        assert monotonic([3, 2, 1], increasing=False)
        assert not monotonic([1, 2], increasing=False)

    def test_tolerance(self):
        assert monotonic([1.0, 0.99, 1.5], tolerance=0.05)
        assert not monotonic([1.0, 0.8, 1.5], tolerance=0.05)


class TestOrdering:
    def test_holds(self):
        data = {"a": 10.0, "b": 5.0, "c": 1.0}
        assert ordering_holds(data, ["a", "b", "c"]) is None

    def test_violation_reported(self):
        data = {"a": 1.0, "b": 5.0}
        violation = ordering_holds(data, ["a", "b"])
        assert violation is not None
        assert "a" in violation and "b" in violation

    def test_slack_tolerates_small_inversion(self):
        data = {"a": 0.98, "b": 1.0}
        assert ordering_holds(data, ["a", "b"]) is not None
        assert ordering_holds(data, ["a", "b"], slack=1.05) is None

    def test_smaller_first(self):
        data = {"a": 1.0, "b": 5.0}
        assert ordering_holds(data, ["a", "b"], larger_first=False) is None


class TestClaims:
    def test_same_direction(self):
        assert Claim("f", "m", 50.0, 30.0).same_direction
        assert not Claim("f", "m", 50.0, -5.0).same_direction
        assert Claim("f", "m", 0.0, 0.0).same_direction

    def test_within_factor_two(self):
        assert Claim("f", "m", 50.0, 30.0).within_factor_two
        assert not Claim("f", "m", 50.0, 10.0).within_factor_two
        assert not Claim("f", "m", 50.0, -30.0).within_factor_two

    def test_claims_table_renders(self):
        table = claims_table([
            Claim("fig8a", "redundant reduction", 94.3, 95.0),
            Claim("fig9", "p999 reduction", 92.1, 55.0, note="coarse"),
        ], title="claims")
        assert "fig8a" in table and "94.30" in table
        assert "coarse" in table


class TestExport:
    def test_to_jsonable_dataclass_and_tuple_keys(self):
        import dataclasses
        from repro.analysis import to_jsonable

        @dataclasses.dataclass
        class Sample:
            series: dict
            values: list

        data = Sample(series={("zipfian", "checkin"): 1.5}, values=[1, (2, 3)])
        out = to_jsonable(data)
        assert out == {"series": {"zipfian/checkin": 1.5},
                       "values": [1, [2, 3]]}

    def test_to_jsonable_fallback_to_str(self):
        from repro.analysis import to_jsonable

        class Opaque:
            def __str__(self):
                return "opaque!"

        assert to_jsonable({"x": Opaque()}) == {"x": "opaque!"}

    def test_save_json_roundtrip(self, tmp_path):
        import json
        from repro.analysis import save_json

        path = save_json({"a": [1, 2]}, tmp_path / "out" / "r.json")
        assert json.loads(path.read_text()) == {"a": [1, 2]}
