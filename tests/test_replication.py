"""Replication subsystem: frames, snapshots, shipping, promote, campaign.

Covers the durability contract end to end: validated frame streams
(typed refusal on any damage), Aurora-shaped snapshot export/restore,
primary→replica journal shipping with NACK re-ship, promote-on-failure
with zero acked-write loss, and the seeded kill-the-primary campaign —
plus the zero-overhead-when-disabled byte-identity guarantee and the
semi-sync ``repl_ship`` blame stage.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import (
    CorruptFrameError,
    ReplicationError,
    SnapshotFrameError,
    TruncatedFrameError,
)
from repro.common.rng import SeededRng
from repro.fault.harness import iter_crash_points
from repro.replication import (
    CheckpointStore,
    LinkSpec,
    ReplicatedPair,
    ReplicationLog,
    campaign_config,
    cold_restore,
    decode_stream,
    encode_stream,
    flip_bit,
    kill_primary_campaign,
    state_digest,
)
from repro.replication.frames import HEADER_BYTES
from repro.sim import spawn
from repro.system import KvSystem, tiny_config

META = {"kind": "snapshot.full", "epoch": 3, "log_offset": 120}
RECORDS = [[key, key % 7] for key in range(300)]


def _pair(ops: int = 120, keys: int = 48, **kwargs) -> ReplicatedPair:
    config = campaign_config(ops=ops, num_keys=keys)
    pair = ReplicatedPair(config, **kwargs)
    pair.start()
    return pair


class TestFrames:
    def test_roundtrip(self):
        data = encode_stream(META, RECORDS, chunk_records=64)
        meta, records = decode_stream(data)
        # decode returns the caller meta plus the validated record count.
        assert {key: meta[key] for key in META} == META
        assert meta["records"] == len(RECORDS)
        assert records == RECORDS

    def test_empty_stream_roundtrips(self):
        meta, records = decode_stream(encode_stream({"kind": "x"}, []))
        assert records == []

    def test_truncation_is_typed(self):
        data = encode_stream(META, RECORDS)
        for cut in (len(data) - 1, len(data) // 2, HEADER_BYTES - 3, 0):
            with pytest.raises(TruncatedFrameError):
                decode_stream(data[:cut])

    def test_bit_flips_never_pass(self):
        data = encode_stream(META, RECORDS)
        # Sweep flips across the whole stream: header magic, kind,
        # seq, length fields, CRC itself and payload bytes.
        for bit in range(0, len(data) * 8, max(1, len(data) // 3)):
            with pytest.raises(SnapshotFrameError):
                decode_stream(flip_bit(data, bit))

    def test_whole_frame_excision_detected(self):
        data = encode_stream(META, RECORDS, chunk_records=50)
        frames = []
        offset = 0
        from repro.replication.frames import decode_frame
        while offset < len(data):
            start = offset
            _kind, _seq, _payload, offset = decode_frame(data, offset)
            frames.append(data[start:offset])
        assert len(frames) >= 4    # BEGIN + >=2 chunks + END
        # Drop an interior chunk: seq/count/stream-CRC must catch it.
        with pytest.raises(CorruptFrameError):
            decode_stream(b"".join(frames[:2] + frames[3:]))


class TestSnapshotStore:
    def _store_with_history(self):
        log = ReplicationLog()
        store = CheckpointStore(log)
        for key in range(12):
            log.append(key, 1, 64)
        store.checkpoint()
        for key in range(6):
            log.append(key, 2, 64)
        store.checkpoint()
        return log, store

    def test_full_snapshot_restores_state(self, started_system):
        log, store = self._store_with_history()
        data = store.fetch_checkpoint()
        system = started_system(num_keys=32)
        report = CheckpointStore.apply_snapshot(data, system.engine)
        assert report.kind == "snapshot.full"
        assert report.log_offset == len(log)
        assert report.installed == 12
        observed = {r.key: r.version for r in system.engine.kvmap.records()
                    if r.version}
        assert observed == log.fold(len(log))

    def test_delta_on_base_equals_full(self, started_system):
        _log, store = self._store_with_history()
        base_id = store.epochs[-2].epoch_id
        system = started_system(num_keys=32)
        base_report = CheckpointStore.apply_snapshot(
            store.create_snapshot(base_id), system.engine)
        delta = store.create_delta(base_id)
        meta, records = decode_stream(delta)
        assert meta["kind"] == "snapshot.delta"
        assert len(records) == 6    # only the re-written keys
        report = CheckpointStore.apply_snapshot(
            delta, system.engine,
            expect_base_offset=base_report.log_offset)
        assert report.installed == 6
        observed = {r.key: r.version for r in system.engine.kvmap.records()
                    if r.version}
        assert observed == store.epochs[-1].state

    def test_delta_base_mismatch_refused(self):
        _log, store = self._store_with_history()
        delta = store.create_delta(store.epochs[-2].epoch_id)
        with pytest.raises(ReplicationError):
            CheckpointStore.apply_snapshot(delta, engine=None,
                                           expect_base_offset=999)

    def test_corrupt_snapshot_refused_before_touching_engine(
            self, started_system):
        _log, store = self._store_with_history()
        data = flip_bit(store.fetch_checkpoint(), 200)
        system = started_system(num_keys=32)
        before = {r.key: r.version for r in system.engine.kvmap.records()}
        with pytest.raises(SnapshotFrameError):
            CheckpointStore.apply_snapshot(data, system.engine)
        after = {r.key: r.version for r in system.engine.kvmap.records()}
        assert after == before

    def test_bootstrap_epoch_always_fetchable(self):
        store = CheckpointStore(ReplicationLog())
        meta, records = decode_stream(store.fetch_checkpoint())
        assert meta["log_offset"] == 0
        assert records == []


class TestShipping:
    def test_full_run_converges(self):
        pair = _pair()
        pair.run_workload()
        pair.drain()
        assert pair.applier.applied_offset == len(pair.log)
        assert pair.shipper.acked_offset == len(pair.log)
        expected = {key: 0 for key, _size in pair._initial_keys()}
        expected.update(pair.log.fold(len(pair.log)))
        observed = {r.key: r.version
                    for r in pair.replica.engine.kvmap.records()}
        assert state_digest(observed) == state_digest(expected)
        pair.stop()

    def test_corrupt_batch_refused_and_reshipped(self):
        flipped = []

        def tamper(data: bytes, batch_index: int):
            if batch_index == 1:
                flipped.append(batch_index)
                return flip_bit(data, 64)
            return data

        pair = _pair(tamper=tamper)
        pair.run_workload()
        pair.drain()
        assert flipped, "tamper hook never fired"
        assert pair.applier.frames_refused > 0
        assert pair.shipper.nacks > 0
        assert pair.shipper.reshipped_ops > 0
        # The refusal is not silent *and* not fatal: the re-shipped
        # stream still converges to the full log.
        assert pair.applier.applied_offset == len(pair.log)
        pair.stop()

    def test_dropped_batch_detected_as_gap(self):
        def tamper(data: bytes, batch_index: int):
            return None if batch_index == 0 else data

        pair = _pair(tamper=tamper)
        pair.run_workload()
        pair.drain()
        assert pair.shipper.nacks > 0
        assert pair.applier.applied_offset == len(pair.log)
        pair.stop()

    def test_link_spec_validates(self):
        from repro.common.errors import ConfigError
        with pytest.raises(ConfigError):
            LinkSpec(gbit_per_s=0)
        with pytest.raises(ConfigError):
            LinkSpec(queue_depth=0)


class TestPromote:
    def test_kill_and_promote_loses_no_acked_write(self):
        pair = _pair()
        pair.run_workload(kill_step=1_800)
        pair.kill_primary(SeededRng(3).fork("tear"))
        report = pair.promote()
        assert report.contract_ok
        assert report.acked_offset <= report.applied_offset
        assert report.digest == report.expected_digest
        assert report.rpo_ops == len(pair.log) - report.applied_offset
        assert report.verified_reads > 0
        assert report.rto_ns > 0
        pair.stop()

    def test_cold_restore_matches_fold(self):
        pair = _pair()
        pair.run_workload(kill_step=1_800)
        pair.kill_primary(SeededRng(3).fork("tear"))
        report = cold_restore(pair)
        assert report.contract_ok
        assert report.restored_offset >= report.acked_offset
        assert report.rto_ns > 0
        pair.stop()

    def test_cold_restore_requires_kill(self):
        pair = _pair()
        with pytest.raises(ReplicationError):
            cold_restore(pair)
        pair.stop()

class TestCampaign:
    def test_small_campaign_holds_contract(self):
        result = kill_primary_campaign(crash_points=4, ops=100,
                                       num_keys=48)
        assert result.ok
        assert len(result.points) == 4
        assert result.mean_rto_ns("warm") > 0
        assert result.mean_rto_ns("snapshot") > 0

    def test_campaign_digest_deterministic(self):
        first = kill_primary_campaign(crash_points=3, ops=80, num_keys=32)
        second = kill_primary_campaign(crash_points=3, ops=80, num_keys=32)
        assert first.digest() == second.digest()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ReplicationError):
            kill_primary_campaign(crash_points=1, strategies=("tape",))


class TestIterCrashPoints:
    def test_deterministic_and_bounded(self):
        points = list(iter_crash_points(7, 500, 20, "unit/a"))
        again = list(iter_crash_points(7, 500, 20, "unit/a"))
        assert [(i, s) for i, s, _ in points] == \
            [(i, s) for i, s, _ in again]
        assert all(1 <= step <= 500 for _i, step, _r in points)
        assert len(points) == 20

    def test_namespaces_diverge(self):
        a = [s for _i, s, _r in iter_crash_points(7, 500, 20, "unit/a")]
        b = [s for _i, s, _r in iter_crash_points(7, 500, 20, "unit/b")]
        assert a != b

    def test_point_rngs_are_forkable_per_point(self):
        rngs = [rng for _i, _s, rng in iter_crash_points(7, 100, 5, "x")]
        draws = [rng.fork("tear").randint(0, 10 ** 9) for rng in rngs]
        assert len(set(draws)) > 1


class TestZeroOverhead:
    def test_async_repl_log_is_free(self, make_system, drive):
        """Wiring an async replication log must not move a single
        simulated timestamp: the hook appends in zero time and yields
        nothing extra, so two identical workloads — one logging, one
        not — finish with byte-identical metric summaries."""
        def run(with_log: bool):
            system = make_system(num_keys=48, total_queries=120)
            system.load()
            system.engine.start()
            captured = ReplicationLog()
            if with_log:
                system.engine.repl_log = captured.append
            done = system.make_client_pool().start()
            while not done.triggered:
                assert system.sim.step(), "simulation starved"
            summary = json.dumps(system.metrics.summary(), sort_keys=True)
            system.engine.shutdown()
            return summary, len(captured)

        plain, logged_zero = run(with_log=False)
        hooked, logged = run(with_log=True)
        assert logged_zero == 0 and logged > 0
        assert plain == hooked


def test_semi_sync_blames_the_ship_wait():
    """Semi-sync writers wait for the ack; that wait must be charged to
    the ``repl_ship`` stage, and conservation must still hold (the
    ledger finalizer raises on over-attribution)."""
    config = campaign_config(ops=80, num_keys=32, blame=True)
    pair = ReplicatedPair(config, semi_sync=True)
    pair.start()
    pair.run_workload()
    pair.drain()
    collector = pair.primary.tenants[0].blame
    totals = collector.category_totals()
    assert totals.get("repl_ship", 0) > 0
    pair.stop()


def test_replication_probes_and_watchdog_registered():
    from repro.telemetry import names
    from repro.telemetry.sampler import TelemetryConfig
    config = campaign_config(ops=80, num_keys=32,
                             telemetry=TelemetryConfig())
    pair = ReplicatedPair(config)
    pair.start()
    pair.run_workload()
    pair.drain()
    sampler = pair.primary.telemetry
    for name in (names.REPL_SHIP_LAG_OPS, names.REPL_SHIP_LAG_BYTES,
                 names.REPL_REPLAY_APPLIED):
        assert sampler.registry.get(name) is not None
    # Probes registered post-build must sample cleanly into series.
    sampler.sample_once()
    assert sampler.get(names.REPL_REPLAY_APPLIED).last() == \
        float(pair.applier.replay_applied)
    assert sampler.get(names.REPL_SHIP_LAG_OPS).last() == 0.0
    assert any(w.name == "replication_lag"
               for w in sampler.watchdogs.watchdogs)
    pair.stop()
