"""Unit tests for the log-structured block allocator."""

import pytest

from repro.common.errors import DeviceFullError, FtlError
from repro.flash import FlashGeometry
from repro.ftl import BlockAllocator


def make_allocator(units_per_page=4, blocks=4, pages=2):
    geometry = FlashGeometry(channels=1, packages_per_channel=1,
                             dies_per_package=1, planes_per_die=1,
                             blocks_per_plane=blocks, pages_per_block=pages,
                             page_size=4096)
    return BlockAllocator(geometry, units_per_page)


class TestAllocation:
    def test_sequential_unit_addresses(self):
        alloc = make_allocator()
        upas, programs = alloc.allocate("data", 3)
        assert upas == [0, 1, 2]
        assert programs == []  # page not yet full (4 units per page)
        assert alloc.staged_units("data") == (0, 1, 2)

    def test_page_program_emitted_when_full(self):
        alloc = make_allocator(units_per_page=4)
        upas, programs = alloc.allocate("data", 4)
        assert len(programs) == 1
        assert programs[0].ppa == 0
        assert programs[0].upas == (0, 1, 2, 3)
        assert programs[0].padded_units == 0
        assert alloc.staged_units("data") == ()

    def test_multi_page_allocation(self):
        alloc = make_allocator(units_per_page=4)
        _upas, programs = alloc.allocate("data", 10)
        assert [p.ppa for p in programs] == [0, 1]
        assert alloc.staged_units("data") == (8, 9)

    def test_streams_use_distinct_blocks(self):
        alloc = make_allocator()
        upas_a, _ = alloc.allocate("journal", 1)
        upas_b, _ = alloc.allocate("data", 1)
        units_per_block = alloc.units_per_block
        assert upas_a[0] // units_per_block != upas_b[0] // units_per_block

    def test_block_becomes_full(self):
        alloc = make_allocator(units_per_page=4, pages=2)  # 8 units/block
        alloc.allocate("data", 8)
        assert alloc.full_blocks == {0}
        # Next allocation opens a new block.
        upas, _ = alloc.allocate("data", 1)
        assert upas[0] == alloc.units_per_block

    def test_device_full_raises(self):
        alloc = make_allocator(units_per_page=4, blocks=2, pages=1)
        alloc.allocate("data", 8)  # fills both blocks
        with pytest.raises(DeviceFullError):
            alloc.allocate("data", 1)

    def test_zero_units_rejected(self):
        with pytest.raises(FtlError):
            make_allocator().allocate("data", 0)

    def test_units_per_page_must_divide_page(self):
        geometry = FlashGeometry(channels=1, packages_per_channel=1,
                                 dies_per_package=1, planes_per_die=1,
                                 blocks_per_plane=2, pages_per_block=2)
        with pytest.raises(FtlError):
            BlockAllocator(geometry, 3)

    def test_written_units_tracked(self):
        alloc = make_allocator(units_per_page=4)
        alloc.allocate("data", 6)
        assert alloc.written_units[0] == 6


class TestFlush:
    def test_flush_pads_open_page(self):
        alloc = make_allocator(units_per_page=4)
        alloc.allocate("data", 2)
        programs = alloc.flush("data")
        assert len(programs) == 1
        program = programs[0]
        assert program.padded_units == 2
        assert program.upas == (0, 1)
        assert alloc.padded_units_total == 2
        assert alloc.written_units[0] == 4  # padding counts as written

    def test_flush_empty_returns_nothing(self):
        alloc = make_allocator()
        assert alloc.flush("data") == []
        alloc.allocate("data", 4)  # exactly one page -> auto program
        assert alloc.flush("data") == []

    def test_allocation_after_flush_starts_new_page(self):
        alloc = make_allocator(units_per_page=4)
        alloc.allocate("data", 1)
        alloc.flush("data")
        upas, _ = alloc.allocate("data", 1)
        assert upas[0] == 4  # second page of block 0

    def test_flush_filling_block_retires_it(self):
        alloc = make_allocator(units_per_page=4, pages=1)  # 4 units/block
        alloc.allocate("data", 1)
        alloc.flush("data")
        assert 0 in alloc.full_blocks


class TestFreePool:
    def test_register_free_recycles(self):
        alloc = make_allocator(units_per_page=4, blocks=2, pages=1)
        alloc.allocate("data", 8)
        assert alloc.free_block_count == 0
        alloc.register_free(0)
        assert alloc.free_block_count == 1
        upas, _ = alloc.allocate("data", 1)
        assert upas[0] // alloc.units_per_block == 0
        assert alloc.written_units.get(0, 0) == 1  # stats reset on recycle

    def test_double_free_rejected(self):
        alloc = make_allocator()
        with pytest.raises(FtlError):
            alloc.register_free(0)  # still in the free pool

    def test_active_block_ids(self):
        alloc = make_allocator()
        alloc.allocate("a", 1)
        alloc.allocate("b", 1)
        assert len(alloc.active_block_ids()) == 2
