"""Tests for the EXPERIMENTS.md assembler (benchmarks/make_report.py)."""

import importlib.util
import pathlib
import sys

REPORT_PATH = pathlib.Path(__file__).parent.parent / "benchmarks" / "make_report.py"


def load_module():
    spec = importlib.util.spec_from_file_location("make_report", REPORT_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestReportAssembly:
    def test_sections_cover_every_experiment(self):
        module = load_module()
        ids = {exp_id for exp_id, _title, _c in module.SECTIONS}
        for required in ("table1", "fig3a", "fig3b", "fig3c", "fig8a",
                         "fig8b", "fig9", "fig10", "fig11", "fig12",
                         "fig13a", "fig13b", "interference"):
            assert required in ids

    def test_main_builds_report(self, tmp_path, monkeypatch):
        module = load_module()
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig8a.txt").write_text("rows here\n")
        target = tmp_path / "EXPERIMENTS.md"
        monkeypatch.setattr(module, "RESULTS", results)
        monkeypatch.setattr(module, "TARGET", target)
        assert module.main() == 0
        text = target.read_text()
        assert "rows here" in text
        assert "missing: run the fig9 benchmark" in text
        assert text.startswith("# EXPERIMENTS")

    def test_main_without_results_dir(self, tmp_path, monkeypatch):
        module = load_module()
        monkeypatch.setattr(module, "RESULTS", tmp_path / "nope")
        assert module.main() == 1


class TestIncidentHtml:
    def make_bundle(self, tmp_path):
        import json
        records = [
            {"type": "header", "schema": "repro-incident/v1",
             "label": "baseline", "node": None, "triggers": 1,
             "flight_events": 2, "window_ns": 10_000_000,
             "trigger_t_ns": 5_000_000,
             "trigger_reason": "watchdog_error"},
            {"type": "trigger", "t_ns": 5_000_000,
             "reason": "watchdog_error", "node": None,
             "detail": {"watchdog": "checkpoint_overdue"}},
            {"type": "flight", "t_ns": 4_000_000, "layer": "ckpt",
             "kind": "begin", "span_id": 7, "node": None,
             "detail": {"gated": True}},
            {"type": "flight", "t_ns": 6_000_000, "layer": "repl",
             "kind": "nack_rewind", "span_id": None, "node": "primary",
             "detail": {"offset": 3}},
            {"type": "event", "t_ns": 5_000_000,
             "watchdog": "checkpoint_overdue", "kind": "fired",
             "tenant": "", "severity": "error", "value": 2.0,
             "message": "", "blame": ""},
            {"type": "blame", "tenant": "aggregate",
             "dominant_stage": "ckpt_freeze_stall", "p": 99.0,
             "ckpt_tail_share": 0.9, "node": None},
            {"type": "exemplar", "tenant": "aggregate", "rank": 1,
             "op": "update", "key": 5, "total_ns": 2_000_000,
             "during_ckpt": True, "span_id": 7,
             "charges": {"ckpt_freeze_stall": 1_900_000}},
            {"type": "health", "t_ns": 6_000_000, "wear_pct": 1.5,
             "node": None},
            {"type": "repl", "node": "primary", "ship_lag_ops": 4,
             "ship_lag_bytes": 4096, "nacks": 1, "applied_offset": 2,
             "kill_t_ns": None},
            {"type": "footer", "triggers": 1, "flight_events": 2,
             "spans": 0, "series": 0, "events": 1, "exemplars": 1},
        ]
        path = tmp_path / "incident.jsonl"
        path.write_text("".join(json.dumps(record) + "\n"
                                for record in records))
        return path

    def test_incident_html_renders_all_sections(self, tmp_path):
        module = load_module()
        source = self.make_bundle(tmp_path)
        target = tmp_path / "incident.html"
        assert module.main(["--incident", str(source),
                            "--html", str(target)]) == 0
        text = target.read_text()
        assert "Causal timeline" in text
        assert "Dominant blame stage" in text
        assert "ckpt_freeze_stall" in text
        assert "watchdog_error" in text
        assert "span=7" in text
        assert "ship_lag=4ops/4096B" in text
        assert "Worst-request exemplars" in text
        assert "Device health" in text

    def test_timeline_rows_sorted_and_trigger_highlighted(self, tmp_path):
        module = load_module()
        groups = module.load_incident_records(self.make_bundle(tmp_path))
        rows = module._incident_timeline_rows(groups)
        assert [row[0] for row in rows] == \
            sorted(row[0] for row in rows)
        assert any(row[2] == "trigger" for row in rows)
