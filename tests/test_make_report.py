"""Tests for the EXPERIMENTS.md assembler (benchmarks/make_report.py)."""

import importlib.util
import pathlib
import sys

REPORT_PATH = pathlib.Path(__file__).parent.parent / "benchmarks" / "make_report.py"


def load_module():
    spec = importlib.util.spec_from_file_location("make_report", REPORT_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestReportAssembly:
    def test_sections_cover_every_experiment(self):
        module = load_module()
        ids = {exp_id for exp_id, _title, _c in module.SECTIONS}
        for required in ("table1", "fig3a", "fig3b", "fig3c", "fig8a",
                         "fig8b", "fig9", "fig10", "fig11", "fig12",
                         "fig13a", "fig13b", "interference"):
            assert required in ids

    def test_main_builds_report(self, tmp_path, monkeypatch):
        module = load_module()
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig8a.txt").write_text("rows here\n")
        target = tmp_path / "EXPERIMENTS.md"
        monkeypatch.setattr(module, "RESULTS", results)
        monkeypatch.setattr(module, "TARGET", target)
        assert module.main() == 0
        text = target.read_text()
        assert "rows here" in text
        assert "missing: run the fig9 benchmark" in text
        assert text.startswith("# EXPERIMENTS")

    def test_main_without_results_dir(self, tmp_path, monkeypatch):
        module = load_module()
        monkeypatch.setattr(module, "RESULTS", tmp_path / "nope")
        assert module.main() == 1
