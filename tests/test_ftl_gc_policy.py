"""Tests for GC victim policy: greedy score + wear-levelling tiebreak."""

from repro.flash import FlashArray, FlashGeometry, FlashTiming
from repro.ftl import Ftl, FtlConfig
from repro.sim import Simulator, spawn


def make_ftl(blocks=8):
    sim = Simulator()
    geometry = FlashGeometry(channels=1, packages_per_channel=1,
                             dies_per_package=1, planes_per_die=1,
                             blocks_per_plane=blocks, pages_per_block=2,
                             page_size=4096)
    array = FlashArray(sim, geometry, FlashTiming(
        read_ns=10_000, program_ns=100_000, erase_ns=1_000_000))
    return sim, Ftl(sim, array, FtlConfig(mapping_unit=512,
                                          map_cache_bytes=0))


def run(sim, generator):
    proc = spawn(sim, generator)
    sim.run()
    assert proc.ok, proc.exception
    return proc.value


def fill_block_with_garbage(sim, ftl, lba_base, keep_valid=0):
    """Write one block's worth of units, then invalidate most of them."""
    units = ftl.allocator.units_per_block

    def proc():
        # Unique lpns first, then overwrite all but keep_valid of them
        yield from ftl.write(lba_base, units, tags=None)
        yield from ftl.drain()

    run(sim, proc())


class TestVictimSelection:
    def test_no_victim_without_garbage(self):
        sim, ftl = make_ftl()

        def proc():
            units = ftl.allocator.units_per_block
            yield from ftl.write(0, units, tags=None)  # all live
            yield from ftl.drain()

        run(sim, proc())
        assert ftl.gc.select_victim() is None

    def test_prefers_most_invalid(self):
        sim, ftl = make_ftl()
        units = ftl.allocator.units_per_block

        def proc():
            # Block A: fully overwritten later (all invalid).
            yield from ftl.write(0, units, tags=None)
            # Block B region: half overwritten.
            yield from ftl.write(1000, units, tags=None)
            # Overwrites: everything of the first range, half of the second
            yield from ftl.write(0, units, tags=None)
            yield from ftl.write(1000, units // 2, tags=None)
            yield from ftl.drain()

        run(sim, proc())
        victim = ftl.gc.select_victim()
        assert victim is not None
        written = ftl.allocator.written_units[victim]
        invalid = written - ftl.mapping.valid_units(victim)
        # The chosen victim has the globally maximal invalid count.
        for block in ftl.allocator.full_blocks:
            if ftl.inflight_programs(block):
                continue
            other = ftl.allocator.written_units.get(block, 0) - \
                ftl.mapping.valid_units(block)
            assert invalid >= other

    def test_wear_tiebreak_prefers_cold_block(self):
        sim, ftl = make_ftl()
        units = ftl.allocator.units_per_block

        def proc():
            yield from ftl.write(0, units, tags=None)      # block X
            yield from ftl.write(1000, units, tags=None)   # block Y
            # Invalidate both fully (equal scores).
            yield from ftl.write(0, units, tags=None)
            yield from ftl.write(1000, units, tags=None)
            yield from ftl.drain()

        run(sim, proc())
        candidates = [b for b in ftl.allocator.full_blocks
                      if ftl.allocator.written_units.get(b, 0) -
                      ftl.mapping.valid_units(b) ==
                      ftl.allocator.units_per_block]
        assert len(candidates) >= 2
        # Age one candidate artificially: it must now lose the tie.
        aged = max(candidates)
        ftl.array.block(aged).erase_count = 50
        victim = ftl.gc.select_victim()
        assert victim != aged

    def test_inflight_blocks_skipped(self):
        sim, ftl = make_ftl()
        units = ftl.allocator.units_per_block

        def proc():
            yield from ftl.write(0, units, tags=None)
            yield from ftl.write(0, units, tags=None)  # garbage, programs flying

        run_proc = spawn(sim, proc())
        # Drive only until writes staged, not until programs complete.
        while not run_proc.triggered:
            sim.step()
        # Some programs may still be in flight; selection must not crash
        # and must skip blocks whose pages are still programming.
        victim = ftl.gc.select_victim()
        if victim is not None:
            assert ftl.inflight_programs(victim) == 0
        sim.run()
