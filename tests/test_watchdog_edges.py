"""Watchdog edge semantics and post-build probe registration.

Regression coverage for two classes of bug the observability planes
have actually had:

* a probe registered *after* the sampler was built (replication wires
  itself post-``KvSystem.__init__``) whose series was missing from the
  sampler's dict, so the next sample tick raised ``KeyError``;
* edge-detection state machines (debounce streaks, re-arm after clear,
  terminal watchdogs) silently drifting — each transition is pinned
  here sample by sample.
"""

from __future__ import annotations

from repro.telemetry.registry import AGGREGATE
from repro.telemetry.watchdog import (
    CLEARED,
    FIRED,
    DegradedEntryWatchdog,
    ThresholdWatchdog,
    WatchdogBank,
)


def edge_kinds(events):
    return [event.kind for event in events]


class TestDebounce:
    def make(self, consecutive):
        return ThresholdWatchdog("wd", "metric", threshold=10.0,
                                 consecutive=consecutive)

    def test_fires_only_after_n_consecutive_breaches(self):
        watchdog = self.make(consecutive=3)
        for t_ns, value in ((1, 50.0), (2, 50.0)):
            assert watchdog.evaluate(t_ns, {(AGGREGATE, "metric"): value}) \
                == []
        events = watchdog.evaluate(3, {(AGGREGATE, "metric"): 50.0})
        assert edge_kinds(events) == [FIRED]

    def test_streak_resets_on_recovery_sample(self):
        watchdog = self.make(consecutive=3)
        samples = [50.0, 50.0, 5.0, 50.0, 50.0]
        for t_ns, value in enumerate(samples, 1):
            assert watchdog.evaluate(
                t_ns, {(AGGREGATE, "metric"): value}) == []
        # Only the third consecutive breach after the reset fires.
        events = watchdog.evaluate(6, {(AGGREGATE, "metric"): 50.0})
        assert edge_kinds(events) == [FIRED]

    def test_rearms_after_clear(self):
        watchdog = self.make(consecutive=1)
        feed = [(1, 50.0, [FIRED]), (2, 50.0, []), (3, 1.0, [CLEARED]),
                (4, 1.0, []), (5, 50.0, [FIRED])]
        for t_ns, value, expected in feed:
            events = watchdog.evaluate(
                t_ns, {(AGGREGATE, "metric"): value})
            assert edge_kinds(events) == expected, (t_ns, value)

    def test_missing_metric_reads_zero_not_keyerror(self):
        watchdog = ThresholdWatchdog("wd", "absent", threshold=1.0,
                                     above=False)
        events = watchdog.evaluate(1, {})
        assert edge_kinds(events) == [FIRED]  # 0.0 <= 1.0


class TestTerminalWatchdog:
    def test_degraded_entry_never_clears(self):
        watchdog = DegradedEntryWatchdog()
        assert watchdog.severity == "error"
        fired = watchdog.evaluate(1, {(AGGREGATE, "ftl.degraded"): 1.0})
        assert edge_kinds(fired) == [FIRED]
        # Metric recovering must not emit a CLEARED edge: terminal.
        assert watchdog.evaluate(
            2, {(AGGREGATE, "ftl.degraded"): 0.0}) == []
        assert watchdog.active


class TestEscalate:
    def test_escalate_raises_severity_of_matching_watchdogs(self):
        bank = WatchdogBank([
            ThresholdWatchdog("overload", "m", threshold=1.0),
            ThresholdWatchdog("overload", "m", threshold=1.0,
                              tenant="t1", metric_tenant="t1"),
            ThresholdWatchdog("other", "m", threshold=1.0)])
        assert bank.escalate("overload") == 2
        severities = [w.severity for w in bank.watchdogs]
        assert severities == ["error", "error", "warn"]

    def test_escalated_edge_carries_error_severity(self):
        bank = WatchdogBank([ThresholdWatchdog("overload", "m",
                                               threshold=1.0)])
        bank.escalate("overload")
        events = bank.evaluate(1, {(AGGREGATE, "m"): 5.0})
        assert [(e.kind, e.severity) for e in events] == [(FIRED, "error")]

    def test_escalating_unknown_name_hits_nothing(self):
        bank = WatchdogBank([ThresholdWatchdog("overload", "m",
                                               threshold=1.0)])
        assert bank.escalate("nonexistent") == 0
        assert bank.watchdogs[0].severity == "warn"


class TestPostBuildProbeRegistration:
    """PR-9 regression: late-registered probes must get a series too."""

    class _Shipper:
        ship_lag_bytes = 512
        ship_lag_ops = 2

    class _Applier:
        replay_applied = 3

    def sampled_system(self, make_system):
        from repro.common.units import MS
        from repro.telemetry import TelemetryConfig
        return make_system(
            telemetry=TelemetryConfig(interval_ns=1 * MS))

    def test_sample_tick_after_late_registration(self, make_system):
        from repro.telemetry.probes import register_replication_probes
        system = self.sampled_system(make_system)
        sampler = system.telemetry
        register_replication_probes(sampler, self._Shipper(),
                                    self._Applier())
        # The bug: sampler.series lacked the late keys -> KeyError here.
        sampler.sample_once()
        lag_series = [series for series in sampler.all_series()
                      if series.layer == "replication"]
        assert len(lag_series) == 3
        assert any(points and points[-1][1] == 2.0
                   for points in (list(s.points) for s in lag_series))

    def test_double_registration_is_rejected(self, make_system):
        import pytest

        from repro.common.errors import ConfigError
        from repro.telemetry.probes import register_replication_probes
        system = self.sampled_system(make_system)
        sampler = system.telemetry
        register_replication_probes(sampler, self._Shipper(),
                                    self._Applier())
        with pytest.raises(ConfigError):
            register_replication_probes(sampler, self._Shipper(),
                                        self._Applier())
        sampler.sample_once()

    def test_replication_lag_watchdog_fires_on_sustained_backlog(
            self, make_system):
        from repro.telemetry.probes import register_replication_probes

        class _LaggedShipper:
            ship_lag_bytes = 1 << 20
            ship_lag_ops = 10_000

        system = self.sampled_system(make_system)
        sampler = system.telemetry
        register_replication_probes(sampler, _LaggedShipper(),
                                    self._Applier(), max_lag_ops=256)
        sampler.sample_once()  # streak 1 of 2: debounced, no edge yet
        assert not sampler.watchdogs.fired("replication_lag")
        sampler.sample_once()
        assert sampler.watchdogs.fired("replication_lag")
