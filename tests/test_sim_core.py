"""Unit tests for the event loop and Event primitive."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Simulator, all_of, any_of


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0

    def test_callback_runs_at_scheduled_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(100, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [100]

    def test_fifo_order_at_same_timestamp(self):
        sim = Simulator()
        seen = []
        for i in range(5):
            sim.schedule(10, seen.append, i)
        sim.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(30, seen.append, "c")
        sim.schedule(10, seen.append, "a")
        sim.schedule(20, seen.append, "b")
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1, lambda: None)

    def test_cancel_prevents_firing(self):
        sim = Simulator()
        seen = []
        timer = sim.schedule(10, seen.append, 1)
        timer.cancel()
        sim.run()
        assert seen == []

    def test_run_until_stops_and_advances_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, seen.append, "early")
        sim.schedule(100, seen.append, "late")
        sim.run(until=50)
        assert seen == ["early"]
        assert sim.now == 50
        sim.run()
        assert seen == ["early", "late"]

    def test_run_until_past_is_error(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=5)

    def test_step_returns_false_when_idle(self):
        assert Simulator().step() is False

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: sim.schedule(5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [15]

    def test_peek_reports_next_event_time(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.schedule(42, lambda: None)
        assert sim.peek() == 42

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        timer = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        timer.cancel()
        assert sim.peek() == 20


class TestEvent:
    def test_succeed_wakes_callback(self):
        sim = Simulator()
        event = sim.event()
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        event.succeed("v")
        sim.run()
        assert seen == ["v"]

    def test_callback_after_resolution_still_fires(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        seen = []
        event.add_callback(lambda ev: seen.append(ev.value))
        sim.run()
        assert seen == [1]

    def test_double_trigger_is_error(self):
        sim = Simulator()
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_ok_flag(self):
        sim = Simulator()
        good = sim.event().succeed()
        bad = sim.event().fail(RuntimeError("x"))
        assert good.ok and good.triggered
        assert bad.triggered and not bad.ok


class TestCombinators:
    def test_all_of_collects_values_in_order(self):
        sim = Simulator()
        e1, e2 = sim.event(), sim.event()
        combined = all_of(sim, [e1, e2])
        sim.schedule(20, e1.succeed, "first")
        sim.schedule(10, e2.succeed, "second")
        sim.run()
        assert combined.ok
        assert combined.value == ["first", "second"]

    def test_all_of_empty_succeeds_immediately(self):
        sim = Simulator()
        assert all_of(sim, []).triggered

    def test_all_of_fails_fast(self):
        sim = Simulator()
        e1, e2 = sim.event(), sim.event()
        combined = all_of(sim, [e1, e2])
        e1.fail(RuntimeError("boom"))
        # Nothing waits on `combined`; declare its failure handled so the
        # strict unconsumed-failure check does not (rightly) trip at exit.
        combined.defuse()
        sim.run()
        assert combined.triggered and not combined.ok

    def test_any_of_first_wins(self):
        sim = Simulator()
        e1, e2 = sim.event(), sim.event()
        first = any_of(sim, [e1, e2])
        sim.schedule(5, e2.succeed, "fast")
        sim.schedule(50, e1.succeed, "slow")
        sim.run()
        assert first.value == "fast"

    def test_any_of_requires_events(self):
        with pytest.raises(SimulationError):
            any_of(Simulator(), [])
