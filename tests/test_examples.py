"""The example scripts run end to end (they are part of the public API)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "checkpoint [checkin]" in out
    assert "remapped" in out
    assert "device statistics" in out


def test_crash_recovery():
    out = run_example("crash_recovery.py")
    assert "device recovery" in out
    assert "every acknowledged update recovered" in out


@pytest.mark.slow
def test_ycsb_comparison():
    out = run_example("ycsb_comparison.py")
    assert "baseline" in out and "checkin" in out
    assert "Check-In vs baseline" in out


@pytest.mark.slow
def test_lifetime_study():
    out = run_example("lifetime_study.py")
    assert "gc_invocations" in out
    assert "lifetime vs baseline" in out
