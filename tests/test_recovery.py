"""Crash-recovery tests: SPOR mapping rebuild and engine replay."""

import pytest

from repro.common.errors import RecoveryError
from repro.engine import EngineConfig, StorageEngine
from repro.engine.recovery import (
    check_durability,
    peek_sector_tags,
    rebuild_mapping_from_oob,
    recover_store,
    verify_device_recovery,
)
from repro.flash import FlashGeometry, FlashTiming
from repro.ftl import FtlConfig
from repro.sim import Simulator, spawn
from repro.ssd import InterfaceConfig, Ssd, SsdSpec


def build(mode="checkin", record_size=512, track_op_log=True, blocks=24):
    sim = Simulator()
    unit = 512 if mode in ("isc_c", "checkin") else 4096
    ssd = Ssd(sim, SsdSpec(
        geometry=FlashGeometry(channels=2, packages_per_channel=1,
                               dies_per_package=2, planes_per_die=1,
                               blocks_per_plane=blocks, pages_per_block=16),
        timing=FlashTiming(read_ns=20_000, program_ns=200_000,
                           erase_ns=1_500_000),
        ftl=FtlConfig(mapping_unit=unit, track_op_log=track_op_log),
        interface=InterfaceConfig(queue_depth=16, command_overhead_ns=2_000),
        enable_isce=(mode != "baseline"),
        allow_remap=(mode in ("isc_c", "checkin"))))
    engine = StorageEngine(sim, ssd, EngineConfig(
        mode=mode, journal_lba_start=0, journal_sectors=1024,
        meta_lba_start=1024, meta_sectors=64, data_lba_start=1100,
        data_sectors=4096, mapping_unit=unit, group_commit_ns=5_000,
        mem_cache_records=0))
    engine.load([(key, record_size) for key in range(24)])
    engine.start()
    return sim, ssd, engine


def run_process(sim, generator):
    proc = spawn(sim, generator)
    while not proc.triggered:
        assert sim.step(), "simulation starved"
    assert proc.ok, proc.exception
    return proc.value


class TestPeek:
    def test_peek_matches_loaded_data(self):
        _sim, ssd, engine = build()
        record = engine.kvmap.get(3)
        tags = peek_sector_tags(ssd.ftl, record.lba, record.nsectors)
        assert tags[0] == (3, 0)

    def test_peek_unmapped(self):
        _sim, ssd, _engine = build()
        assert peek_sector_tags(ssd.ftl, 900, 2) == [None, None]


class TestDeviceRecovery:
    def test_rebuild_after_load(self):
        _sim, ssd, _engine = build()
        verify_device_recovery(ssd.ftl)

    def test_rebuild_after_updates(self):
        sim, ssd, engine = build()

        def scenario():
            for key in range(10):
                yield from engine.put(key)
            yield from engine.put(3)  # overwrite
            yield from ssd.quiesce()

        run_process(sim, scenario())
        verify_device_recovery(ssd.ftl)

    def test_rebuild_after_remap_checkpoint_and_trim(self):
        sim, ssd, engine = build()

        def scenario():
            for key in range(10):
                yield from engine.put(key)
            yield from engine.checkpoint()
            yield from ssd.quiesce()

        run_process(sim, scenario())
        verify_device_recovery(ssd.ftl)

    def test_rebuild_after_gc(self):
        # Small device + churn forces GC migration of shared units.
        sim, ssd, engine = build(blocks=3)

        def scenario():
            for round_no in range(40):
                for key in range(24):
                    yield from engine.put(key)
                yield from engine.checkpoint()
            yield from ssd.quiesce()

        run_process(sim, scenario())
        assert ssd.stats.value("gc.invocations") >= 1
        verify_device_recovery(ssd.ftl)

    def test_rebuild_requires_op_log(self):
        _sim, ssd, _engine = build(track_op_log=False)
        with pytest.raises(RecoveryError):
            rebuild_mapping_from_oob(ssd.ftl)


class TestEngineRecovery:
    @pytest.mark.parametrize("mode", ["baseline", "isc_b", "isc_c", "checkin"])
    def test_recovery_after_clean_checkpoint(self, mode):
        sim, _ssd, engine = build(mode=mode)

        def scenario():
            for key in range(8):
                yield from engine.put(key)
            yield from engine.checkpoint()

        run_process(sim, scenario())
        recovered = recover_store(engine)
        for key in range(8):
            assert recovered.version_of(key) == 1
        # Checkpointed state alone carries the versions.
        for key in range(8):
            assert recovered.from_checkpoint.get(key) == 1

    def test_recovery_from_journal_before_checkpoint(self):
        sim, _ssd, engine = build()

        def scenario():
            for key in range(8):
                yield from engine.put(key)
            # crash before any checkpoint

        run_process(sim, scenario())
        recovered = recover_store(engine)
        for key in range(8):
            assert recovered.version_of(key) == 1
            assert recovered.replayed_from_journal.get(key) == 1
            assert recovered.from_checkpoint.get(key, 0) == 0

    def test_recovery_mixed_checkpoint_plus_tail(self):
        sim, _ssd, engine = build()

        def scenario():
            for key in range(8):
                yield from engine.put(key)
            yield from engine.checkpoint()
            for key in range(4):  # journaled after the checkpoint
                yield from engine.put(key)

        run_process(sim, scenario())
        recovered = recover_store(engine)
        for key in range(4):
            assert recovered.version_of(key) == 2
        for key in range(4, 8):
            assert recovered.version_of(key) == 1

    @pytest.mark.parametrize("mode", ["baseline", "checkin"])
    def test_check_durability_passes_on_acked_updates(self, mode):
        sim, _ssd, engine = build(mode=mode, record_size=300)
        acked = {}

        def scenario():
            for key in range(12):
                version = yield from engine.put(key)
                acked[key] = version
            yield from engine.checkpoint()
            for key in range(6):
                version = yield from engine.put(key)
                acked[key] = version

        run_process(sim, scenario())
        check_durability(engine, acked)

    def test_durability_violation_detected(self):
        sim, ssd, engine = build()

        def scenario():
            yield from engine.put(0)

        run_process(sim, scenario())
        with pytest.raises(RecoveryError):
            check_durability(engine, {0: 99})

    def test_recovery_never_invents_versions(self):
        sim, _ssd, engine = build()

        def scenario():
            for key in range(6):
                yield from engine.put(key)

        run_process(sim, scenario())
        recovered = recover_store(engine)
        for record in engine.kvmap.records():
            assert recovered.version_of(record.key) <= record.version


class TestRecoveryUnderConcurrentCrashPoints:
    def test_crash_at_arbitrary_times_never_loses_acked_data(self):
        """Stop the simulation at several points mid-workload; every
        acknowledged update must be recoverable at each of them."""
        sim, _ssd, engine = build(record_size=300)
        acked = {}

        def writer():
            for i in range(60):
                key = i % 24
                version = yield from engine.put(key)
                acked[key] = version
                if i == 30:
                    yield from engine.checkpoint()

        proc = spawn(sim, writer())
        steps = 0
        while not proc.triggered:
            assert sim.step()
            steps += 1
            if steps % 50 == 0:
                # Crash point: whatever was acked so far must already be
                # durable (journaling is synchronous).
                check_durability(engine, dict(acked))
        assert proc.ok, proc.exception
        check_durability(engine, acked)
