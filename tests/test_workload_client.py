"""Unit tests for the closed-loop client pool."""

import pytest

from repro.common.errors import WorkloadError
from repro.common.rng import SeededRng
from repro.engine import EngineConfig, StorageEngine
from repro.flash import FlashGeometry, FlashTiming
from repro.ftl import FtlConfig
from repro.sim import Simulator
from repro.ssd import Ssd, SsdSpec
from repro.workload import ClientPool, OperationGenerator, UniformKeys, workload_by_name


def make_engine(sim):
    ssd = Ssd(sim, SsdSpec(
        geometry=FlashGeometry(channels=2, packages_per_channel=1,
                               dies_per_package=1, planes_per_die=2,
                               blocks_per_plane=16, pages_per_block=8),
        timing=FlashTiming(read_ns=10_000, program_ns=100_000,
                           erase_ns=1_000_000),
        ftl=FtlConfig(mapping_unit=4096)))
    engine = StorageEngine(sim, ssd, EngineConfig(
        mode="baseline", journal_lba_start=0, journal_sectors=2048,
        meta_lba_start=2048, meta_sectors=64, data_lba_start=2112,
        data_sectors=1024, mapping_unit=4096, group_commit_ns=2_000,
        mem_cache_records=8))
    engine.load([(key, 256) for key in range(16)])
    engine.start()
    return engine


def make_generators(n):
    rng = SeededRng(5)
    return [OperationGenerator(workload_by_name("A"),
                               UniformKeys(16, rng.fork(f"k{i}")),
                               rng.fork(f"o{i}"))
            for i in range(n)]


class TestClientPool:
    def test_exact_operation_budget(self):
        sim = Simulator()
        engine = make_engine(sim)
        completions = []
        pool = ClientPool(sim, engine, make_generators(4), 57,
                          on_complete=lambda op, lat, ckpt:
                          completions.append((op, lat, ckpt)))
        done = pool.start()
        while not done.triggered:
            assert sim.step()
        assert done.ok
        assert done.value.operations == 57
        assert len(completions) == 57
        engine.shutdown()

    def test_latencies_positive_and_flags_boolean(self):
        sim = Simulator()
        engine = make_engine(sim)
        seen = []
        pool = ClientPool(sim, engine, make_generators(2), 20,
                          on_complete=lambda op, lat, ckpt:
                          seen.append((lat, ckpt)))
        done = pool.start()
        while not done.triggered:
            assert sim.step()
        for latency, ckpt_flag in seen:
            assert latency > 0
            assert isinstance(ckpt_flag, bool)
        engine.shutdown()

    def test_duration_spans_run(self):
        sim = Simulator()
        engine = make_engine(sim)
        pool = ClientPool(sim, engine, make_generators(2), 10)
        done = pool.start()
        while not done.triggered:
            assert sim.step()
        assert done.value.duration_ns > 0
        assert done.value.finished_at == sim.now
        engine.shutdown()

    def test_validation(self):
        sim = Simulator()
        engine = make_engine(sim)
        with pytest.raises(WorkloadError):
            ClientPool(sim, engine, [], 10)
        with pytest.raises(WorkloadError):
            ClientPool(sim, engine, make_generators(1), 0)
        engine.shutdown()

    def test_threads_property(self):
        sim = Simulator()
        engine = make_engine(sim)
        pool = ClientPool(sim, engine, make_generators(7), 10)
        assert pool.threads == 7
        engine.shutdown()
