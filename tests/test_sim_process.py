"""Unit tests for generator-based processes."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Interrupt, Simulator, sleep_event, spawn


class TestBasics:
    def test_process_sleeps(self):
        sim = Simulator()
        seen = []

        def proc():
            yield 100
            seen.append(sim.now)
            yield 50
            seen.append(sim.now)

        spawn(sim, proc())
        sim.run()
        assert seen == [100, 150]

    def test_return_value_via_join(self):
        sim = Simulator()
        result = []

        def child():
            yield 10
            return 99

        def parent():
            value = yield spawn(sim, child())
            result.append(value)

        spawn(sim, parent())
        sim.run()
        assert result == [99]

    def test_wait_on_event_receives_value(self):
        sim = Simulator()
        event = sim.event()
        seen = []

        def proc():
            value = yield event
            seen.append((sim.now, value))

        spawn(sim, proc())
        sim.schedule(30, event.succeed, "payload")
        sim.run()
        assert seen == [(30, "payload")]

    def test_join_finished_process(self):
        sim = Simulator()

        def child():
            yield 1
            return "done"

        proc = spawn(sim, child())
        sim.run()
        got = []

        def late_joiner():
            value = yield proc
            got.append(value)

        spawn(sim, late_joiner())
        sim.run()
        assert got == ["done"]

    def test_alive_flag(self):
        sim = Simulator()

        def child():
            yield 10

        proc = spawn(sim, child())
        assert proc.alive
        sim.run()
        assert not proc.alive

    def test_yielding_garbage_fails_process(self):
        sim = Simulator()

        def proc():
            yield "nonsense"

        spawn(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_sleep_fails_process(self):
        sim = Simulator()

        def proc():
            yield -5

        spawn(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestFailures:
    def test_unjoined_failure_propagates_to_run(self):
        sim = Simulator()

        def proc():
            yield 5
            raise ValueError("crash")

        spawn(sim, proc())
        with pytest.raises(ValueError):
            sim.run()

    def test_joined_failure_delivered_to_joiner(self):
        sim = Simulator()
        caught = []

        def child():
            yield 5
            raise ValueError("crash")

        def parent():
            try:
                yield spawn(sim, child())
            except ValueError as exc:
                caught.append(str(exc))

        spawn(sim, parent())
        sim.run()
        assert caught == ["crash"]

    def test_failed_event_raises_in_waiter(self):
        sim = Simulator()
        event = sim.event()
        caught = []

        def proc():
            try:
                yield event
            except RuntimeError:
                caught.append(True)

        spawn(sim, proc())
        sim.schedule(1, event.fail, RuntimeError("bad"))
        sim.run()
        assert caught == [True]


class TestInterrupt:
    def test_interrupt_wakes_sleeper_early(self):
        sim = Simulator()
        seen = []

        def sleeper():
            try:
                yield 1000
            except Interrupt as intr:
                seen.append((sim.now, intr.cause))

        proc = spawn(sim, sleeper())
        sim.schedule(100, proc.interrupt, "wake up")
        sim.run()
        assert seen == [(100, "wake up")]

    def test_interrupt_while_waiting_on_event(self):
        sim = Simulator()
        event = sim.event()
        seen = []

        def waiter():
            try:
                yield event
            except Interrupt:
                seen.append("interrupted")
                yield 10
                seen.append("resumed")

        proc = spawn(sim, waiter())
        sim.schedule(5, proc.interrupt)
        sim.schedule(7, event.succeed)  # must not re-wake the process
        sim.run()
        assert seen == ["interrupted", "resumed"]

    def test_interrupt_finished_process_is_error(self):
        sim = Simulator()

        def quick():
            yield 1

        proc = spawn(sim, quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_uncaught_interrupt_fails_process(self):
        sim = Simulator()

        def stubborn():
            yield 1000

        proc = spawn(sim, stubborn())
        sim.schedule(10, proc.interrupt)
        with pytest.raises(Interrupt):
            sim.run()


class TestSleepEvent:
    def test_sleep_event_fires(self):
        sim = Simulator()
        seen = []
        sleep_event(sim, 25).add_callback(lambda ev: seen.append(sim.now))
        sim.run()
        assert seen == [25]
