"""Regression tests for the event-kernel bugfix sweep.

Three kernel bugs rode along with the hot-path speed campaign:

1. ``Process.interrupt()`` left its stale ``_on_event`` callback on the
   abandoned event — a callback-list leak, and worse: a later *failure*
   of that event looked consumed and never reached ``strict_failures``.
2. ``all_of``/``any_of`` fail fast, so input failures arriving after the
   combinator settled vanished in a no-op callback.  They are now defused
   explicitly and aggregated on the first exception's ``late_failures``.
3. Cancelled timers sat in the heap until their timestamp drained —
   unbounded bloat for long horizons.  The heap now compacts in place
   once dead entries dominate.

Plus the speed campaign's measurement contract: every run reports
``ops_per_sec`` (host wall-clock simulator speed) in the bench artifact.
"""

import pytest

from repro.common.errors import SimulationError
from repro.sim.core import Simulator, all_of, any_of
from repro.sim.process import Interrupt, spawn


def waiter(event, log):
    try:
        value = yield event
        log.append(("value", value))
        return value
    except Interrupt as interrupt:
        log.append(("interrupted", interrupt.cause))
        return "interrupted"


class TestInterruptDetachesCallback:
    def test_interrupt_removes_stale_callback(self):
        sim = Simulator()
        event = sim.event()
        log = []
        process = spawn(sim, waiter(event, log), name="waiter")
        assert sim.step()  # first resume: the process registers on event
        assert event._callbacks, "process should be waiting on the event"
        process.interrupt("shutdown")
        assert not event._callbacks, \
            "interrupt must deregister the waiter from the abandoned event"
        sim.run()
        assert process.ok and process.value == "interrupted"
        assert log == [("interrupted", "shutdown")]

    def test_abandoned_event_failure_reaches_strict_mode(self):
        # Before the fix the stale callback made Event._resolve believe a
        # waiter existed, so this failure vanished silently.
        sim = Simulator(strict_failures=True)
        event = sim.event()
        process = spawn(sim, waiter(event, []), name="waiter")
        assert sim.step()
        process.interrupt()
        sim.schedule(10, lambda: event.fail(RuntimeError("orphaned")))
        with pytest.raises(SimulationError, match="never consumed"):
            sim.run()

    def test_repeated_interrupt_cycles_do_not_leak_callbacks(self):
        sim = Simulator()
        event = sim.event()
        for _ in range(50):
            process = spawn(sim, waiter(event, []), name="waiter")
            assert sim.step()
            process.interrupt()
            sim.run()
        assert event._callbacks == []


class TestLateFailureAggregation:
    def test_all_of_collects_failures_after_fail_fast(self):
        sim = Simulator()
        first, second, third = sim.event(), sim.event(), sim.event()
        done = all_of(sim, [first, second, third])
        seen = []
        done.add_callback(lambda ev: seen.append(ev.exception))
        first.fail(RuntimeError("first"))
        sim.run()
        assert seen and str(seen[0]) == "first"
        # The combinator already settled; these used to vanish silently.
        second.fail(RuntimeError("late-2"))
        third.fail(RuntimeError("late-3"))
        sim.run()  # strict mode: raises if either failure went unconsumed
        late = getattr(done.exception, "late_failures", [])
        assert [str(exc) for exc in late] == ["late-2", "late-3"]

    def test_any_of_defuses_loser_failure(self):
        sim = Simulator()
        winner, loser = sim.event(), sim.event()
        done = any_of(sim, [winner, loser])
        winner.succeed("won")
        sim.run()
        assert done.ok and done.value == "won"
        loser.fail(RuntimeError("lost anyway"))
        sim.run()  # must not trip strict_failures
        assert done.ok  # the settled result is untouched

    def test_all_of_success_path_unchanged(self):
        sim = Simulator()
        events = [sim.event() for _ in range(3)]
        done = all_of(sim, events)
        for index, event in enumerate(events):
            event.succeed(index)
        sim.run()
        assert done.ok and done.value == [0, 1, 2]


class TestHeapCompaction:
    def test_cancelled_timers_are_compacted(self):
        sim = Simulator()
        fired = []
        timers = [sim.schedule(1_000 + i, fired.append, i)
                  for i in range(500)]
        for index, timer in enumerate(timers):
            if index % 10:  # cancel 90%
                timer.cancel()
        assert len(sim._heap) < 500, \
            "dead entries should have been compacted away"
        assert len(sim._heap) >= 50  # every live timer still present
        sim.run()
        assert fired == [i for i in range(500) if i % 10 == 0], \
            "compaction must not change firing order"

    def test_cancel_is_idempotent_for_dead_accounting(self):
        sim = Simulator()
        timer = sim.schedule(10, lambda: None)
        timer.cancel()
        dead = sim._dead_timers
        timer.cancel()
        assert sim._dead_timers == dead

    def test_interleaved_schedule_and_cancel_keeps_order(self):
        sim = Simulator()
        fired = []
        live = []
        for round_index in range(20):
            batch = [sim.schedule(10_000 + i, fired.append,
                                  round_index * 100 + i)
                     for i in range(100)]
            for i, timer in enumerate(batch):
                if i % 4:
                    timer.cancel()
                else:
                    live.append(round_index * 100 + i)
        sim.run()
        # Same (10_000 + i) timestamp across rounds: ties break by
        # schedule order (sequence number), i.e. lowest round first.
        assert fired == sorted(live, key=lambda v: (v % 100, v // 100))

    def test_run_until_triggered_raises_on_drained_loop(self):
        sim = Simulator()
        event = sim.event()
        with pytest.raises(SimulationError, match="drained.*nothing"):
            sim.run_until_triggered(event, name="nothing")


class TestOpsPerSecMeasurement:
    def test_bench_artifact_reports_positive_ops_per_sec(self):
        from repro.analysis.benchfile import GATED_METRICS, bench_metrics
        from repro.system.config import SystemConfig
        from repro.system.system import run_config

        # blame=True matches repro bench, so the artifact carries the
        # full gated-metric set including ckpt_blame_p99_share.
        config = SystemConfig(mode="checkin", workload="A", threads=2,
                              total_queries=200, verify_reads=False,
                              blame=True)
        result = run_config(config)
        assert result.wall_seconds > 0
        metrics = bench_metrics(result)
        assert metrics["ops_per_sec"] > 0
        assert metrics["ops_per_sec"] == pytest.approx(result.ops_per_sec)
        # knee_sustainable_ops and rto_warm_replica_ns come from their
        # own sweeps, not a single run, and are attached to the
        # artifact via extra_metrics.
        assert set(GATED_METRICS) - set(metrics) == {
            "knee_sustainable_ops", "rto_warm_replica_ns"}
        assert set(metrics) <= set(GATED_METRICS)

    def test_regress_gate_covers_ops_per_sec(self):
        import importlib.util
        import pathlib

        path = (pathlib.Path(__file__).resolve().parent.parent /
                "benchmarks" / "regress.py")
        spec = importlib.util.spec_from_file_location("regress", path)
        regress = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(regress)
        assert "ops_per_sec" in regress.TOLERANCES
        assert "ops_per_sec" in regress.HIGHER_IS_BETTER
