"""Power-cut semantics of the sim kernel and unconsumed-failure tracking."""

import pytest

from repro.common.errors import PowerLossError, SimulationError
from repro.sim import Simulator, spawn


class TestUnconsumedFailures:
    def test_unwaited_failure_raises_at_run_exit(self):
        """Regression: Event.fail with zero waiters used to swallow the
        exception silently — a failed flash op could vanish without trace."""
        sim = Simulator()
        sim.event().fail(RuntimeError("lost flash op"))
        with pytest.raises(SimulationError, match="never consumed"):
            sim.run()

    def test_strict_mode_opt_out(self):
        sim = Simulator(strict_failures=False)
        sim.event().fail(RuntimeError("ignored by request"))
        sim.run()

    def test_late_waiter_consumes_failure(self):
        sim = Simulator()
        event = sim.event().fail(RuntimeError("seen eventually"))
        observed = []
        event.add_callback(lambda ev: observed.append(ev.exception))
        sim.run()
        assert len(observed) == 1

    def test_defuse_before_failure(self):
        sim = Simulator()
        event = sim.event()
        event.defuse()
        event.fail(RuntimeError("declared handled up front"))
        sim.run()

    def test_defuse_after_failure(self):
        sim = Simulator()
        sim.event().fail(RuntimeError("handled late")).defuse()
        sim.run()

    def test_unconsumed_failures_listed(self):
        sim = Simulator()
        sim.event().fail(RuntimeError("a"))
        sim.event().fail(RuntimeError("b"))
        assert len(sim.unconsumed_failures()) == 2


class TestPowerCut:
    def test_kills_live_processes_with_power_loss(self):
        sim = Simulator()

        def sleeper():
            yield 1_000_000

        proc = spawn(sim, sleeper(), name="victim")
        sim.step()  # start the process; it is now mid-sleep
        assert sim.power_cut() == 1
        assert sim.crashed
        assert proc.triggered and not proc.ok
        assert isinstance(proc.exception, PowerLossError)

    def test_heap_is_discarded(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.power_cut()
        assert sim.peek() is None
        assert sim.step() is False

    def test_schedule_after_crash_is_suppressed(self):
        sim = Simulator()
        sim.power_cut()
        fired = []
        timer = sim.schedule(0, fired.append, 1)
        assert timer.cancelled
        sim.run()
        assert fired == []

    def test_finally_blocks_run_but_schedule_nothing(self):
        sim = Simulator()
        released = []

        def holder():
            try:
                yield 1_000_000
            finally:
                released.append(sim.now)
                # A finally block releasing a resource would schedule the
                # next waiter here; after the cut that must be inert.

        spawn(sim, holder(), name="holder")
        sim.step()
        sim.power_cut()
        assert released == [0]
        assert sim.peek() is None

    def test_kill_failures_do_not_trip_strict_check(self):
        """The PowerLossError each killed process fails with is part of
        the crash, not an unobserved bug — run() stays quiet."""
        sim = Simulator()
        spawn(sim, (yield_ for yield_ in [1_000_000]), name="victim")
        sim.step()
        sim.power_cut()
        sim.run()

    def test_second_power_cut_is_noop(self):
        sim = Simulator()
        spawn(sim, (x for x in [1_000]), name="p")
        sim.step()
        assert sim.power_cut() == 1
        assert sim.power_cut() == 0

    def test_completed_process_is_not_a_victim(self):
        sim = Simulator()

        def quick():
            yield 5

        proc = spawn(sim, quick(), name="quick")
        sim.run()
        assert proc.ok
        assert sim.power_cut() == 0
