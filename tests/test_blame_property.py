"""Property tests: exact blame conservation, everywhere, always.

The attribution layer's load-bearing invariant is that every finalized
ledger's charges sum *exactly* — integer nanoseconds, no epsilon — to
the request's measured end-to-end latency.  Hypothesis sweeps the
claim across random seeds, checkpoint modes and tenant counts, and the
hostile corners ride along explicitly: flaky NAND (media retries divert
time into ``media_retry``) and a mid-run power cut (records finalized
before the crash must already be conserved).

Over-attribution raises :class:`~repro.obs.BlameError` inside the run
itself, so these tests double as a sweep for double-charged windows in
the instrumentation sites.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.rng import SeededRng
from repro.fault import power_cut
from repro.flash.media import MediaErrorConfig
from repro.obs import CATEGORIES, clear_blame
from repro.system import KvSystem, TenantSpec, run_config, tiny_config


def assert_all_conserved(report) -> None:
    """Exact conservation on every record of every tenant."""
    assert report is not None
    total_records = 0
    for name, collector in report.tenants:
        for total_ns, op, key, _ckpt, _span, charges in collector.records:
            assert sum(charges.values()) == total_ns, \
                f"{name}/{op} key={key}: {charges} != {total_ns}"
            assert all(category in CATEGORIES for category in charges)
            total_records += 1
    assert total_records > 0


def blamed_config(**overrides):
    defaults = dict(blame=True, total_queries=600, num_keys=64)
    defaults.update(overrides)
    return tiny_config(**defaults)


class TestConservationProperty:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**16),
           mode=st.sampled_from(["baseline", "isc_b", "checkin"]),
           tenant_count=st.integers(min_value=1, max_value=3))
    def test_conservation_across_modes_and_tenants(self, seed, mode,
                                                   tenant_count):
        clear_blame()
        tenants = tuple(TenantSpec() for _ in range(tenant_count)) \
            if tenant_count > 1 else None
        result = run_config(blamed_config(mode=mode, seed=seed,
                                          tenants=tenants))
        clear_blame()
        assert_all_conserved(result.blame)

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**16),
           rate=st.sampled_from([1e-3, 1e-2]),
           mode=st.sampled_from(["baseline", "checkin"]))
    def test_conservation_with_media_errors(self, seed, rate, mode):
        """Retries and backoff divert time into ``media_retry`` — the
        diverted windows must still tile the request exactly."""
        clear_blame()
        result = run_config(blamed_config(
            mode=mode, seed=seed,
            media=MediaErrorConfig(enabled=True, read_uecc_base=rate,
                                   program_fail_base=rate)))
        clear_blame()
        assert_all_conserved(result.blame)


class TestCrashConservation:
    def test_records_finalized_before_power_cut_are_conserved(self):
        """Kill the run mid-flight: every ledger recorded up to the cut
        conserves; in-flight requests never produce partial records."""
        clear_blame()
        system = KvSystem(blamed_config(mode="checkin", workload="A",
                                        seed=11, total_queries=5_000))
        system.load()
        for tenant in system.tenants:
            tenant.engine.start()
        done = system.make_client_pool().start()
        collector = system.tenants[0].blame
        assert collector is not None
        # Step until a few hundred requests finalized, then pull the plug.
        while not done.triggered and collector.requests < 300:
            assert system.sim.step(), "simulation starved"
        assert not done.triggered, "crash must land mid-run"
        power_cut(system, SeededRng(23))
        clear_blame()
        assert collector.requests >= 300
        for total_ns, op, key, _ckpt, _span, charges in collector.records:
            assert sum(charges.values()) == total_ns, \
                f"{op} key={key}: {charges} != {total_ns}"
