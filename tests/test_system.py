"""End-to-end system tests: full runs across configurations.

System-building boilerplate lives in the shared fixtures
(``tests/conftest.py``): ``run_tiny`` runs a full tiny-scale workload,
``make_system``/``started_system`` build one for manual driving.
"""

import pytest

from repro.common.errors import ConfigError
from repro.system import DEFAULT_MAPPING_UNITS, tiny_config

ALL_MODES = ("baseline", "isc_a", "isc_b", "isc_c", "checkin")


class TestSystemConfig:
    def test_mode_defaults_mapping_unit(self):
        assert tiny_config(mode="baseline").resolved_mapping_unit == 4096
        assert tiny_config(mode="checkin").resolved_mapping_unit == 512
        assert DEFAULT_MAPPING_UNITS["isc_c"] == 512

    def test_mapping_unit_override(self):
        config = tiny_config(mode="checkin", mapping_unit=2048)
        assert config.resolved_mapping_unit == 2048

    def test_with_mode(self):
        base = tiny_config(mode="baseline", threads=7)
        other = base.with_mode("checkin")
        assert other.mode == "checkin"
        assert other.threads == 7

    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            tiny_config(mode="bogus")

    def test_capacity_check_rejects_oversized_workload(self):
        config = tiny_config(num_keys=200_000, size_spec="fixed-4096")
        with pytest.raises(ConfigError):
            config.check_capacity()

    def test_size_specs(self):
        assert tiny_config(size_spec="fixed-512").size_model().name == \
            "fixed-512"
        assert tiny_config(size_spec="P3").size_model().name == "P3"
        assert tiny_config().size_model().name == "small-default"
        with pytest.raises(ConfigError):
            tiny_config(size_spec="nope").size_model()

    def test_engine_config_regions_disjoint(self):
        engine_cfg = tiny_config(mode="checkin").engine_config()
        assert engine_cfg.journal_sectors % 2 == 0
        assert engine_cfg.meta_lba_start >= engine_cfg.journal_sectors
        assert engine_cfg.data_lba_start >= \
            engine_cfg.meta_lba_start + engine_cfg.meta_sectors


class TestFullRuns:
    @pytest.mark.parametrize("mode", ALL_MODES)
    def test_run_completes_all_queries(self, run_tiny, mode):
        result = run_tiny(mode=mode, total_queries=800)
        assert result.metrics.operations == 800
        assert result.metrics.throughput_qps() > 0
        assert result.metrics.latency_all.mean() > 0

    def test_checkpoints_happen(self, run_tiny):
        result = run_tiny(total_queries=1500)
        assert result.checkpoint_count >= 1
        assert result.mean_checkpoint_ns() > 0

    def test_deterministic_across_runs(self, run_tiny):
        a = run_tiny(total_queries=600)
        b = run_tiny(total_queries=600)
        assert a.metrics.latency_all.mean() == b.metrics.latency_all.mean()
        assert a.metrics.throughput_qps() == b.metrics.throughput_qps()
        assert a.checkpoint_count == b.checkpoint_count

    def test_seed_changes_results(self, run_tiny):
        a = run_tiny(total_queries=600, seed=1)
        b = run_tiny(total_queries=600, seed=2)
        assert a.metrics.latency_all.mean() != b.metrics.latency_all.mean()

    def test_workload_wo_generates_no_reads(self, run_tiny):
        result = run_tiny(workload="WO", total_queries=500)
        assert len(result.metrics.latency_read) == 0
        assert len(result.metrics.latency_update) == 500

    def test_workload_f_counts_rmw_as_update(self, run_tiny):
        result = run_tiny(workload="F", total_queries=500)
        assert len(result.metrics.latency_update) > 0
        assert len(result.metrics.latency_read) > 0

    def test_uniform_distribution_runs(self, run_tiny):
        result = run_tiny(distribution="uniform", total_queries=500)
        assert result.metrics.operations == 500


class TestPaperShapeAtTinyScale:
    """Smoke-level shape checks; the benchmarks do the real comparisons."""

    def test_checkin_reduces_redundant_write_bytes(self, run_tiny):
        baseline = run_tiny(mode="baseline")
        checkin = run_tiny(mode="checkin")
        assert checkin.metrics.redundant_write_bytes() < \
            0.5 * baseline.metrics.redundant_write_bytes()

    def test_checkin_remaps(self, run_tiny):
        result = run_tiny(mode="checkin", size_spec="fixed-512")
        assert result.metrics.remapped_units() > 0
        # Fully aligned records: no copy path at all.
        assert result.metrics.delta("isce.copied_units") == 0

    def test_isc_c_does_not_remap_packed_logs(self, run_tiny):
        result = run_tiny(mode="isc_c", size_spec="fixed-512")
        assert result.metrics.remapped_units() == 0

    def test_io_amplification_sane(self, run_tiny):
        result = run_tiny(mode="baseline")
        amplification = result.metrics.io_amplification()
        assert 1.0 < amplification < 20.0


class TestKvSystemHelpers:
    def test_checkpoint_now(self, started_system, drive):
        system = started_system()

        def updates():
            for key in range(5):
                yield from system.engine.put(key)

        drive(system, updates())
        report = system.checkpoint_now()
        assert report is not None
        assert report.entries_checkpointed == 5
        system.engine.shutdown()

    def test_load_idempotent(self, make_system):
        system = make_system()
        system.load()
        system.load()
        assert len(system.engine.kvmap) == system.config.num_keys
