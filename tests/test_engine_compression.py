"""End-to-end tests for the modelled compressor (Algorithm 2 lines 3-6).

Compression only applies to values larger than the mapping unit; the
record's data-area home is sized by the *stored* (compressed) footprint,
which keeps remapping consistent.
"""

import pytest

from repro.engine import EngineConfig, StorageEngine
from repro.flash import FlashGeometry, FlashTiming
from repro.ftl import FtlConfig
from repro.sim import Simulator, spawn
from repro.ssd import InterfaceConfig, Ssd, SsdSpec


def build(compress_ratio, record_size=2048):
    sim = Simulator()
    ssd = Ssd(sim, SsdSpec(
        geometry=FlashGeometry(channels=2, packages_per_channel=1,
                               dies_per_package=2, planes_per_die=1,
                               blocks_per_plane=24, pages_per_block=16),
        timing=FlashTiming(read_ns=20_000, program_ns=200_000,
                           erase_ns=1_500_000),
        ftl=FtlConfig(mapping_unit=512),
        interface=InterfaceConfig(queue_depth=16),
        enable_isce=True, allow_remap=True))
    engine = StorageEngine(sim, ssd, EngineConfig(
        mode="checkin", journal_lba_start=0, journal_sectors=2048,
        meta_lba_start=2048, meta_sectors=64, data_lba_start=2112,
        data_sectors=8192, mapping_unit=512, group_commit_ns=5_000,
        compress_ratio=compress_ratio, mem_cache_records=0))
    engine.load([(key, record_size) for key in range(16)])
    engine.start()
    return sim, ssd, engine


def run_process(sim, generator):
    proc = spawn(sim, generator)
    while not proc.triggered:
        assert sim.step()
    assert proc.ok, proc.exception
    return proc.value


class TestCompressedFootprint:
    def test_home_sized_by_compressed_bytes(self):
        _sim, _ssd, engine = build(compress_ratio=0.5, record_size=2048)
        record = engine.kvmap.get(0)
        # 2048 * 0.5 = 1024 -> 2 sectors instead of 4.
        assert record.nsectors == 2

    def test_uncompressed_home(self):
        _sim, _ssd, engine = build(compress_ratio=1.0, record_size=2048)
        assert engine.kvmap.get(0).nsectors == 4

    def test_journal_volume_shrinks(self):
        volumes = {}
        for ratio in (1.0, 0.5):
            sim, ssd, engine = build(compress_ratio=ratio)

            def scenario():
                for key in range(16):
                    yield from engine.put(key)

            run_process(sim, scenario())
            volumes[ratio] = ssd.stats.bytes("journal.transactions")
        assert volumes[0.5] < volumes[1.0]


class TestCompressedCheckpointCorrectness:
    @pytest.mark.parametrize("ratio", [1.0, 0.7, 0.4])
    def test_remap_checkpoint_roundtrip(self, ratio):
        """Compressed FULL logs remap and read back consistently."""
        sim, _ssd, engine = build(compress_ratio=ratio)

        def scenario():
            for key in range(16):
                yield from engine.put(key)
            report = yield from engine.checkpoint()
            versions = []
            for key in range(16):
                versions.append((yield from engine.get(key)))
            return report, versions

        report, versions = run_process(sim, scenario())
        assert versions == [1] * 16
        # Compressed logs are still whole-unit aligned -> pure remap.
        assert report.remapped_units > 0
        assert report.copied_units == 0

    def test_durability_with_compression(self):
        from repro.engine.recovery import check_durability
        sim, _ssd, engine = build(compress_ratio=0.6)
        acked = {}

        def scenario():
            for i in range(48):
                key = i % 16
                acked[key] = yield from engine.put(key)
                if i == 24:
                    yield from engine.checkpoint()

        run_process(sim, scenario())
        check_durability(engine, acked)
