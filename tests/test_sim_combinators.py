"""Extra kernel tests: combinators with processes, store edge cases."""

from repro.sim import Simulator, Store, any_of, all_of, sleep_event, spawn


class TestAnyOfWithProcesses:
    def test_first_process_wins(self):
        sim = Simulator()

        def slow():
            yield 100
            return "slow"

        def fast():
            yield 10
            return "fast"

        winner = any_of(sim, [spawn(sim, slow()), spawn(sim, fast())])
        sim.run()
        assert winner.value == "fast"

    def test_race_between_sleep_and_process(self):
        sim = Simulator()

        def worker():
            yield 50
            return "done"

        first = any_of(sim, [sleep_event(sim, 10), spawn(sim, worker())])
        sim.run()
        assert first.triggered
        assert first.value is None  # the timeout fired first

    def test_all_of_nested_processes(self):
        sim = Simulator()

        def child(ret, delay):
            yield delay
            return ret

        combined = all_of(sim, [spawn(sim, child(i, 10 * (3 - i)))
                                for i in range(3)])
        sim.run()
        assert combined.value == [0, 1, 2]  # input order, not finish order


class TestStoreEdges:
    def test_multiple_blocked_putters_fifo(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        store.put("a")
        order = []

        def producer(tag):
            yield store.put(tag)
            order.append(tag)

        spawn(sim, producer("b"))
        spawn(sim, producer("c"))

        def consumer():
            got = []
            for _ in range(3):
                item = yield store.get()
                got.append(item)
                yield 1
            return got

        proc = spawn(sim, consumer())
        sim.run()
        assert proc.value == ["a", "b", "c"]
        assert order == ["b", "c"]

    def test_get_before_put_handoff(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        results = []

        def getter():
            item = yield store.get()
            results.append(item)

        spawn(sim, getter())
        sim.schedule(10, store.put, "direct")
        sim.run()
        assert results == ["direct"]
        assert len(store) == 0

    def test_interleaved_producers_consumers(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        consumed = []

        def producer(base):
            for i in range(4):
                yield store.put(f"{base}{i}")
                yield 3

        def consumer():
            for _ in range(8):
                item = yield store.get()
                consumed.append(item)
                yield 2

        spawn(sim, producer("x"))
        spawn(sim, producer("y"))
        proc = spawn(sim, consumer())
        sim.run()
        assert proc.ok
        assert sorted(consumed) == sorted(
            [f"x{i}" for i in range(4)] + [f"y{i}" for i in range(4)])
