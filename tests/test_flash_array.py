"""Unit tests for the timed flash array (contention + accounting)."""

import pytest

from repro.common.errors import FlashError
from repro.flash import FlashArray, FlashGeometry, FlashTiming
from repro.sim import Simulator, spawn


def make_array(channels=2, planes=1, blocks=4, pages=8):
    sim = Simulator()
    geometry = FlashGeometry(channels=channels, packages_per_channel=1,
                             dies_per_package=1, planes_per_die=planes,
                             blocks_per_plane=blocks, pages_per_block=pages,
                             page_size=4096)
    timing = FlashTiming(read_ns=50_000, program_ns=500_000,
                         erase_ns=3_000_000, channel_bandwidth=10**9,
                         channel_setup_ns=100)
    return sim, FlashArray(sim, geometry, timing)


class TestBasicOps:
    def test_program_then_read_roundtrip(self):
        sim, array = make_array()
        results = []

        def proc():
            yield from array.program_page(0, {"tag": 1}, oob="meta")
            data, oob = yield from array.read_page(0)
            results.append((data, oob))

        spawn(sim, proc())
        sim.run()
        assert results == [({"tag": 1}, "meta")]

    def test_program_timing(self):
        sim, array = make_array()
        done_at = []

        def proc():
            yield from array.program_page(0, "x")
            done_at.append(sim.now)

        spawn(sim, proc())
        sim.run()
        # transfer (100 setup + 4096 ns) + program 500_000
        assert done_at == [100 + 4096 + 500_000]

    def test_read_timing(self):
        sim, array = make_array()
        done_at = []

        def proc():
            yield from array.program_page(0, "x")
            start = sim.now
            yield from array.read_page(0)
            done_at.append(sim.now - start)

        spawn(sim, proc())
        sim.run()
        assert done_at == [50_000 + 100 + 4096]

    def test_counters(self):
        sim, array = make_array()

        def proc():
            yield from array.program_page(0, "x")
            yield from array.read_page(0)
            block = array.geometry.block_of_page(0)
            yield from array.erase_block(block)

        spawn(sim, proc())
        sim.run()
        assert array.stats.value("flash.program") == 1
        assert array.stats.value("flash.read") == 1
        assert array.stats.value("flash.erase") == 1
        assert array.stats.bytes("flash.program") == 4096

    def test_out_of_order_program_fails_process(self):
        sim, array = make_array()

        def proc():
            yield from array.program_page(1, "x")

        spawn(sim, proc())
        with pytest.raises(FlashError):
            sim.run()

    def test_erase_allows_rewrite(self):
        sim, array = make_array()
        results = []

        def proc():
            yield from array.program_page(0, "old")
            yield from array.erase_block(0)
            yield from array.program_page(0, "new")
            data, _ = yield from array.read_page(0)
            results.append(data)

        spawn(sim, proc())
        sim.run()
        assert results == ["new"]
        assert array.block(0).erase_count == 1


class TestContention:
    def test_same_lun_serializes(self):
        sim, array = make_array(channels=1, blocks=4)
        finish = []

        def writer(ppa):
            yield from array.program_page(ppa, "x")
            finish.append(sim.now)

        # Pages 0 and 1 are in block 0 -> same LUN, sequential program order.
        spawn(sim, writer(0))
        spawn(sim, writer(1))
        sim.run()
        assert len(finish) == 2
        # Second op waits for the first full program to complete.
        assert finish[1] >= finish[0] + 500_000

    def test_different_luns_overlap(self):
        sim, array = make_array(channels=2, blocks=2)
        geo = array.geometry
        assert geo.num_luns == 2
        finish = []

        def writer(block):
            ppa = geo.first_page_of_block(block)
            yield from array.program_page(ppa, "x")
            finish.append(sim.now)

        spawn(sim, writer(0))  # lun 0, channel 0
        spawn(sim, writer(1))  # lun 1, channel 1
        sim.run()
        # Both finish at the same time: full parallelism.
        assert finish[0] == finish[1]

    def test_shared_channel_serializes_transfers(self):
        # 1 channel, 2 planes -> 2 LUNs share the channel.
        sim, array = make_array(channels=1, planes=2, blocks=2)
        geo = array.geometry
        assert geo.num_luns == 2 and geo.channels == 1
        finish = []

        def writer(block):
            ppa = geo.first_page_of_block(block)
            yield from array.program_page(ppa, "x")
            finish.append(sim.now)

        spawn(sim, writer(0))
        spawn(sim, writer(1))
        sim.run()
        transfer = 100 + 4096
        # Programs overlap but the two transfers serialize on the channel.
        assert max(finish) == transfer * 2 + 500_000


class TestRecoveryHelpers:
    def test_scan_oob(self):
        sim, array = make_array()

        def proc():
            yield from array.program_page(0, "a", oob=("k1", 1))
            yield from array.program_page(1, "b", oob=("k2", 1))

        spawn(sim, proc())
        sim.run()
        scan = array.scan_oob()
        assert (0, ("k1", 1)) in scan
        assert (1, ("k2", 1)) in scan
        assert len(scan) == 2

    def test_program_page_now(self):
        _sim, array = make_array()
        array.program_page_now(0, "fast", oob="o")
        assert array.page_data(0) == "fast"
        assert array.page_oob(0) == "o"
        assert array.stats.value("flash.program") == 1

    def test_check_not_written(self):
        _sim, array = make_array()
        array.check_not_written(0)
        array.program_page_now(0, "x")
        with pytest.raises(FlashError):
            array.check_not_written(0)

    def test_wear_statistics(self):
        sim, array = make_array()

        def proc():
            yield from array.erase_block(0)
            yield from array.erase_block(0)
            yield from array.erase_block(1)

        spawn(sim, proc())
        sim.run()
        assert array.total_erase_count() == 3
        assert array.max_erase_count() == 2

    def test_endurance_limit_via_array(self):
        sim, array = make_array()
        array.max_pe_cycles = 1

        def proc():
            yield from array.erase_block(0)
            yield from array.erase_block(0)

        spawn(sim, proc())
        with pytest.raises(FlashError):
            sim.run()
