"""Blame-ledger integration tests: conservation, zero overhead, export.

The three contracts that make the attribution layer trustworthy:

* **Exact conservation** — every finalized ledger's charges sum to the
  request's end-to-end latency to the nanosecond (the property tests in
  ``test_blame_property.py`` sweep this across seeds and modes; here we
  pin the plumbing on one run per claim);
* **Zero overhead when disabled** — a blamed and an unblamed run of the
  same config produce byte-identical device counter snapshots and the
  same simulated end time (blame measures existing windows only);
* **Faithful export** — the ``repro-blame/v1`` JSONL dump round-trips
  through its own validator with zero problems, and exemplars link to
  trace spans when the run is traced.
"""

import pytest

from repro.obs import (
    CATEGORIES,
    CKPT_FAMILY,
    BlameCollector,
    BlameError,
    RequestLedger,
    add_ns,
    blame_table,
    clear_blame,
    exemplar_table,
    fold_completion,
    tail_table,
    validate_blame_file,
    write_blame_jsonl,
)
from repro.system import KvSystem, run_config, tiny_config


def blamed_run(**overrides):
    """A tiny blamed run; clears the global registry around itself."""
    clear_blame()
    result = run_config(tiny_config(blame=True, **overrides))
    clear_blame()
    return result


def assert_conserved(collector: BlameCollector) -> None:
    """Every record's charges sum exactly to its end-to-end latency."""
    assert collector.requests > 0
    for total_ns, op, key, _ckpt, _span, charges in collector.records:
        assert sum(charges.values()) == total_ns, \
            f"op={op} key={key}: {charges} != {total_ns}"
        assert all(category in CATEGORIES for category in charges)


class TestLedger:
    def test_finalize_assigns_residual(self):
        ledger = RequestLedger("get", 7)
        ledger.charge("flash_read", 600)
        ledger.finalize(1_000)
        assert ledger.charges == {"flash_read": 600, "host_cpu": 400}
        assert ledger.total_ns == 1_000

    def test_finalize_rejects_over_attribution(self):
        ledger = RequestLedger("get", 7)
        ledger.charge("flash_read", 1_200)
        with pytest.raises(BlameError):
            ledger.finalize(1_000)

    def test_fold_completion_charges_remainder(self):
        ledger = RequestLedger("put", 1)
        device = {}
        add_ns(device, "flash_program", 300)
        fold_completion(ledger, 500, device, "ctrl_cpu")
        assert ledger.charges == {"flash_program": 300, "ctrl_cpu": 200}

    def test_fold_completion_rejects_overflow(self):
        ledger = RequestLedger("put", 1)
        with pytest.raises(BlameError):
            fold_completion(ledger, 100, {"flash_program": 300}, "ctrl_cpu")


class TestConservation:
    @pytest.mark.parametrize("mode", ["baseline", "checkin"])
    def test_full_run_conserves(self, mode):
        result = blamed_run(mode=mode, total_queries=800)
        assert result.blame is not None
        assert_conserved(result.blame.aggregate())

    def test_multi_tenant_run_conserves(self):
        from repro.system import TenantSpec
        result = blamed_run(
            tenants=(TenantSpec(), TenantSpec()), total_queries=800)
        for name, collector in result.blame.tenants:
            assert_conserved(collector)


class TestZeroOverhead:
    def test_blame_flag_is_free_in_simulated_time(self):
        """Blamed and unblamed runs are indistinguishable on the device.

        Blame never yields, so the counter snapshot and the simulation
        clock must match byte for byte — the CI smoke job asserts the
        same thing on a bigger run.
        """
        snapshots = {}
        for blame in (False, True):
            clear_blame()
            system = KvSystem(tiny_config(mode="isc_b", total_queries=600,
                                          blame=blame))
            system.run()
            snapshots[blame] = (system.ssd.stats.snapshot(),
                                system.sim.now)
        clear_blame()
        assert snapshots[False] == snapshots[True]


class TestTailAttribution:
    def test_gated_baseline_tail_is_checkpoint_dominated(self):
        """With the consistency gate on and a small journal, the worst
        baseline requests stall behind checkpoints — the dominant tail
        stage must be in the checkpoint family."""
        result = blamed_run(mode="baseline", workload="WO",
                            lock_queries_during_checkpoint=True)
        profile = result.blame.aggregate().tail_profile(99.0)
        assert profile.tail_requests > 0
        assert profile.dominant_tail_category() in CKPT_FAMILY
        assert profile.ckpt_tail_share > 0.5

    def test_tail_profile_shares_sum_to_one(self):
        result = blamed_run(total_queries=800)
        profile = result.blame.aggregate().tail_profile(99.0)
        assert sum(profile.all_shares.values()) == pytest.approx(1.0)
        if profile.tail_requests:
            assert sum(profile.tail_shares.values()) == pytest.approx(1.0)


class TestExportRoundtrip:
    def test_jsonl_validates_clean(self, tmp_path):
        result = blamed_run(total_queries=800)
        path = str(tmp_path / "blame.jsonl")
        count = write_blame_jsonl(path, result.blame)
        assert count > 3  # header + tenant + tail + ... + footer
        assert validate_blame_file(path) == []

    def test_validator_flags_corruption(self, tmp_path):
        result = blamed_run(total_queries=800)
        path = str(tmp_path / "blame.jsonl")
        write_blame_jsonl(path, result.blame)
        lines = open(path).read().splitlines()
        lines = [line.replace('"total_ns":', '"total_ns": 1, "x":', 1)
                 if '"type": "tenant"' in line else line
                 for line in lines]
        open(path, "w").write("\n".join(lines) + "\n")
        assert validate_blame_file(path) != []

    def test_tables_render(self):
        result = blamed_run(total_queries=800)
        assert "stage" in blame_table(result.blame)
        assert "share" in tail_table(result.blame)
        assert "span" in exemplar_table(result.blame)


class TestTraceLinkage:
    def test_exemplars_carry_span_ids_when_traced(self):
        result = blamed_run(total_queries=600, trace=True)
        exemplars = result.blame.aggregate().exemplars()
        assert exemplars
        assert all(span_id is not None
                   for _t, _op, _key, _ckpt, span_id, _c in exemplars)

    def test_exemplars_span_is_none_untraced(self):
        result = blamed_run(total_queries=600)
        exemplars = result.blame.aggregate().exemplars()
        assert all(span_id is None
                   for _t, _op, _key, _ckpt, span_id, _c in exemplars)


class TestWatchdogAnnotation:
    def test_watchdog_events_stamped_with_dominant_blame(self):
        from repro.telemetry import TelemetryConfig
        clear_blame()
        config = tiny_config(blame=True, workload="WO",
                             lock_queries_during_checkpoint=True,
                             telemetry=TelemetryConfig(interval_ns=100_000))
        result = run_config(config)
        clear_blame()
        events = result.telemetry.watchdogs.events
        assert events, "gated WO run should trip at least one watchdog"
        stamped = [event for event in events if event.blame]
        assert stamped
        assert all(event.blame in CATEGORIES for event in stamped)
