"""Bench artifacts and the CI regression gate (benchmarks/regress.py)."""

import json
import pathlib
import sys

import pytest

from repro.analysis.benchfile import (
    BENCH_SCHEMA,
    bench_artifact,
    config_hash,
    load_bench_artifact,
    write_bench_artifact,
)
from repro.system.config import tiny_config
from repro.system.system import run_config

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import regress  # noqa: E402  (benchmarks/regress.py)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    # Bench runs always carry blame ledgers (repro bench does the same)
    # so the artifact includes the gated ckpt_blame_p99_share metric,
    # and attach the probe-backed companion metrics (knee, warm-replica
    # RTO) — fixed stand-ins here, since the real sweeps are
    # benchmark-scale work.
    result = run_config(tiny_config(blame=True))
    bench = {"mode": "checkin", "workload": "A", "threads": 4,
             "queries": 1_500, "distribution": "zipfian"}
    art = bench_artifact(result, bench, stamp="20260101T000000Z",
                         extra_metrics={"knee_sustainable_ops": 48_000.0,
                                        "rto_warm_replica_ns": 550_000.0})
    path = tmp_path_factory.mktemp("bench") / "BENCH_base.json"
    write_bench_artifact(str(path), art)
    return path


class TestArtifact:
    def test_schema_and_required_fields(self, artifact):
        art = load_bench_artifact(str(artifact))
        assert art["schema"] == BENCH_SCHEMA
        assert set(regress.TOLERANCES) <= set(art["metrics"])
        assert art["config_hash"] == config_hash(art["bench"])
        assert art["commit"]  # "unknown" at worst, never empty

    def test_config_hash_is_order_insensitive(self):
        a = config_hash({"mode": "checkin", "threads": 8})
        b = config_hash({"threads": 8, "mode": "checkin"})
        assert a == b
        assert a != config_hash({"mode": "checkin", "threads": 16})

    def test_loader_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(ValueError):
            load_bench_artifact(str(bad))


def mutate(artifact_path, tmp_path, **metric_scales):
    art = json.loads(pathlib.Path(artifact_path).read_text())
    for metric, scale in metric_scales.items():
        art["metrics"][metric] *= scale
    out = tmp_path / "BENCH_current.json"
    out.write_text(json.dumps(art))
    return out


class TestGate:
    def test_identical_artifact_passes(self, artifact, capsys):
        assert regress.main([str(artifact),
                             "--baseline", str(artifact)]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_injected_throughput_regression_fails(self, artifact,
                                                  tmp_path, capsys):
        current = mutate(artifact, tmp_path, throughput_qps=0.8)
        assert regress.main([str(current),
                             "--baseline", str(artifact)]) == 1
        err = capsys.readouterr().err
        assert "throughput_qps" in err and "dropped 20.0%" in err

    def test_throughput_gain_is_not_a_regression(self, artifact,
                                                 tmp_path):
        current = mutate(artifact, tmp_path, throughput_qps=1.5)
        assert regress.main([str(current),
                             "--baseline", str(artifact)]) == 0

    def test_latency_growth_fails(self, artifact, tmp_path, capsys):
        current = mutate(artifact, tmp_path, latency_p99_us=1.5)
        assert regress.main([str(current),
                             "--baseline", str(artifact)]) == 1
        assert "latency_p99_us" in capsys.readouterr().err

    def test_operations_must_match_exactly(self, artifact, tmp_path):
        current = mutate(artifact, tmp_path, operations=1.001)
        assert regress.main([str(current),
                             "--baseline", str(artifact)]) == 1

    def test_config_hash_mismatch_refused(self, artifact, tmp_path,
                                          capsys):
        art = json.loads(artifact.read_text())
        art["bench"]["threads"] = 99
        art["config_hash"] = config_hash(art["bench"])
        other = tmp_path / "BENCH_other.json"
        other.write_text(json.dumps(art))
        assert regress.main([str(other),
                             "--baseline", str(artifact)]) == 1
        assert "config_hash mismatch" in capsys.readouterr().err

    def test_missing_file_is_an_error(self, artifact, tmp_path):
        assert regress.main([str(tmp_path / "nope.json"),
                             "--baseline", str(artifact)]) == 2


class TestCommittedBaseline:
    """The repo ships a real baseline the CI gate runs against."""

    def test_baseline_exists_and_loads(self):
        baseline = REPO_ROOT / "BENCH_baseline.json"
        art = load_bench_artifact(str(baseline))
        assert art["schema"] == BENCH_SCHEMA
        assert set(regress.TOLERANCES) <= set(art["metrics"])
        assert art["metrics"]["operations"] == 4000.0
