"""Smoke tests for the experiment harness at micro scale.

These verify every registered experiment runs end to end and produces a
coherent result object; the benchmarks do the real (paper-shape) runs.
"""

import pytest

from repro.experiments import paper_config
from repro.experiments.registry import EXPERIMENTS, run_experiment
from tests.conftest import MICRO


class TestBase:
    def test_paper_config_modes(self):
        for mode in ("baseline", "isc_a", "isc_b", "isc_c", "checkin"):
            config = paper_config(mode, MICRO)
            assert config.mode == mode
            config.check_capacity()

    def test_paper_config_overrides(self):
        config = paper_config("checkin", MICRO, threads=9, workload="WO")
        assert config.threads == 9
        assert config.workload == "WO"

    def test_scaled_queries_floor(self):
        assert MICRO.scaled_queries(0.0001) == 1_000


class TestRegistry:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig3a", "fig3b", "fig3c", "fig8a", "fig8b", "fig9", "fig10",
            "fig11", "fig12", "fig13a", "fig13b", "table1", "interference",
            "knee", "burst_storm", "recovery_matrix"}

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_table1_renders(self):
        text = run_experiment("table1", MICRO)
        assert "Flash topology" in text


class TestMicroRuns:
    """Each experiment at micro scale: runs, returns, renders."""

    def test_fig3a(self):
        result = run_experiment("fig3a", MICRO)
        assert {row["distribution"] for row in result.rows} == \
            {"uniform", "zipfian"}
        assert result.amp("uniform", "io") > 1.0
        assert "Figure 3(a)" in result.table()

    def test_fig3c(self):
        result = run_experiment("fig3c", MICRO)
        assert result.read_avg_us > 0
        assert "slowdown" in result.table()

    def test_fig8a(self):
        result = run_experiment("fig8a", MICRO)
        assert len(result.intervals_ms) == 4
        assert result.mean_redundant("baseline") > \
            result.mean_redundant("checkin")
        assert "redundant" in result.table()

    def test_fig9(self):
        result = run_experiment("fig9", MICRO)
        assert ("zipfian", "checkin") in result.p999_us
        assert "tail latency" in result.table()

    def test_fig12(self):
        result = run_experiment("fig12", MICRO)
        assert len(result.throughput_qps["baseline"]) == 5
        assert result.table()

    def test_fig13b(self):
        result = run_experiment("fig13b", MICRO)
        assert result.overhead_pct("P4", 4096) > \
            result.overhead_pct("P4", 512) - 20.0
        assert "space overhead" in result.table()

    def test_interference(self):
        result = run_experiment("interference", MICRO)
        for mode in ("baseline", "checkin"):
            assert result.p99_read_us[(mode, "solo")] > 0
            assert result.p99_read_us[(mode, "shared")] > 0
            assert result.p99_read_us[(mode, "locked")] > 0
            assert result.aggregate_qps[mode] > 0
        # The storm tenant actually checkpointed under contention, and
        # remapping degrades the co-tenant's tail less than host-level
        # checkpointing (the PR's acceptance criterion, at micro scale).
        assert result.storm_checkpoints["checkin"] >= 1
        assert result.remap_beats_host_checkpointing()
        assert "degradation_x" in result.table()
        # The locked placement carried blame ledgers and produced a
        # checkpoint-attributable tail share for both modes.  Micro-scale
        # tails are a handful of requests, so the baseline ≫ checkin
        # direction is asserted at benchmark scale, not here.
        assert set(result.ckpt_tail_share) == {"baseline", "checkin"}
        for share in result.ckpt_tail_share.values():
            assert 0.0 <= share <= 1.0
        assert "ckpt_tail_blame" in result.table()


class TestSlowerMicroRuns:
    """Sweep experiments (still micro, a few seconds each)."""

    def test_knee(self):
        result = run_experiment("knee", MICRO)
        # The acceptance headline: under open-loop load with the freeze-
        # consistency lock, in-storage checkpointing sustains measurably
        # more offered load inside the fixed SLO than the host journal.
        assert result.sustainable_ops("baseline") > 0
        assert result.checkin_beats_baseline()
        assert result.knee_gain() > 1.5
        for mode in ("baseline", "checkin"):
            assert result.points[mode], "no probed points"
            for point in result.points[mode]:
                assert point.submitted >= point.completed
        assert "sustainable" in result.table()

    def test_burst_storm(self):
        result = run_experiment("burst_storm", MICRO)
        for mode in ("baseline", "checkin"):
            # Typed completions reconcile and the waiting room stayed
            # bounded, even at 1.5x the calibrated solo capacity.
            assert result.survived(mode)
        assert result.checkin_keeps_more_load()
        # The PR-5 watchdogs double as overload detectors: the host-
        # journal mode trips them under the flash crowd, checkin doesn't.
        assert result.overload_detected("baseline")
        assert not result.overload_detected("checkin")
        assert "goodput" in result.table()

    def test_recovery_matrix(self):
        result = run_experiment("recovery_matrix", MICRO)
        # Three strategies over the same seeded kill campaign: local
        # SPOR loses nothing, the warm replica promotes fastest.
        assert result.row("spor_local").rpo_ops == 0.0
        assert result.row("warm_replica").rto_ns < \
            result.row("spor_local").rto_ns
        assert result.warm_speedup() > 1.0
        assert "rto" in result.table().lower()

    def test_fig3b(self):
        result = run_experiment("fig3b", MICRO)
        assert len(result.rows) == 2 * len(MICRO.thread_sweep)
        assert result.latest_ratio_factor() > 0

    def test_fig10(self):
        result = run_experiment("fig10", MICRO)
        assert set(result.ckpt_ms) == {
            "baseline", "isc_a", "isc_b", "isc_c", "checkin"}
        assert result.at_max_threads("checkin") < \
            result.at_max_threads("baseline")

    def test_fig11(self):
        result = run_experiment("fig11", MICRO)
        key = ("A", "checkin", MICRO.thread_sweep[-1])
        assert result.throughput_qps[key] > 0
        assert "throughput" in result.table()

    def test_fig8b_micro_device(self):
        from repro.experiments.fig8 import run_fig8b
        result = run_fig8b(MICRO, query_counts=(4_000, 9_000),
                           modes=("baseline", "checkin"))
        assert result.total_gc("baseline") >= result.total_gc("checkin")

    def test_fig13a(self):
        from repro.experiments.fig13 import run_fig13a
        result = run_fig13a(MICRO, units=(512, 4096))
        assert result.throughput_qps["checkin"][0] > 0
