"""Property tests: the FTL against a trivial oracle, and kernel ordering.

The oracle is a plain dict of sector → tag with the same visible
semantics (out-of-place-ness, GC, striping, caching are all supposed to be
invisible).  Any divergence is a translation-layer bug.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flash import FlashArray, FlashGeometry, FlashTiming
from repro.ftl import Ftl, FtlConfig
from repro.sim import Simulator, spawn

SECTORS = 48  # covers several units and pages

# write(lba, n) | trim(lba, n) | remap(src_unit, dst_unit)
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, SECTORS - 1),
                  st.integers(1, 6)),
        st.tuples(st.just("trim"), st.integers(0, SECTORS - 1),
                  st.integers(1, 8)),
        st.tuples(st.just("remap"), st.integers(0, SECTORS // 2 - 1),
                  st.integers(0, SECTORS // 2 - 1)),
    ),
    min_size=1, max_size=50)


def make_ftl(mapping_unit):
    sim = Simulator()
    geometry = FlashGeometry(channels=2, packages_per_channel=1,
                             dies_per_package=1, planes_per_die=2,
                             blocks_per_plane=12, pages_per_block=4)
    array = FlashArray(sim, geometry, FlashTiming(
        read_ns=5_000, program_ns=50_000, erase_ns=500_000))
    return sim, Ftl(sim, array, FtlConfig(mapping_unit=mapping_unit,
                                          gc_low_watermark=2,
                                          gc_high_watermark=2))


def apply_ops(sim, ftl, operations, mapping_unit):
    """Run the op sequence against both FTL and oracle; return the oracle."""
    spu = mapping_unit // 512
    oracle = {}
    counter = [0]

    def driver():
        for op in operations:
            if op[0] == "write":
                _kind, lba, n = op
                n = min(n, SECTORS - lba)
                counter[0] += 1
                tags = [f"w{counter[0]}s{i}" for i in range(n)]
                yield from ftl.write(lba, n, tags=tags)
                for i in range(n):
                    oracle[lba + i] = tags[i]
            elif op[0] == "trim":
                _kind, lba, n = op
                n = min(n, SECTORS - lba)
                yield from ftl.trim(lba, n)
                first_unit = (lba + spu - 1) // spu
                last_unit = (lba + n) // spu
                for unit in range(first_unit, last_unit):
                    for i in range(spu):
                        oracle.pop(unit * spu + i, None)
            else:
                _kind, src_unit, dst_unit = op
                src_lpn, dst_lpn = src_unit, dst_unit
                if ftl.mapping.is_mapped(src_lpn):
                    yield from ftl.remap([(src_lpn, dst_lpn)])
                    for i in range(spu):
                        src_sector = src_unit * spu + i
                        dst_sector = dst_unit * spu + i
                        if src_sector in oracle:
                            oracle[dst_sector] = oracle[src_sector]
                        else:
                            oracle.pop(dst_sector, None)

    proc = spawn(sim, driver())
    sim.run()
    assert proc.ok, proc.exception
    return oracle


def read_all(sim, ftl):
    def reader():
        tags = yield from ftl.read(0, SECTORS)
        return tags

    proc = spawn(sim, reader())
    sim.run()
    assert proc.ok, proc.exception
    return proc.value


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=OPS)
def test_property_ftl_matches_oracle_sector_mapping(operations):
    sim, ftl = make_ftl(mapping_unit=512)
    oracle = apply_ops(sim, ftl, operations, 512)
    tags = read_all(sim, ftl)
    for sector in range(SECTORS):
        assert tags[sector] == oracle.get(sector), sector


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=OPS)
def test_property_ftl_matches_oracle_page_mapping(operations):
    """4 KiB units: partial writes exercise the RMW path constantly.

    Remaps of partially-written units carry the unit's whole content
    (Nones included), which the oracle mirrors.
    """
    sim, ftl = make_ftl(mapping_unit=4096)
    spu = 8
    oracle = {}
    counter = [0]

    def driver():
        for op in operations:
            if op[0] == "write":
                _kind, lba, n = op
                n = min(n, SECTORS - lba)
                counter[0] += 1
                tags = [f"w{counter[0]}s{i}" for i in range(n)]
                yield from ftl.write(lba, n, tags=tags)
                for i in range(n):
                    oracle[lba + i] = tags[i]
            elif op[0] == "trim":
                _kind, lba, n = op
                n = min(n, SECTORS - lba)
                yield from ftl.trim(lba, n)
                first_unit = (lba + spu - 1) // spu
                last_unit = (lba + n) // spu
                for unit in range(first_unit, last_unit):
                    for i in range(spu):
                        oracle.pop(unit * spu + i, None)
            else:
                continue  # unit remaps covered by the 512 B variant

    proc = spawn(sim, driver())
    sim.run()
    assert proc.ok, proc.exception
    tags = read_all(sim, ftl)
    for sector in range(SECTORS):
        # A mapped unit reads back None for never-written sectors; the
        # oracle models that with absence.
        assert tags[sector] == oracle.get(sector), sector


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=100))
def test_property_event_loop_fires_in_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: fired.append((d, sim.now)))
    sim.run()
    assert len(fired) == len(delays)
    times = [now for _d, now in fired]
    assert times == sorted(times)
    for delay, now in fired:
        assert now == delay
    # Equal delays fire in submission order.
    seen = {}
    for index, (delay, _now) in enumerate(fired):
        seen.setdefault(delay, []).append(index)
    for indices in seen.values():
        assert indices == sorted(indices)
