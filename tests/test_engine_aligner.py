"""Unit tests for the journal formatters (Algorithm 2 and packed)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.checkin.format import (
    LogType,
    MergedPayload,
    PackedSector,
    extract_from_span,
)
from repro.common.errors import EngineError
from repro.engine import PackedFormatter, SectorAlignedFormatter, UpdateRequest


def request(key, size, version=1):
    return UpdateRequest(key=key, version=version, value_bytes=size,
                         target_lba=10_000 + key * 8, target_nsectors=8)


class TestPackedFormatter:
    def test_stored_size_is_raw(self):
        assert PackedFormatter().stored_size(300) == 300

    def test_single_log_layout(self):
        formatter = PackedFormatter(header_bytes=16)
        layout = formatter.layout([request(1, 300)], first_lba=100)
        assert layout.nsectors == 1  # 316 bytes
        entry = layout.entries[0]
        assert entry.journal_lba == 100
        assert entry.src_offset == 16
        assert entry.journal_nsectors == 1
        assert not entry.exclusive_sectors
        assert layout.payload_bytes == 316
        assert layout.padded_bytes == 512 - 316

    def test_values_straddle_sectors(self):
        formatter = PackedFormatter(header_bytes=16)
        layout = formatter.layout([request(1, 400), request(2, 400)],
                                  first_lba=0)
        first, second = layout.entries
        # Second value starts at byte 416+16=432 -> sector 0, spans into 1.
        assert second.journal_lba == 0
        assert second.src_offset == 432
        assert second.journal_nsectors == 2
        assert layout.nsectors == 2

    def test_sector_tags_are_packed_sectors(self):
        formatter = PackedFormatter()
        layout = formatter.layout([request(1, 100)], first_lba=0)
        assert isinstance(layout.sector_tags[0], PackedSector)
        assert layout.sector_tags[0].part_at(16) == (1, 1)

    def test_header_validation(self):
        with pytest.raises(EngineError):
            PackedFormatter(header_bytes=-1)

    @given(st.lists(st.integers(min_value=1, max_value=4096),
                    min_size=1, max_size=20))
    def test_property_layout_consistent(self, sizes):
        formatter = PackedFormatter(header_bytes=16)
        requests = [request(i, size) for i, size in enumerate(sizes)]
        layout = formatter.layout(requests, first_lba=50)
        assert len(layout.entries) == len(sizes)
        total = sum(16 + s for s in sizes)
        assert layout.payload_bytes == total
        assert layout.nsectors * 512 >= total
        assert layout.padded_bytes == layout.nsectors * 512 - total
        for entry in layout.entries:
            assert 50 <= entry.journal_lba < 50 + layout.nsectors
            first = entry.journal_lba - 50
            # The span starts at the record's header sector and covers the
            # whole value; the tag is recoverable relative to the span.
            assert first + entry.journal_nsectors <= layout.nsectors
            span = layout.sector_tags[first:first + entry.journal_nsectors]
            assert extract_from_span(span, entry.src_offset) == \
                (entry.key, entry.version)

    def test_straddling_header_included_in_span(self):
        """Regression: a header crossing a sector boundary must pull the
        preceding sector into the entry's journal span, or a recovery
        read of [journal_lba, +nsectors) misses part of the log record."""
        formatter = PackedFormatter(header_bytes=16)
        # First record ends at byte 504; the second record's header
        # occupies bytes 504..520, straddling the sector-0/1 boundary.
        layout = formatter.layout([request(1, 488), request(2, 300)],
                                  first_lba=100)
        second = layout.entries[1]
        assert second.journal_lba == 100      # span begins at the header's sector
        assert second.journal_nsectors == 2   # header sector + value sector
        assert second.src_offset == 520       # value starts in the next sector
        span = layout.sector_tags[0:2]
        assert extract_from_span(span, second.src_offset) == (2, 1)


class TestSectorAlignedFormatterSizing:
    def test_stored_size_small(self):
        formatter = SectorAlignedFormatter(mapping_size=512)
        assert formatter.stored_size(100) == 128
        assert formatter.stored_size(400) == 512
        assert formatter.stored_size(512) == 512

    def test_stored_size_large(self):
        formatter = SectorAlignedFormatter(mapping_size=512)
        assert formatter.stored_size(513) == 1024
        assert formatter.stored_size(1500) == 1536

    def test_compression(self):
        formatter = SectorAlignedFormatter(mapping_size=512, compress_ratio=0.5)
        assert formatter.stored_size(2048) == 1024
        # values <= unit are not compressed (Algorithm 2 only compresses FULLs)
        assert formatter.stored_size(400) == 512

    def test_classify(self):
        formatter = SectorAlignedFormatter(mapping_size=512)
        assert formatter.classify(100) is LogType.PARTIAL
        assert formatter.classify(500) is LogType.FULL
        assert formatter.classify(1000) is LogType.FULL

    def test_larger_mapping_unit(self):
        # The 128-byte sub-sector classes are fixed regardless of the
        # mapping unit; mid-range values pad to sectors, and only whole
        # units are FULL (remappable).
        formatter = SectorAlignedFormatter(mapping_size=2048)
        assert formatter.stored_size(300) == 384
        assert formatter.stored_size(600) == 1024
        assert formatter.classify(600) is LogType.PARTIAL
        assert formatter.classify(2000) is LogType.FULL  # pads to 2048
        assert formatter.stored_size(3000) == 4096  # > unit: align_full

    def test_validation(self):
        with pytest.raises(EngineError):
            SectorAlignedFormatter(mapping_size=300)
        with pytest.raises(EngineError):
            SectorAlignedFormatter(compress_ratio=0.0)


class TestSectorAlignedLayout:
    def test_full_log_is_exclusive_and_aligned(self):
        formatter = SectorAlignedFormatter(mapping_size=512)
        layout = formatter.layout([request(1, 512)], first_lba=64)
        entry = layout.entries[0]
        assert entry.log_type is LogType.FULL
        assert entry.exclusive_sectors
        assert entry.src_offset == 0
        assert entry.journal_lba == 64
        assert entry.journal_nsectors == 1
        assert layout.sector_tags == [(1, 1)]

    def test_multi_sector_full(self):
        formatter = SectorAlignedFormatter(mapping_size=512)
        layout = formatter.layout([request(1, 1500)], first_lba=0)
        entry = layout.entries[0]
        assert entry.journal_nsectors == 3
        assert layout.sector_tags == [(1, 1)] * 3
        assert layout.padded_bytes == 1536 - 1500

    def test_two_partials_merge_into_one_sector(self):
        formatter = SectorAlignedFormatter(mapping_size=512)
        layout = formatter.layout([request(1, 120), request(2, 250)],
                                  first_lba=10)
        assert layout.nsectors == 1
        first, second = layout.entries
        assert first.log_type is LogType.MERGED
        assert second.log_type is LogType.MERGED
        assert first.journal_lba == second.journal_lba == 10
        assert first.src_offset == 0
        assert second.src_offset == 128
        merged = layout.sector_tags[0]
        assert isinstance(merged, MergedPayload)
        assert merged.part_at(0) == (1, 1)
        assert merged.part_at(128) == (2, 1)

    def test_lone_partial_stays_partial(self):
        formatter = SectorAlignedFormatter(mapping_size=512)
        layout = formatter.layout([request(1, 100)], first_lba=0)
        assert layout.entries[0].log_type is LogType.PARTIAL
        assert layout.entries[0].exclusive_sectors

    def test_overflowing_partials_open_new_sector(self):
        formatter = SectorAlignedFormatter(mapping_size=512)
        # 384 + 384 cannot share one 512 B sector.
        layout = formatter.layout([request(1, 380), request(2, 380)],
                                  first_lba=0)
        assert layout.nsectors == 2
        a, b = layout.entries
        assert a.journal_lba != b.journal_lba

    def test_first_fit_packs_across_arrival_order(self):
        formatter = SectorAlignedFormatter(mapping_size=512)
        # 384, 384, 128, 128 -> [384+128], [384+128]
        layout = formatter.layout(
            [request(1, 380), request(2, 380), request(3, 100),
             request(4, 100)], first_lba=0)
        assert layout.nsectors == 2
        assert layout.padded_bytes == sum(
            [384 - 380, 384 - 380, 128 - 100, 128 - 100])

    def test_fulls_placed_before_partials(self):
        formatter = SectorAlignedFormatter(mapping_size=512)
        layout = formatter.layout([request(1, 100), request(2, 512)],
                                  first_lba=0)
        by_key = {e.key: e for e in layout.entries}
        assert by_key[2].journal_lba == 0
        assert by_key[1].journal_lba == 1

    def test_padding_accounting_fulls(self):
        formatter = SectorAlignedFormatter(mapping_size=512)
        layout = formatter.layout([request(1, 700)], first_lba=0)
        assert layout.padded_bytes == 1024 - 700
        assert layout.payload_bytes == 700

    @given(st.lists(st.integers(min_value=1, max_value=4096),
                    min_size=1, max_size=24))
    def test_property_every_value_recoverable(self, sizes):
        """Any mix of sizes: each value's tag is recoverable from its
        journal location, and all placements are disjoint."""
        formatter = SectorAlignedFormatter(mapping_size=512)
        requests = [request(i, size) for i, size in enumerate(sizes)]
        layout = formatter.layout(requests, first_lba=0)
        assert len(layout.entries) == len(sizes)
        from repro.checkin.format import extract_part
        for entry in layout.entries:
            sector_tag = layout.sector_tags[entry.journal_lba]
            assert extract_part(sector_tag, entry.src_offset) == \
                (entry.key, entry.version)

    @given(st.lists(st.integers(min_value=1, max_value=512),
                    min_size=1, max_size=30))
    def test_property_merged_sectors_never_overflow(self, sizes):
        formatter = SectorAlignedFormatter(mapping_size=512)
        requests = [request(i, size) for i, size in enumerate(sizes)]
        layout = formatter.layout(requests, first_lba=0)
        for tag in layout.sector_tags:
            if isinstance(tag, MergedPayload):
                assert tag.used_bytes <= 512
