"""Tests for the NAND media-error model and bad-block management.

Covers the deterministic draw machinery (:mod:`repro.flash.media`), the
flash-array failure surfaces (program/erase/read), and the FTL's grown-bad
block table: program-fail relocation, retirement with spare accounting,
and the read-only degraded mode the controller enforces afterwards.
"""

import pytest

from repro.common.errors import (
    ConfigError,
    MediaEraseError,
    MediaProgramError,
)
from repro.flash import FlashGeometry, FlashTiming
from repro.flash.array import FlashArray
from repro.flash.media import MediaErrorConfig, MediaErrorModel, quiet_model
from repro.ftl import FtlConfig
from repro.sim import Simulator, spawn
from repro.ssd import (
    Command,
    ControllerConfig,
    InterfaceConfig,
    Op,
    Ssd,
    SsdSpec,
    Status,
)


def small_geometry(blocks=4, channels=1):
    return FlashGeometry(channels=channels, packages_per_channel=1,
                         dies_per_package=1, planes_per_die=1,
                         blocks_per_plane=blocks, pages_per_block=4,
                         page_size=4096)


def small_timing():
    return FlashTiming(read_ns=50_000, program_ns=500_000,
                       erase_ns=3_000_000, channel_bandwidth=10**9,
                       channel_setup_ns=100)


def make_array(media_config, seed=1, blocks=4):
    sim = Simulator()
    model = MediaErrorModel(media_config, seed=seed)
    array = FlashArray(sim, small_geometry(blocks=blocks), small_timing(),
                       media=model)
    return sim, array


def make_media_ssd(media=None, media_seed=0, ftl=None, controller=None,
                   blocks=8):
    sim = Simulator()
    spec = SsdSpec(
        geometry=small_geometry(blocks=blocks, channels=2),
        timing=small_timing(),
        ftl=ftl if ftl is not None else FtlConfig(mapping_unit=4096),
        interface=InterfaceConfig(queue_depth=8, command_overhead_ns=5_000,
                                  pcie_bandwidth=3_200_000_000),
        controller=controller if controller is not None else
        ControllerConfig(read_cache_units=0),
        media=media,
        media_seed=media_seed,
    )
    return sim, Ssd(sim, spec)


def run(sim, generator):
    proc = spawn(sim, generator)
    sim.run()
    assert proc.triggered and proc.ok, getattr(proc, "exception", None)
    return proc.value


class TestMediaErrorModel:
    def test_quiet_model_never_fails(self):
        model = quiet_model()
        for block in range(8):
            assert not model.program_fails(block, erase_count=10_000)
            assert not model.erase_fails(block, erase_count=10_000)
            assert model.read_attempts(block, 10_000, 10**12, 10**6) == 1

    def test_same_seed_same_draw_sequence(self):
        config = MediaErrorConfig(enabled=True, program_fail_base=0.5,
                                  erase_fail_base=0.5, read_uecc_base=0.5)
        first = MediaErrorModel(config, seed=42)
        second = MediaErrorModel(config, seed=42)
        for block in (0, 1, 2):
            for _ in range(32):
                assert first.program_fails(block, 0) == \
                    second.program_fails(block, 0)
                assert first.read_attempts(block, 0, 0, 0) == \
                    second.read_attempts(block, 0, 0, 0)

    def test_different_seeds_diverge(self):
        config = MediaErrorConfig(enabled=True, program_fail_base=0.5)
        first = MediaErrorModel(config, seed=1)
        second = MediaErrorModel(config, seed=2)
        draws_a = [first.program_fails(0, 0) for _ in range(64)]
        draws_b = [second.program_fails(0, 0) for _ in range(64)]
        assert draws_a != draws_b

    def test_draws_are_order_robust_across_blocks(self):
        """Per-block draw streams don't depend on interleaving order."""
        config = MediaErrorConfig(enabled=True, program_fail_base=0.5)
        sequential = MediaErrorModel(config, seed=9)
        interleaved = MediaErrorModel(config, seed=9)

        seq = {0: [], 1: []}
        for block in (0, 1):
            for _ in range(16):
                seq[block].append(sequential.program_fails(block, 0))
        inter = {0: [], 1: []}
        for _ in range(16):
            for block in (1, 0):  # opposite visiting order
                inter[block].append(interleaved.program_fails(block, 0))
        assert seq == inter

    def test_wear_raises_failure_probability(self):
        config = MediaErrorConfig(enabled=True, program_fail_base=1e-3)
        model = MediaErrorModel(config, seed=0)
        fresh = model.program_fail_probability(erase_count=0)
        worn = model.program_fail_probability(erase_count=30_000)
        assert worn > fresh
        assert worn <= config.max_probability

    def test_retention_and_disturb_raise_uecc_probability(self):
        config = MediaErrorConfig(enabled=True, read_uecc_base=1e-4)
        model = MediaErrorModel(config, seed=0)
        base = model.read_uecc_probability(0, 0, 0)
        aged = model.read_uecc_probability(0, 10**12, 0)
        disturbed = model.read_uecc_probability(
            0, 0, config.read_disturb_threshold + config.read_disturb_scale)
        assert aged > base
        assert disturbed > base

    def test_read_attempts_bounded_by_retry_ladder(self):
        config = MediaErrorConfig(enabled=True, read_uecc_base=0.6,
                                  max_read_retries=2)
        model = MediaErrorModel(config, seed=5)
        outcomes = {model.read_attempts(0, 0, 0, 0) for _ in range(200)}
        assert outcomes <= {0, 1, 2, 3}
        assert 0 in outcomes      # some reads exhaust every level
        assert 1 in outcomes      # and some succeed first try

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            MediaErrorConfig(program_fail_base=1.5)
        with pytest.raises(ConfigError):
            MediaErrorConfig(max_read_retries=-1)
        with pytest.raises(ConfigError):
            MediaErrorConfig(max_probability=0.0)


class TestFlashFailureSurfaces:
    def test_program_fail_raises_and_consumes_page(self):
        sim, array = make_array(MediaErrorConfig(
            enabled=True, program_fail_base=1.0, max_probability=1.0))

        def proc():
            with pytest.raises(MediaProgramError):
                yield from array.program_page(0, {"payload": 1},
                                              oob=[(0, 1)])

        run(sim, proc())
        assert array.stats.value("media.program_fail") == 1
        # The page is consumed: WRITTEN but with nulled OOB.
        block = array.block(0)
        assert block.write_pointer >= 1
        assert array.page_oob(0) in (None, [None])

    def test_erase_fail_raises_and_spends_cycle(self):
        sim, array = make_array(MediaErrorConfig(
            enabled=True, erase_fail_base=1.0, max_probability=1.0))
        before = array.block(0).erase_count

        def proc():
            with pytest.raises(MediaEraseError):
                yield from array.erase_block(0)

        run(sim, proc())
        assert array.block(0).erase_count == before + 1
        assert array.stats.value("media.erase_fail") == 1

    def test_read_retry_counts_attempts(self):
        sim, array = make_array(MediaErrorConfig(
            enabled=True, read_uecc_base=0.5, max_read_retries=3), seed=3)

        def proc():
            yield from array.program_page(0, {"payload": 1}, oob=[(0, 1)])
            for _ in range(20):
                yield from array.read_page(0)

        run(sim, proc())
        assert array.stats.value("media.read_retry") > 0

    def test_wear_stats_shape(self):
        sim, array = make_array(MediaErrorConfig(enabled=False))
        stats = array.wear_stats()
        assert set(stats) == {"min", "max", "mean"}
        assert stats["min"] == stats["max"] == stats["mean"] == 0.0


class TestBadBlockManagement:
    def test_program_fail_relocation_preserves_data(self):
        """Program failures self-heal below the host: data still reads."""
        sim, ssd = make_media_ssd(media=MediaErrorConfig(
            enabled=True, program_fail_base=0.3), media_seed=17)

        def proc():
            for lba in range(0, 64, 8):
                completion = yield from ssd.write(
                    lba, 8, tags=[f"t{lba + s}" for s in range(8)])
                assert completion.ok
            tags = []
            for lba in range(0, 64, 8):
                tags.extend((yield from ssd.read(lba, 8)))
            return tags

        tags = run(sim, proc())
        assert tags == [f"t{s}" for s in range(64)]
        snapshot = ssd.stats.snapshot()
        assert snapshot.get("media.program_fail", 0) > 0
        assert snapshot.get("media.relocations", 0) > 0

    def test_retire_block_quarantines_and_degrades_past_budget(self):
        sim, ssd = make_media_ssd(
            ftl=FtlConfig(mapping_unit=4096, spare_block_budget=0))
        ssd.ftl.preload(0, 256, tags=[f"t{s}" for s in range(256)])
        full = sorted(ssd.ftl.allocator.full_blocks)
        assert full, "preload should have filled at least one block"
        victim = full[0]

        ssd.ftl.retire_block(victim, cause="erase_fail")

        assert victim in ssd.ftl.grown_bad
        assert ssd.array.block(victim).grown_bad
        assert victim not in ssd.ftl.allocator.full_blocks
        assert ssd.stats.value("ftl.bad_blocks") == 1
        assert ssd.stats.value("ftl.bad_blocks.erase_fail") == 1
        # Budget of 0 spares means the first retirement degrades.
        assert ssd.degraded
        assert "spare blocks exhausted" in ssd.degraded_reason
        # Retiring again is a no-op.
        ssd.ftl.retire_block(victim, cause="erase_fail")
        assert ssd.stats.value("ftl.bad_blocks") == 1

    def test_degraded_device_rejects_writes_serves_reads(self):
        """READ_ONLY is a typed completion — the submitter survives."""
        sim, ssd = make_media_ssd()
        ssd.ftl.preload(0, 8, tags=[f"t{s}" for s in range(8)])
        ssd.ftl.enter_degraded("test: spares exhausted")

        def proc():
            write = yield ssd.submit(Command(op=Op.WRITE, lba=64,
                                             nsectors=8, tags=["x"] * 8))
            tags = yield from ssd.read(0, 8)
            return write, tags

        write, tags = run(sim, proc())
        assert write.status is Status.READ_ONLY
        assert not write.ok
        assert tags == [f"t{s}" for s in range(8)]
        assert ssd.stats.value("cmd.read_only_rejected") == 1
