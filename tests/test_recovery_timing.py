"""Tests for the timed restart path (§III-G recovery-time assist)."""

from repro.engine.recovery import timed_restart
from tests.test_recovery import build, run_process


def journal_heavily(sim, engine, updates=280):
    def scenario():
        for i in range(updates):
            yield from engine.put(i % 24)

    run_process(sim, scenario())


class TestTimedRestart:
    def test_preread_faster_on_large_journal(self):
        sim, _ssd, engine = build(record_size=480)
        journal_heavily(sim, engine)
        conventional = run_process(
            sim, timed_restart(engine, device_preread=False))
        preread = run_process(
            sim, timed_restart(engine, device_preread=True))
        # Same bytes replayed either way...
        assert preread.journal_sectors_read == \
            conventional.journal_sectors_read
        # ...but pre-reading uses far fewer commands and finishes sooner.
        assert preread.read_commands < conventional.read_commands / 4
        assert preread.duration_ns < conventional.duration_ns

    def test_empty_journal_restart_is_trivial(self):
        sim, _ssd, engine = build()

        def checkpointed():
            for key in range(8):
                yield from engine.put(key)
            yield from engine.checkpoint()

        run_process(sim, checkpointed())
        timing = run_process(sim, timed_restart(engine, device_preread=True))
        assert timing.journal_sectors_read == 0
        assert timing.read_commands == 0

    def test_reads_cover_only_committed_logs(self):
        sim, _ssd, engine = build(record_size=480)
        journal_heavily(sim, engine, updates=100)
        timing = run_process(sim, timed_restart(engine, device_preread=True))
        journal_sectors = engine.journal.config.total_sectors
        assert 0 < timing.journal_sectors_read <= journal_sectors
