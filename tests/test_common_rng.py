"""Unit tests for repro.common.rng."""

from repro.common.rng import SeededRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SeededRng(42)
        b = SeededRng(42)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seed_different_stream(self):
        a = SeededRng(42)
        b = SeededRng(43)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_fork_is_deterministic(self):
        a = SeededRng(7).fork("workload")
        b = SeededRng(7).fork("workload")
        assert [a.randint(0, 100) for _ in range(5)] == \
            [b.randint(0, 100) for _ in range(5)]

    def test_fork_independent_of_parent_consumption(self):
        parent1 = SeededRng(7)
        parent2 = SeededRng(7)
        for _ in range(100):
            parent2.random()  # consume from one parent only
        child1 = parent1.fork("x")
        child2 = parent2.fork("x")
        assert child1.random() == child2.random()

    def test_forks_with_different_names_differ(self):
        parent = SeededRng(7)
        a = parent.fork("a")
        b = parent.fork("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_name_is_hierarchical(self):
        child = SeededRng(1, "root").fork("ssd").fork("gc")
        assert child.name == "root/ssd/gc"


class TestPrimitives:
    def test_randint_bounds(self):
        rng = SeededRng(3)
        values = [rng.randint(5, 9) for _ in range(200)]
        assert min(values) >= 5
        assert max(values) <= 9

    def test_choice_member(self):
        rng = SeededRng(3)
        items = ["a", "b", "c"]
        for _ in range(20):
            assert rng.choice(items) in items

    def test_shuffle_preserves_elements(self):
        rng = SeededRng(3)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_bytes_length(self):
        rng = SeededRng(3)
        assert len(rng.bytes(16)) == 16
        assert rng.bytes(0) == b""

    def test_expovariate_positive(self):
        rng = SeededRng(3)
        for _ in range(50):
            assert rng.expovariate(2.0) >= 0.0
