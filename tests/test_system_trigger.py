"""Checkpoint trigger policy: interval vs journal quota (§IV-C)."""

from repro.common.units import KIB, MS
from repro.system import RunResult, tiny_config
from repro.system.metrics import RunMetrics


class TestTriggerPolicy:
    def test_quota_fires_before_interval(self, make_system):
        # Interval far beyond the run; small quota: checkpoints must still
        # happen, driven purely by journal volume.
        system = make_system(
            total_queries=1500,
            checkpoint_interval_ns=10 ** 13,
            checkpoint_journal_quota=96 * KIB,
        )
        result = system.run()
        # More than just the final checkpoint ran.
        assert result.checkpoint_count >= 2
        for report in result.checkpoint_reports[:-1]:
            assert report.entries_checkpointed > 0

    def test_interval_fires_without_quota(self, make_system):
        system = make_system(
            total_queries=1500,
            checkpoint_interval_ns=5 * MS,
            checkpoint_journal_quota=10 ** 12,
        )
        result = system.run()
        assert result.checkpoint_count >= 2

    def test_no_mid_run_checkpoint_when_both_disabled(self, make_system):
        system = make_system(
            total_queries=800,
            checkpoint_interval_ns=10 ** 13,
            checkpoint_journal_quota=10 ** 12,
        )
        result = system.run()
        # Only the final checkpoint (final_checkpoint=True by default).
        assert result.checkpoint_count == 1

    def test_final_checkpoint_disabled(self, make_system):
        system = make_system(total_queries=600,
                             checkpoint_interval_ns=10 ** 13,
                             checkpoint_journal_quota=10 ** 12,
                             final_checkpoint=False)
        result = system.run()
        assert result.checkpoint_count == 0
        # The journal still holds the un-checkpointed epoch.
        assert len(system.engine.journal.active_jmt) > 0


class TestRunResult:
    def test_mean_checkpoint_ns_empty(self):
        from repro.sim import Simulator, StatRegistry
        metrics = RunMetrics(Simulator(), StatRegistry())
        result = RunResult(config=tiny_config(), metrics=metrics)
        assert result.checkpoint_count == 0
        assert result.mean_checkpoint_ns() == 0.0
