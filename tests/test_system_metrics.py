"""Unit tests for run-level metrics."""

import pytest

from repro.sim import Simulator, StatRegistry
from repro.system.metrics import LifetimeEstimate, RunMetrics
from repro.workload.ycsb import Operation, OpKind


def make_metrics():
    sim = Simulator()
    stats = StatRegistry()
    return sim, stats, RunMetrics(sim, stats)


class TestLatencyRecording:
    def test_split_by_kind_and_checkpoint(self):
        _sim, _stats, metrics = make_metrics()
        metrics.record(Operation(OpKind.READ, 1), 100, False)
        metrics.record(Operation(OpKind.READ, 2), 500, True)
        metrics.record(Operation(OpKind.UPDATE, 3), 50, False)
        metrics.record(Operation(OpKind.READ_MODIFY_WRITE, 4), 900, True)
        assert metrics.operations == 4
        assert len(metrics.latency_read) == 2
        assert len(metrics.latency_update) == 2  # update + rmw
        assert len(metrics.latency_read_ckpt) == 1
        assert len(metrics.latency_update_ckpt) == 1
        assert metrics.latency_read_normal.mean() == 100
        assert metrics.latency_update_ckpt.mean() == 900


class TestDeltas:
    def test_counters_windowed_to_measurement(self):
        sim, stats, metrics = make_metrics()
        stats.counter("flash.program").add(5, num_bytes=100)
        metrics.start_measurement()
        stats.counter("flash.program").add(3, num_bytes=60)
        metrics.finish_measurement()
        stats.counter("flash.program").add(9)
        assert metrics.delta("flash.program") == 3
        assert metrics.delta_bytes("flash.program") == 60

    def test_live_delta_before_finish(self):
        _sim, stats, metrics = make_metrics()
        metrics.start_measurement()
        stats.counter("x").add(2)
        assert metrics.delta("x") == 2


class TestDerived:
    def test_throughput(self):
        sim, _stats, metrics = make_metrics()
        metrics.start_measurement()
        for _ in range(10):
            metrics.record(Operation(OpKind.READ, 0), 10, False)
        sim.schedule(1_000_000, lambda: None)  # 1 ms
        sim.run()
        metrics.finish_measurement()
        assert metrics.throughput_qps() == pytest.approx(10 / 1e-3)

    def test_amplifications(self):
        _sim, stats, metrics = make_metrics()
        metrics.start_measurement()
        stats.counter("query.update").add(10, num_bytes=1000)
        stats.counter("host.read_cmds").add(2, num_bytes=500)
        stats.counter("host.write_cmds").add(5, num_bytes=2000)
        stats.counter("flash.read").add(1, num_bytes=4096)
        stats.counter("flash.program").add(1, num_bytes=4096)
        assert metrics.io_amplification() == pytest.approx(2.5)
        assert metrics.flash_amplification() == pytest.approx(8192 / 1000)

    def test_zero_denominators(self):
        _sim, _stats, metrics = make_metrics()
        metrics.start_measurement()
        assert metrics.io_amplification() == 0.0
        assert metrics.flash_amplification() == 0.0
        assert metrics.waf() == 0.0
        assert metrics.throughput_qps() == 0.0

    def test_redundant_units_combines_causes(self):
        _sim, stats, metrics = make_metrics()
        metrics.start_measurement()
        stats.counter("ftl.units.write.ckpt").add(7, num_bytes=700)
        stats.counter("ftl.units.write.ckpt_meta").add(3, num_bytes=300)
        assert metrics.redundant_write_units() == 10
        assert metrics.redundant_write_bytes() == 1000

    def test_summary_keys(self):
        _sim, _stats, metrics = make_metrics()
        metrics.start_measurement()
        summary = metrics.summary()
        for key in ("throughput_qps", "latency_p999_us", "io_amplification",
                    "redundant_units", "gc_invocations", "waf"):
            assert key in summary


class TestLifetime:
    def test_equation_one(self):
        estimate = LifetimeEstimate(max_pe_cycles=3000,
                                    operation_time_ns=10 ** 9,
                                    block_erase_count=100)
        assert estimate.relative_lifetime == pytest.approx(3000 * 1e9 / 100)

    def test_no_erases_is_infinite(self):
        estimate = LifetimeEstimate(3000, 10 ** 9, 0)
        assert estimate.relative_lifetime == float("inf")

    def test_metrics_lifetime(self):
        _sim, stats, metrics = make_metrics()
        metrics.start_measurement()
        stats.counter("flash.erase").add(4)
        estimate = metrics.lifetime(3000)
        assert estimate.block_erase_count == 4
