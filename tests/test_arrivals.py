"""Property tests for the open-loop arrival generators.

The arrival layer is pure (no simulator involved): a seeded RNG plus an
:class:`ArrivalSpec` deterministically yields a sorted list of integer
nanosecond instants.  Hypothesis sweeps the claims that everything else
builds on:

* instants are non-negative, sorted, and exactly ``count`` long;
* same seed → byte-identical stream; different seed → different stream;
* the empirical rate matches the configured schedule within tolerance
  (thinning correctness, not just plausibility);
* merged per-tenant streams are globally time-ordered and lose nothing.
"""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.common.rng import SeededRng
from repro.common.units import MS, SEC
from repro.workload.arrivals import (
    ArrivalSpec,
    arrival_times,
    bounded_pareto,
    merge_streams,
)

SPECS = st.builds(
    ArrivalSpec,
    rate_ops_per_sec=st.sampled_from([20_000.0, 100_000.0, 400_000.0]),
    process=st.sampled_from(["poisson", "bursts"]),
    schedule=st.sampled_from(["constant", "diurnal", "flash-crowd"]),
)


class TestStreamShape:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(spec=SPECS, seed=st.integers(0, 2**16),
           count=st.integers(1, 400))
    def test_sorted_nonnegative_exact_count(self, spec, seed, count):
        times = arrival_times(spec, SeededRng(seed).fork("a"), count)
        assert len(times) == count
        assert all(isinstance(t, int) and t >= 0 for t in times)
        assert all(a <= b for a, b in zip(times, times[1:]))

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(spec=SPECS, seed=st.integers(0, 2**16))
    def test_same_seed_byte_identical(self, spec, seed):
        first = arrival_times(spec, SeededRng(seed).fork("a"), 200)
        second = arrival_times(spec, SeededRng(seed).fork("a"), 200)
        assert first == second

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(spec=SPECS, seed=st.integers(0, 2**15))
    def test_different_seed_differs(self, spec, seed):
        first = arrival_times(spec, SeededRng(seed).fork("a"), 200)
        second = arrival_times(spec, SeededRng(seed + 1).fork("a"), 200)
        assert first != second


class TestRateFidelity:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rate=st.sampled_from([50_000.0, 150_000.0, 400_000.0]),
           seed=st.integers(0, 2**16))
    def test_poisson_constant_rate_matches(self, rate, seed):
        # Mean inter-arrival of a Poisson stream is 1/rate; with n
        # samples the sample mean concentrates as 1/sqrt(n).
        count = 3_000
        times = arrival_times(
            ArrivalSpec(rate_ops_per_sec=rate),
            SeededRng(seed).fork("a"), count)
        empirical = count / (times[-1] / SEC) if times[-1] else 0.0
        assert empirical == pytest.approx(rate, rel=6.0 / math.sqrt(count))

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**16),
           process=st.sampled_from(["poisson", "bursts"]))
    def test_flash_crowd_concentrates_arrivals(self, seed, process):
        # The crowd window multiplies the base rate, so its share of
        # arrivals must exceed its share of wall time.
        spec = ArrivalSpec(rate_ops_per_sec=100_000.0, process=process,
                           schedule="flash-crowd",
                           crowd_start_ns=5 * MS, crowd_duration_ns=5 * MS,
                           crowd_multiplier=4.0)
        times = arrival_times(spec, SeededRng(seed).fork("a"), 2_000)
        lo, hi = spec.crowd_start_ns, spec.crowd_start_ns + \
            spec.crowd_duration_ns
        before = sum(1 for t in times if t < lo)
        crowd_end = min(max(times[-1], lo + 1), hi)
        in_crowd = sum(1 for t in times if lo <= t < crowd_end)
        # Arrival density (ops/ns) inside the crowd window vs before it:
        # a 4x rate multiplier must show up as a clearly higher density.
        density_before = before / lo
        density_crowd = in_crowd / (crowd_end - lo)
        assert density_crowd > 2.0 * density_before

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**16))
    def test_diurnal_rate_at_bounds(self, seed):
        spec = ArrivalSpec(rate_ops_per_sec=100_000.0, schedule="diurnal",
                           diurnal_amplitude=0.6)
        peak = spec.peak_rate()
        for t in range(0, spec.diurnal_period_ns, spec.diurnal_period_ns // 16):
            rate = spec.rate_at(t)
            assert 0.0 < rate <= peak + 1e-9


class TestBoundedPareto:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**16),
           alpha=st.sampled_from([0.8, 1.0, 1.4, 2.5]),
           bounds=st.sampled_from([(4, 64), (2, 2), (1, 1000)]))
    def test_samples_inside_bounds(self, seed, alpha, bounds):
        low, high = bounds
        rng = SeededRng(seed).fork("p")
        for _ in range(200):
            x = bounded_pareto(rng, alpha, low, high)
            assert low <= x <= high


class TestMerge:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2**16),
           tenant_counts=st.lists(st.integers(1, 120), min_size=1,
                                  max_size=4))
    def test_merge_ordered_and_lossless(self, seed, tenant_counts):
        streams = [
            arrival_times(ArrivalSpec(rate_ops_per_sec=100_000.0),
                          SeededRng(seed).fork(f"t{i}"), count)
            for i, count in enumerate(tenant_counts)]
        merged = merge_streams(streams)
        assert len(merged) == sum(tenant_counts)
        assert all(a[0] <= b[0] for a, b in zip(merged, merged[1:]))
        for i, stream in enumerate(streams):
            assert [t for t, tenant in merged if tenant == i] == stream

    def test_merge_rejects_unsorted_stream(self):
        with pytest.raises(ConfigError):
            merge_streams([[3, 1, 2]])


class TestSpecValidation:
    def test_bad_process(self):
        with pytest.raises(ConfigError):
            ArrivalSpec(process="open-faucet")

    def test_bad_rate(self):
        with pytest.raises(ConfigError):
            ArrivalSpec(rate_ops_per_sec=0.0)

    def test_bad_burst_bounds(self):
        with pytest.raises(ConfigError):
            ArrivalSpec(burst_min_ops=64, burst_max_ops=4)
