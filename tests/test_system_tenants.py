"""Multi-tenant namespace sharding: config, determinism, enforcement.

The tenancy battery's system-level half.  The property-based isolation
checks live in ``test_property_namespaces.py``; the crash-sweep coverage
in ``test_fault_harness.py``.
"""

import json

import pytest

from repro.common.errors import ConfigError, NamespaceError
from repro.common.units import MIB
from repro.ssd import Command, Op
from repro.system import KvSystem, TenantSpec, run_config, tiny_config
from tests.conftest import TWO_TENANTS, summaries


class TestTenantConfig:
    def test_labels(self):
        assert TenantSpec().label(2) == "tenant2"
        assert TenantSpec(name="reader").label(2) == "reader"

    def test_tenant_view_seed_lineage(self):
        config = tiny_config(seed=40, tenants=(
            TenantSpec(), TenantSpec(), TenantSpec(seed_offset=9)))
        assert [config.tenant_view(i).seed for i in range(3)] == [40, 41, 49]
        # Views are plain single-engine configs again.
        assert config.tenant_view(0).tenants is None

    def test_tenant_view_overrides(self):
        config = tiny_config(workload="A", threads=4, tenants=(
            TenantSpec(), TenantSpec(workload="C", threads=2)))
        assert config.tenant_view(0).workload == "A"
        assert config.tenant_view(1).workload == "C"
        assert config.tenant_view(1).threads == 2

    def test_namespace_layout_disjoint_and_page_aligned(self):
        config = tiny_config(**TWO_TENANTS)
        layout = config.namespace_layout()
        sectors_per_page = config.page_size // 512
        assert [r.nsid for r in layout.ranges] == [0, 1]
        assert layout.ranges[0].lba_start == 0
        for r in layout.ranges:
            assert r.lba_start % sectors_per_page == 0
            assert r.nsectors % sectors_per_page == 0
        assert layout.ranges[1].lba_start >= layout.ranges[0].lba_end

    def test_tenant_engine_config_offsets_regions(self):
        config = tiny_config(**TWO_TENANTS)
        base = config.namespace_layout().ranges[1].lba_start
        zero = config.tenant_engine_config(0)
        one = config.tenant_engine_config(1)
        assert zero == config.tenant_view(0).engine_config()
        assert one.journal_lba_start == zero.journal_lba_start + base
        assert one.meta_lba_start == zero.meta_lba_start + base
        assert one.data_lba_start == zero.data_lba_start + base

    def test_capacity_check_rejects_too_many_tenants(self):
        config = tiny_config(tenants=tuple(TenantSpec() for _ in range(8)))
        with pytest.raises(ConfigError):
            config.check_capacity()

    def test_empty_tenant_tuple_rejected(self):
        with pytest.raises(ConfigError):
            tiny_config(tenants=())


class TestDeterminism:
    def test_same_seed_byte_identical_runs(self):
        a = run_config(tiny_config(mode="checkin", **TWO_TENANTS))
        b = run_config(tiny_config(mode="checkin", **TWO_TENANTS))
        assert summaries(a) == summaries(b)

    def test_seed_changes_results(self):
        a = run_config(tiny_config(mode="checkin", seed=1, **TWO_TENANTS))
        b = run_config(tiny_config(mode="checkin", seed=2, **TWO_TENANTS))
        assert summaries(a) != summaries(b)

    @pytest.mark.parametrize("mode", ["baseline", "checkin"])
    def test_single_tenant_matches_legacy_path(self, mode):
        legacy = run_config(tiny_config(mode=mode, total_queries=600))
        multi = run_config(tiny_config(mode=mode, total_queries=600,
                                       tenants=(TenantSpec(),)))
        assert json.dumps(legacy.metrics.summary(), sort_keys=True) == \
            json.dumps(multi.metrics.summary(), sort_keys=True)

    def test_tenants_diverge_from_each_other(self):
        result = run_config(tiny_config(mode="checkin", **TWO_TENANTS))
        a, b = result.tenants
        # Distinct seed lineages: same workload shape, different samples.
        assert a.metrics.latency_all.mean() != b.metrics.latency_all.mean()


class TestMultiTenantRuns:
    @pytest.mark.parametrize("mode", ["baseline", "checkin"])
    def test_per_tenant_ops_sum_to_aggregate(self, mode):
        result = run_config(tiny_config(mode=mode, **TWO_TENANTS))
        # total_queries is per tenant; the aggregate sees both workloads.
        assert sum(t.operations for t in result.tenants) == \
            result.metrics.operations == 2 * 600
        for tenant in result.tenants:
            assert tenant.metrics.throughput_qps() > 0

    def test_every_tenant_checkpoints(self):
        result = run_config(tiny_config(mode="checkin", **TWO_TENANTS))
        for tenant in result.tenants:
            assert len(tenant.checkpoint_reports) >= 1

    def test_tenant_lookup_by_name(self):
        config = tiny_config(journal_area_bytes=1 * MIB, num_keys=128,
                             total_queries=400,
                             tenants=(TenantSpec(name="storm"),
                                      TenantSpec(name="reader")))
        result = run_config(config)
        assert result.tenant("reader").name == "reader"
        with pytest.raises(KeyError):
            result.tenant("nobody")

    def test_legacy_run_reports_one_tenant(self, run_tiny):
        result = run_tiny(total_queries=500)
        assert [t.name for t in result.tenants] == ["tenant0"]
        assert result.tenants[0].operations == result.metrics.operations


class TestNamespaceEnforcement:
    def build(self):
        system = KvSystem(tiny_config(mode="checkin", **TWO_TENANTS))
        system.load()
        return system

    def test_escape_rejected_at_submit(self):
        system = self.build()
        other = system.ssd.namespaces.get(1)
        handle = system.ssd.namespace(0)
        with pytest.raises(NamespaceError):
            handle.submit(Command(op=Op.WRITE, lba=other.lba_start,
                                  nsectors=1, tags=["x"]))

    def test_straddle_rejected(self):
        system = self.build()
        boundary = system.ssd.namespaces.get(0).lba_end
        with pytest.raises(NamespaceError):
            system.ssd.submit(Command(op=Op.WRITE, lba=boundary - 1,
                                      nsectors=2, tags=["x", "y"]))

    def test_in_range_write_carries_nsid(self):
        system = self.build()
        base = system.ssd.namespaces.get(1).lba_start
        command = Command(op=Op.WRITE, lba=base, nsectors=1, tags=["x"])
        system.ssd.namespace(1).submit(command)
        assert command.nsid == 1
        while system.sim.step():
            pass

    def test_per_namespace_queue_depth_gauges(self):
        system = self.build()
        for nsid in (0, 1):
            assert system.ssd.controller.namespace_queue_depth(nsid) \
                is not None
