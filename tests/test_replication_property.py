"""Property tests: promote-on-failure under randomized kill geometry.

Hypothesis sweeps (seed × crash fraction × ship-queue depth) and asserts
the promote contract the whole subsystem exists for:

* the promoted replica's KV state equals the primary's replication log
  folded exactly to the replica's applied offset — nothing lost,
  nothing invented;
* every primary-acked write is at or below that applied offset (zero
  acked-write loss);
* same-seed campaigns are byte-identical (the campaign digest pins the
  crash steps *and* the per-point state digests).

The workloads are tiny (tens of ops) — the value is in the interleaving
coverage, not the volume.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.replication import (
    LinkSpec,
    ReplicatedPair,
    campaign_config,
    kill_primary_campaign,
    state_digest,
)

_SETTINGS = dict(max_examples=12, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


@settings(**_SETTINGS)
@given(seed=st.integers(0, 2 ** 16),
       kill_frac=st.floats(0.05, 0.95),
       queue_depth=st.integers(1, 6))
def test_promote_contract_holds(seed, kill_frac, queue_depth):
    config = campaign_config(seed=seed, ops=80, num_keys=32)
    link = LinkSpec(queue_depth=queue_depth)
    reference = ReplicatedPair(config, link=link)
    reference.start()
    total_steps, _ = reference.run_workload()
    reference.stop()

    pair = ReplicatedPair(config, link=link)
    pair.start()
    kill_step = max(1, int(total_steps * kill_frac))
    pair.run_workload(kill_step=kill_step)
    from repro.common.rng import SeededRng
    pair.kill_primary(SeededRng(seed).fork("property-tear"))
    report = pair.promote()

    # Zero acked-write loss: everything the primary acked is applied.
    assert report.acked_offset <= report.applied_offset
    # Exact equality with the log fold at the applied offset.
    expected = {key: 0 for key, _v in pair._initial_keys()}
    expected.update(pair.log.fold(report.applied_offset))
    assert report.digest == state_digest(expected)
    assert report.contract_ok
    pair.stop()


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2 ** 16))
def test_same_seed_campaigns_are_byte_identical(seed):
    kwargs = dict(crash_points=2, seed=seed, ops=60, num_keys=24)
    first = kill_primary_campaign(**kwargs)
    second = kill_primary_campaign(**kwargs)
    assert first.ok and second.ok
    assert first.digest() == second.digest()
    assert [p.crash_step for p in first.points] == \
        [p.crash_step for p in second.points]
    assert [p.kill_ns for p in first.points] == \
        [p.kill_ns for p in second.points]
