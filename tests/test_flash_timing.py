"""Unit tests for flash timing parameters."""

import pytest

from repro.common.errors import ConfigError
from repro.flash import FlashTiming


class TestValidation:
    def test_defaults_valid(self):
        timing = FlashTiming()
        assert timing.read_ns > 0
        assert timing.program_ns > timing.read_ns
        assert timing.erase_ns > timing.program_ns

    @pytest.mark.parametrize("field", ["read_ns", "program_ns", "erase_ns",
                                       "channel_bandwidth",
                                       "channel_setup_ns"])
    def test_non_positive_rejected(self, field):
        with pytest.raises(ConfigError):
            FlashTiming(**{field: 0})


class TestTransfer:
    def test_transfer_includes_setup(self):
        timing = FlashTiming(channel_bandwidth=10 ** 9, channel_setup_ns=200)
        assert timing.transfer_ns(0) == 200
        assert timing.transfer_ns(4096) == 200 + 4096

    def test_transfer_scales_with_bytes(self):
        timing = FlashTiming(channel_bandwidth=10 ** 9)
        assert timing.transfer_ns(8192) > timing.transfer_ns(4096)
