"""Unit tests for per-block NAND state."""

import pytest

from repro.common.errors import FlashError
from repro.flash import Block, PageState


class TestProgramSequence:
    def test_fresh_block_all_free(self):
        block = Block(0, 4)
        assert all(block.page_state(i) == PageState.FREE for i in range(4))
        assert not block.is_full
        assert block.written_pages == 0

    def test_in_order_program(self):
        block = Block(0, 4)
        block.program(0, "a")
        block.program(1, "b")
        assert block.page_state(0) == PageState.WRITTEN
        assert block.page_state(2) == PageState.FREE
        assert block.data(0) == "a"
        assert block.data(1) == "b"

    def test_out_of_order_program_rejected(self):
        block = Block(0, 4)
        with pytest.raises(FlashError):
            block.program(1, "x")

    def test_reprogram_rejected(self):
        block = Block(0, 4)
        block.program(0, "a")
        with pytest.raises(FlashError):
            block.program(0, "b")

    def test_full_after_last_page(self):
        block = Block(0, 2)
        block.program(0, "a")
        block.program(1, "b")
        assert block.is_full
        with pytest.raises(FlashError):
            block.program(2, "c")

    def test_oob_stored(self):
        block = Block(0, 2)
        block.program(0, "data", oob=("lba", 3))
        assert block.oob(0) == ("lba", 3)

    def test_read_unwritten_rejected(self):
        block = Block(0, 4)
        with pytest.raises(FlashError):
            block.data(0)
        with pytest.raises(FlashError):
            block.oob(0)

    def test_bad_index_rejected(self):
        block = Block(0, 4)
        with pytest.raises(FlashError):
            block.page_state(4)
        with pytest.raises(FlashError):
            block.page_state(-1)


class TestErase:
    def test_erase_resets_and_counts(self):
        block = Block(0, 2)
        block.program(0, "a")
        block.program(1, "b")
        block.erase()
        assert block.erase_count == 1
        assert block.written_pages == 0
        assert block.page_state(0) == PageState.FREE
        block.program(0, "again")
        assert block.data(0) == "again"

    def test_erase_clears_payloads(self):
        block = Block(0, 2)
        block.program(0, "a", oob="meta")
        block.erase()
        block.program(0, "new")
        assert block.data(0) == "new"
        assert block.oob(0) is None

    def test_endurance_enforced(self):
        block = Block(0, 2)
        block.erase(max_pe_cycles=2)
        block.erase(max_pe_cycles=2)
        with pytest.raises(FlashError):
            block.erase(max_pe_cycles=2)
        assert block.erase_count == 2

    def test_unlimited_endurance(self):
        block = Block(0, 1)
        for _ in range(100):
            block.erase()
        assert block.erase_count == 100
