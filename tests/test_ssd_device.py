"""Integration tests for the full SSD device (interface + controller + FTL)."""

import pytest

from repro.common.errors import CommandError
from repro.flash import FlashGeometry, FlashTiming
from repro.ftl import FtlConfig
from repro.sim import Simulator, spawn
from repro.ssd import Command, ControllerConfig, CowEntry, InterfaceConfig, Op, Ssd, SsdSpec


def make_ssd(mapping_unit=512, enable_isce=False, allow_remap=True,
             blocks=8, queue_depth=8, read_cache_units=64):
    sim = Simulator()
    spec = SsdSpec(
        geometry=FlashGeometry(channels=2, packages_per_channel=1,
                               dies_per_package=1, planes_per_die=1,
                               blocks_per_plane=blocks, pages_per_block=4,
                               page_size=4096),
        timing=FlashTiming(read_ns=50_000, program_ns=500_000,
                           erase_ns=3_000_000, channel_bandwidth=10**9,
                           channel_setup_ns=100),
        ftl=FtlConfig(mapping_unit=mapping_unit),
        interface=InterfaceConfig(queue_depth=queue_depth,
                                  command_overhead_ns=5_000,
                                  pcie_bandwidth=3_200_000_000),
        controller=ControllerConfig(read_cache_units=read_cache_units),
        enable_isce=enable_isce,
        allow_remap=allow_remap,
    )
    return sim, Ssd(sim, spec)


def run(sim, generator):
    proc = spawn(sim, generator)
    sim.run()
    assert proc.triggered and proc.ok, getattr(proc, "exception", None)
    return proc.value


class TestReadWrite:
    def test_write_read_roundtrip(self):
        sim, ssd = make_ssd()

        def proc():
            yield from ssd.write(0, 2, tags=["x", "y"])
            tags = yield from ssd.read(0, 2)
            return tags

        assert run(sim, proc()) == ["x", "y"]

    def test_completion_latency_positive(self):
        sim, ssd = make_ssd()

        def proc():
            completion = yield from ssd.write(0, 1, tags=["x"])
            return completion

        completion = run(sim, proc())
        assert completion.latency_ns >= 5_000  # at least the interface overhead

    def test_write_counters(self):
        sim, ssd = make_ssd()

        def proc():
            yield from ssd.write(0, 4, tags=None, cause="host")

        run(sim, proc())
        assert ssd.stats.value("host.write_cmds") == 1
        assert ssd.stats.bytes("host.write_cmds") == 2048

    def test_queue_depth_limits_concurrency(self):
        sim, ssd = make_ssd(queue_depth=1)
        finish_times = []

        def writer(lba):
            yield from ssd.write(lba, 1, tags=None)
            finish_times.append(sim.now)

        spawn(sim, writer(0))
        spawn(sim, writer(1))
        sim.run()
        # Second command must wait for the first to release the only slot.
        assert finish_times[1] >= finish_times[0] + 5_000

    def test_trim_makes_sectors_unmapped(self):
        sim, ssd = make_ssd()

        def proc():
            yield from ssd.write(0, 2, tags=["a", "b"])
            yield ssd.submit(Command(op=Op.TRIM, lba=0, nsectors=2))
            tags = yield from ssd.read(0, 2)
            return tags

        assert run(sim, proc()) == [None, None]

    def test_flush_persists_partial_pages(self):
        sim, ssd = make_ssd()

        def proc():
            yield from ssd.write(0, 1, tags=["x"], stream="journal")
            yield ssd.submit(Command(op=Op.FLUSH))
            yield from ssd.quiesce()

        run(sim, proc())
        assert ssd.stats.value("flash.program") >= 1


class TestReadCache:
    def test_repeat_read_hits_cache(self):
        sim, ssd = make_ssd(read_cache_units=64)

        def proc():
            yield from ssd.write(0, 8, tags=[f"s{i}" for i in range(8)])
            yield from ssd.quiesce()
            flash_reads_before = ssd.stats.value("flash.read")
            yield from ssd.read(0, 8)   # fills the read cache
            yield from ssd.read(0, 8)   # served from DRAM
            return flash_reads_before

        before = run(sim, proc())
        assert ssd.stats.value("host.read_cache_hits") >= 1
        # Only the first read may have touched flash.
        assert ssd.stats.value("flash.read") <= before + 1

    def test_write_invalidate_then_fresh_read(self):
        sim, ssd = make_ssd(read_cache_units=64)

        def proc():
            yield from ssd.write(0, 1, tags=["v1"])
            yield from ssd.read(0, 1)
            yield from ssd.write(0, 1, tags=["v2"])
            tags = yield from ssd.read(0, 1)
            return tags

        assert run(sim, proc()) == ["v2"]


class TestVendorCommands:
    def test_cow_rejected_without_isce(self):
        sim, ssd = make_ssd(enable_isce=False)

        def proc():
            yield ssd.submit(Command(op=Op.COW, entries=(CowEntry(0, 100),)))

        spawn(sim, proc())
        with pytest.raises(CommandError):
            sim.run()

    def test_cow_remaps_aligned_entry(self):
        sim, ssd = make_ssd(enable_isce=True, mapping_unit=512)

        def proc():
            yield from ssd.write(0, 1, tags=["journal"], stream="journal")
            programs_before = ssd.stats.value("flash.program")
            completion = yield ssd.submit(Command(
                op=Op.COW, entries=(CowEntry(src_lba=0, dst_lba=100),)))
            tags = yield from ssd.read(100, 1)
            return programs_before, completion, tags

        before, completion, tags = run(sim, proc())
        assert completion.remapped_units == 1
        assert completion.copied_units == 0
        assert tags == ["journal"]
        assert ssd.stats.value("flash.program") == before

    def test_cow_copies_when_remap_disabled(self):
        sim, ssd = make_ssd(enable_isce=True, mapping_unit=512,
                            allow_remap=False)

        def proc():
            yield from ssd.write(0, 1, tags=["journal"], stream="journal")
            completion = yield ssd.submit(Command(
                op=Op.COW, entries=(CowEntry(src_lba=0, dst_lba=100),)))
            tags = yield from ssd.read(100, 1)
            return completion, tags

        completion, tags = run(sim, proc())
        assert completion.remapped_units == 0
        assert completion.copied_units == 1
        assert tags == ["journal"]

    def test_multi_cow_batches(self):
        sim, ssd = make_ssd(enable_isce=True, mapping_unit=512)

        def proc():
            yield from ssd.write(0, 4, tags=list("abcd"), stream="journal")
            entries = tuple(CowEntry(src_lba=i, dst_lba=100 + i)
                            for i in range(4))
            completion = yield ssd.submit(Command(op=Op.COW_MULTI,
                                                  entries=entries))
            tags = yield from ssd.read(100, 4)
            return completion, tags

        completion, tags = run(sim, proc())
        assert completion.remapped_units == 4
        assert tags == list("abcd")

    def test_checkpoint_command_persists_metadata(self):
        sim, ssd = make_ssd(enable_isce=True, mapping_unit=512)

        def proc():
            yield from ssd.write(0, 2, tags=["a", "b"], stream="journal")
            entries = (CowEntry(0, 100), CowEntry(1, 101))
            yield ssd.submit(Command(op=Op.CHECKPOINT, entries=entries))
            yield from ssd.quiesce()

        run(sim, proc())
        assert ssd.stats.value("ftl.units.write.meta") >= 1

    def test_delete_logs_trims_journal(self):
        sim, ssd = make_ssd(enable_isce=True, mapping_unit=512)

        def proc():
            yield from ssd.write(0, 2, tags=["a", "b"], stream="journal")
            yield ssd.submit(Command(op=Op.CHECKPOINT,
                                     entries=(CowEntry(0, 100),
                                              CowEntry(1, 101))))
            yield ssd.submit(Command(op=Op.DELETE_LOGS, lba=0, nsectors=2))
            journal = yield from ssd.read(0, 2)
            data = yield from ssd.read(100, 2)
            return journal, data

        journal, data = run(sim, proc())
        assert journal == [None, None]
        assert data == ["a", "b"]

    def test_unaligned_entry_takes_copy_path(self):
        # 4 KiB mapping: single-sector CoW entries cannot be remapped.
        sim, ssd = make_ssd(enable_isce=True, mapping_unit=4096)

        def proc():
            yield from ssd.write(0, 8, tags=[f"j{i}" for i in range(8)],
                                 stream="journal")
            completion = yield ssd.submit(Command(
                op=Op.COW, entries=(CowEntry(src_lba=0, dst_lba=104,
                                             nsectors=1),)))
            return completion

        completion = run(sim, proc())
        assert completion.remapped_units == 0
        assert completion.copied_units == 1

    def test_merged_partial_entry_scatter(self):
        from repro.checkin import MergedPayload
        sim, ssd = make_ssd(enable_isce=True, mapping_unit=512)

        def proc():
            merged = MergedPayload()
            merged.add(128, ("keyA", 1))
            merged.add(256, ("keyB", 1))
            yield from ssd.write(0, 1, tags=[merged], stream="journal")
            entries = (
                CowEntry(src_lba=0, dst_lba=100, src_offset=0, length_bytes=128),
                CowEntry(src_lba=0, dst_lba=108, src_offset=128,
                         length_bytes=256),
            )
            completion = yield ssd.submit(Command(op=Op.COW_MULTI,
                                                  entries=entries))
            a = yield from ssd.read(100, 1)
            b = yield from ssd.read(108, 1)
            return completion, a, b

        completion, a, b = run(sim, proc())
        assert completion.remapped_units == 0
        assert completion.copied_units == 2
        assert a == [("keyA", 1)]
        assert b == [("keyB", 1)]


class TestBackgroundGc:
    def test_idle_daemon_collects(self):
        sim, ssd = make_ssd(blocks=4, mapping_unit=512)
        ssd.start()
        total_units = ssd.ftl.geometry.total_pages * ssd.ftl.units_per_page

        def proc():
            for i in range(total_units):
                yield from ssd.write(0, 1, tags=None)
            yield from ssd.quiesce()

        proc_obj = spawn(sim, proc())
        while not proc_obj.triggered:
            sim.step()
        # Let the daemon observe the idle device for a while.
        sim.run(until=sim.now + 50_000_000)
        ssd.shutdown()
        sim.run()
        assert proc_obj.ok
        assert ssd.stats.value("gc.invocations") >= 1
