"""Unit tests for repro.common.units."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common import units


class TestCeilDiv:
    def test_exact_division(self):
        assert units.ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert units.ceil_div(9, 4) == 3

    def test_zero_dividend(self):
        assert units.ceil_div(0, 4) == 0

    def test_one_byte(self):
        assert units.ceil_div(1, 4096) == 1

    def test_negative_dividend_rejected(self):
        with pytest.raises(ValueError):
            units.ceil_div(-1, 4)

    def test_zero_divisor_rejected(self):
        with pytest.raises(ValueError):
            units.ceil_div(4, 0)

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_matches_float_ceiling(self, a, b):
        import math
        assert units.ceil_div(a, b) == math.ceil(a / b)


class TestRounding:
    def test_round_up_already_aligned(self):
        assert units.round_up(1024, 512) == 1024

    def test_round_up_unaligned(self):
        assert units.round_up(1000, 512) == 1024

    def test_round_down(self):
        assert units.round_down(1000, 512) == 512

    def test_round_down_aligned(self):
        assert units.round_down(1024, 512) == 1024

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_round_up_ge_value_and_aligned(self, value, multiple):
        rounded = units.round_up(value, multiple)
        assert rounded >= value
        assert rounded % multiple == 0
        assert rounded - value < multiple

    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=1, max_value=10**6))
    def test_round_down_le_value_and_aligned(self, value, multiple):
        rounded = units.round_down(value, multiple)
        assert rounded <= value
        assert rounded % multiple == 0
        assert value - rounded < multiple


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 512, 4096, 2**20])
    def test_powers(self, value):
        assert units.is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 100, 4097])
    def test_non_powers(self, value):
        assert not units.is_power_of_two(value)


class TestTransferTime:
    def test_one_second_worth(self):
        assert units.transfer_time_ns(1000, 1000) == units.SEC

    def test_zero_bytes_is_free(self):
        assert units.transfer_time_ns(0, 10**9) == 0

    def test_never_zero_for_nonzero_bytes(self):
        assert units.transfer_time_ns(1, 10**12) >= 1

    def test_gbps_link(self):
        # 4 KiB over 1 GB/s = 4096 ns
        assert units.transfer_time_ns(4096, 10**9) == 4096

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            units.transfer_time_ns(10, 0)

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            units.transfer_time_ns(-1, 100)


class TestFormatting:
    def test_format_bytes_small(self):
        assert units.format_bytes(100) == "100 B"

    def test_format_bytes_kib(self):
        assert units.format_bytes(4096) == "4.0 KiB"

    def test_format_bytes_mib(self):
        assert units.format_bytes(3 * units.MIB) == "3.0 MiB"

    def test_format_time_ns(self):
        assert units.format_time(500) == "500 ns"

    def test_format_time_us(self):
        assert units.format_time(1500) == "1.50 us"

    def test_format_time_ms(self):
        assert units.format_time(2 * units.MS) == "2.00 ms"

    def test_format_time_s(self):
        assert units.format_time(3 * units.SEC) == "3.000 s"


class TestConstants:
    def test_sector_size(self):
        assert units.SECTOR_SIZE == 512

    def test_size_ladder(self):
        assert units.MIB == 1024 * units.KIB
        assert units.GIB == 1024 * units.MIB

    def test_time_ladder(self):
        assert units.US == 1000 * units.NS
        assert units.MS == 1000 * units.US
        assert units.SEC == 1000 * units.MS
