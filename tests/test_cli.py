"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.mode == "checkin"
        assert args.threads == 32

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_accepts_figure_alias_and_trace(self):
        args = build_parser().parse_args(["run", "fig8", "--trace"])
        assert args.experiment == "fig8"
        assert args.trace and args.out is None

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.experiment == "fig8a"
        assert args.out == "trace.json"
        assert args.validate is None


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8a" in out and "table1" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Flash topology" in capsys.readouterr().out

    def test_bench_small(self, capsys):
        assert main(["bench", "--mode", "checkin", "--threads", "4",
                     "--queries", "1500", "--no-artifact"]) == 0
        out = capsys.readouterr().out
        assert "throughput_qps" in out
        assert "checkpoints" in out
        assert "bench artifact" not in out

    def test_bench_writes_artifact(self, tmp_path, capsys):
        from repro.analysis.benchfile import load_bench_artifact
        artifact_path = tmp_path / "BENCH_test.json"
        assert main(["bench", "--mode", "checkin", "--threads", "4",
                     "--queries", "1500",
                     "--artifact", str(artifact_path)]) == 0
        artifact = load_bench_artifact(str(artifact_path))
        assert artifact["schema"] == "repro-bench/v1"
        assert artifact["bench"]["threads"] == 4
        assert artifact["metrics"]["operations"] == 1500.0
        assert artifact["metrics"]["throughput_qps"] > 0

    def test_bench_traced_exports_valid_trace(self, tmp_path, capsys):
        from repro.trace import validate_trace_file
        out_path = tmp_path / "bench.json"
        assert main(["bench", "--mode", "checkin", "--threads", "4",
                     "--queries", "1500", "--no-artifact", "--trace",
                     "--out", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "checkpoint phase breakdown" in out
        assert "queue-wait vs service-time" in out
        assert validate_trace_file(str(out_path)) == []

    def test_telemetry_run_exports_valid_jsonl(self, tmp_path, capsys):
        from repro.telemetry import validate_telemetry_file
        out_path = tmp_path / "telemetry.jsonl"
        assert main(["telemetry", "--threads", "4", "--queries", "1500",
                     "--interval", "100us", "--out", str(out_path),
                     "--summary"]) == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out and "device health report" in out
        assert validate_telemetry_file(str(out_path)) == []

    def test_telemetry_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["telemetry", "--validate", str(bad)]) == 1

    def test_trace_validate_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert main(["trace", "--validate", str(bad)]) == 1
        assert main(["trace", "--validate", str(tmp_path / "missing")]) == 1


class TestTenantRuns:
    def test_run_tenants_parses(self):
        args = build_parser().parse_args(["run", "--tenants", "2"])
        assert args.experiment is None
        assert args.tenants == 2
        assert args.mode == "checkin"

    def test_fault_sweep_tenants_default(self):
        args = build_parser().parse_args(["fault-sweep"])
        assert args.tenants == 1

    def test_run_without_experiment_or_tenants_fails(self, capsys):
        assert main(["run"]) == 2
        assert "experiment id" in capsys.readouterr().err

    def test_run_rejects_experiment_plus_tenants(self, capsys):
        assert main(["run", "fig8a", "--tenants", "2"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_run_rejects_nonpositive_tenants(self, capsys):
        assert main(["run", "--tenants", "0"]) == 2
        assert ">= 1" in capsys.readouterr().err

    def test_run_two_tenants(self, capsys):
        assert main(["run", "--tenants", "2", "--mode", "checkin"]) == 0
        out = capsys.readouterr().out
        assert "tenant0" in out and "tenant1" in out
        assert "aggregate" in out
        assert "sum to" in out and "DO NOT" not in out
