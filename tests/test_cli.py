"""Tests for the command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.mode == "checkin"
        assert args.threads == 32

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8a" in out and "table1" in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Flash topology" in capsys.readouterr().out

    def test_bench_small(self, capsys):
        assert main(["bench", "--mode", "checkin", "--threads", "4",
                     "--queries", "1500"]) == 0
        out = capsys.readouterr().out
        assert "throughput_qps" in out
        assert "checkpoints" in out
