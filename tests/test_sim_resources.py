"""Unit tests for Resource / Lock / Store."""

import pytest

from repro.common.errors import SimulationError
from repro.sim import Lock, Resource, Simulator, Store, spawn


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), 0)

    def test_immediate_grant_under_capacity(self):
        sim = Simulator()
        res = Resource(sim, 2)
        assert res.acquire().triggered
        assert res.acquire().triggered
        assert res.in_use == 2

    def test_waits_when_full(self):
        sim = Simulator()
        res = Resource(sim, 1)
        res.acquire()
        second = res.acquire()
        assert not second.triggered
        assert res.queue_length == 1
        res.release()
        sim.run()
        assert second.triggered

    def test_fifo_grant_order(self):
        sim = Simulator()
        res = Resource(sim, 1)
        order = []

        def worker(name, hold):
            yield res.acquire()
            order.append(name)
            yield hold
            res.release()

        spawn(sim, worker("a", 10))
        spawn(sim, worker("b", 10))
        spawn(sim, worker("c", 10))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_release_without_acquire_is_error(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), 1).release()

    def test_try_acquire(self):
        sim = Simulator()
        res = Resource(sim, 1)
        assert res.try_acquire()
        assert not res.try_acquire()
        res.release()
        assert res.try_acquire()

    def test_pipeline_throughput_matches_capacity(self):
        """Two slots let two workers overlap; total time halves."""
        sim = Simulator()
        res = Resource(sim, 2)
        finished = []

        def worker(i):
            yield res.acquire()
            yield 100
            res.release()
            finished.append((i, sim.now))

        for i in range(4):
            spawn(sim, worker(i))
        sim.run()
        assert max(t for _, t in finished) == 200


class TestLock:
    def test_mutual_exclusion(self):
        sim = Simulator()
        lock = Lock(sim)
        inside = []

        def critical(name):
            yield lock.acquire()
            inside.append(f"{name}-in")
            yield 50
            inside.append(f"{name}-out")
            lock.release()

        spawn(sim, critical("x"))
        spawn(sim, critical("y"))
        sim.run()
        assert inside == ["x-in", "x-out", "y-in", "y-out"]

    def test_locked_property(self):
        sim = Simulator()
        lock = Lock(sim)
        assert not lock.locked
        lock.acquire()
        assert lock.locked
        lock.release()
        assert not lock.locked


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        store.put("b")
        got = store.get()
        assert got.triggered and got.value == "a"
        assert len(store) == 1

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        seen = []

        def consumer():
            item = yield store.get()
            seen.append((sim.now, item))

        spawn(sim, consumer())
        sim.schedule(40, store.put, "late")
        sim.run()
        assert seen == [(40, "late")]

    def test_fifo_item_order(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        items = [store.get().value for _ in range(5)]
        assert items == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        first = store.put("a")
        second = store.put("b")
        assert first.triggered
        assert not second.triggered
        got = store.get()
        sim.run()
        assert got.value == "a"
        assert second.triggered
        assert store.get().value == "b"

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Store(Simulator(), capacity=0)

    def test_producer_consumer_pipeline(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        consumed = []

        def producer():
            for i in range(6):
                yield store.put(i)
                yield 1

        def consumer():
            for _ in range(6):
                item = yield store.get()
                consumed.append(item)
                yield 5

        spawn(sim, producer())
        spawn(sim, consumer())
        sim.run()
        assert consumed == [0, 1, 2, 3, 4, 5]
