"""Tests for the DFTL map-cache model."""

from repro.flash import FlashArray, FlashGeometry, FlashTiming
from repro.ftl import Ftl, FtlConfig
from repro.sim import Simulator, spawn


def make_ftl(map_cache_bytes, mapping_unit=512):
    sim = Simulator()
    geometry = FlashGeometry(channels=2, packages_per_channel=1,
                             dies_per_package=1, planes_per_die=1,
                             blocks_per_plane=16, pages_per_block=8)
    array = FlashArray(sim, geometry, FlashTiming(
        read_ns=10_000, program_ns=100_000, erase_ns=1_000_000))
    return sim, Ftl(sim, array, FtlConfig(mapping_unit=mapping_unit,
                                          map_cache_bytes=map_cache_bytes))


def run(sim, generator):
    proc = spawn(sim, generator)
    sim.run()
    assert proc.ok, proc.exception
    return proc.value


class TestMapCache:
    def test_first_touch_misses_then_hits(self):
        sim, ftl = make_ftl(map_cache_bytes=2 * 4096)

        def proc():
            yield from ftl.write(0, 1, tags=["a"])   # miss on map page 0
            yield from ftl.write(1, 1, tags=["b"])   # hit (same map page)
            yield from ftl.read(0, 2)                # hit

        run(sim, proc())
        assert ftl.stats.value("ftl.map_miss") == 1
        assert ftl.stats.value("flash.read.map") == 1

    def test_capacity_evictions_cause_remisses(self):
        # One cached map page; alternate between two distant map pages.
        sim, ftl = make_ftl(map_cache_bytes=4096)
        entries_per_page = ftl._map_entries_per_page

        def proc():
            for _ in range(3):
                yield from ftl.write(0, 1, tags=None)
                yield from ftl.write(entries_per_page, 1, tags=None)

        run(sim, proc())
        assert ftl.stats.value("ftl.map_miss") == 6

    def test_disabled_cache_never_misses(self):
        sim, ftl = make_ftl(map_cache_bytes=0)

        def proc():
            yield from ftl.write(0, 4, tags=None)
            yield from ftl.read(0, 4)

        run(sim, proc())
        assert ftl.stats.value("ftl.map_miss") == 0

    def test_miss_costs_flash_read_time(self):
        sim, ftl = make_ftl(map_cache_bytes=2 * 4096)
        times = []

        def proc():
            start = sim.now
            yield from ftl.read(0, 1)  # unmapped but map page missing
            times.append(sim.now - start)
            start = sim.now
            yield from ftl.read(0, 1)  # map page now cached
            times.append(sim.now - start)

        run(sim, proc())
        assert times[0] >= 10_000       # paid the map read
        assert times[1] < times[0]

    def test_larger_units_cover_more_space_per_page(self):
        """The fig13(a) mechanism: fewer mapping entries at bigger units."""
        _sim512, ftl512 = make_ftl(map_cache_bytes=4096, mapping_unit=512)
        _sim4k, ftl4k = make_ftl(map_cache_bytes=4096, mapping_unit=4096)
        span = 512  # sectors
        pages_512 = {lpn // ftl512._map_entries_per_page
                     for lpn in ftl512.lpn_span(0, span)}
        pages_4k = {lpn // ftl4k._map_entries_per_page
                    for lpn in ftl4k.lpn_span(0, span)}
        assert len(pages_512) >= len(pages_4k)
        assert len(ftl4k.lpn_span(0, span)) == len(ftl512.lpn_span(0, span)) / 8
