"""Unit tests for simulation statistics primitives."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Counter, LatencySample, Simulator, StatRegistry, TimeWeightedGauge


class TestCounter:
    def test_starts_at_zero(self):
        counter = Counter("x")
        assert counter.count == 0
        assert counter.total_bytes == 0

    def test_add(self):
        counter = Counter("x")
        counter.add(2, num_bytes=1024)
        counter.add()
        assert counter.count == 3
        assert counter.total_bytes == 1024


class TestTimeWeightedGauge:
    def test_constant_level(self):
        sim = Simulator()
        gauge = TimeWeightedGauge(sim, initial=5.0)
        sim.schedule(100, lambda: None)
        sim.run()
        assert gauge.time_average() == pytest.approx(5.0)

    def test_step_change(self):
        sim = Simulator()
        gauge = TimeWeightedGauge(sim, initial=0.0)
        sim.schedule(50, gauge.set, 10.0)
        sim.schedule(100, lambda: None)
        sim.run()
        # 0 for 50 ns, 10 for 50 ns -> average 5
        assert gauge.time_average() == pytest.approx(5.0)

    def test_adjust(self):
        sim = Simulator()
        gauge = TimeWeightedGauge(sim)
        gauge.adjust(3.0)
        gauge.adjust(-1.0)
        assert gauge.level == pytest.approx(2.0)

    def test_zero_elapsed_returns_level(self):
        sim = Simulator()
        gauge = TimeWeightedGauge(sim, initial=7.0)
        assert gauge.time_average() == pytest.approx(7.0)

    def test_reset_starts_a_fresh_window(self):
        sim = Simulator()
        gauge = TimeWeightedGauge(sim, initial=2.0)
        sim.schedule(100, lambda: None)
        sim.run()
        gauge.reset()
        gauge.set(6.0)  # level carried over, then changed at t=100
        sim.schedule(50, lambda: None)
        sim.run()
        # Only [100, 150) counts: constant 6.0.
        assert gauge.time_average() == pytest.approx(6.0)

    def test_snapshot_window_returns_average_and_resets(self):
        sim = Simulator()
        gauge = TimeWeightedGauge(sim, initial=4.0)
        sim.schedule(100, lambda: None)
        sim.run()
        average, window = gauge.snapshot_window()
        assert average == pytest.approx(4.0)
        assert window == 100
        gauge.set(10.0)
        sim.schedule(100, lambda: None)
        sim.run()
        average, window = gauge.snapshot_window()
        assert average == pytest.approx(10.0)
        assert window == 100


class TestLatencySample:
    def test_empty_sample(self):
        sample = LatencySample()
        assert len(sample) == 0
        assert sample.mean() == 0.0
        assert sample.percentile(99) == 0.0
        assert sample.min() == 0 and sample.max() == 0

    def test_single_sample(self):
        sample = LatencySample()
        sample.record(42)
        assert sample.percentile(0) == 42
        assert sample.percentile(100) == 42
        assert sample.mean() == 42

    def test_median_of_odd_count(self):
        sample = LatencySample()
        sample.extend([10, 30, 20])
        assert sample.p50() == 20

    def test_interpolated_median(self):
        sample = LatencySample()
        sample.extend([10, 20])
        assert sample.p50() == pytest.approx(15.0)

    def test_percentile_bounds_checked(self):
        sample = LatencySample()
        sample.record(1)
        with pytest.raises(ValueError):
            sample.percentile(101)
        with pytest.raises(ValueError):
            sample.percentile(-1)

    def test_tail_percentiles_ordering(self):
        sample = LatencySample()
        sample.extend(range(1, 10001))
        assert sample.p50() <= sample.p99() <= sample.p999() <= sample.p9999()
        assert sample.p999() == pytest.approx(9990.001, rel=1e-3)

    def test_record_after_query_invalidates_cache(self):
        sample = LatencySample()
        sample.extend([1, 2, 3])
        assert sample.p50() == 2
        sample.record(100)
        assert sample.max() == 100
        assert sample.percentile(100) == 100

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1))
    def test_percentiles_within_range(self, values):
        sample = LatencySample()
        sample.extend(values)
        for pct in (0, 25, 50, 90, 99, 99.9, 100):
            p = sample.percentile(pct)
            assert min(values) <= p <= max(values)

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=2))
    def test_percentile_monotone_in_pct(self, values):
        sample = LatencySample()
        sample.extend(values)
        pcts = [0, 10, 50, 90, 99, 100]
        results = [sample.percentile(p) for p in pcts]
        assert results == sorted(results)

    def test_bulk_p_empty_still_validates(self):
        sample = LatencySample()
        assert sample.p(50, 99.9) == {50: 0.0, 99.9: 0.0}
        with pytest.raises(ValueError):
            sample.p(50, 101)

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1))
    def test_bulk_p_matches_percentile_loop(self, values):
        sample = LatencySample()
        sample.extend(values)
        pcts = (0, 25, 50, 90, 99, 99.9, 100)
        assert sample.p(*pcts) == {p: sample.percentile(p) for p in pcts}


class TestStatRegistry:
    def test_counter_get_or_create(self):
        registry = StatRegistry()
        a = registry.counter("flash.read")
        b = registry.counter("flash.read")
        assert a is b

    def test_value_of_untouched_is_zero(self):
        registry = StatRegistry()
        assert registry.value("nothing") == 0
        assert registry.bytes("nothing") == 0

    def test_snapshot(self):
        registry = StatRegistry()
        registry.counter("b").add(2, num_bytes=10)
        registry.counter("a").add(1, num_bytes=5)
        assert registry.snapshot() == {"a": 1, "b": 2}
        assert registry.snapshot_bytes() == {"a": 5, "b": 10}

    def test_byte_accounting_accumulates_independently(self):
        registry = StatRegistry()
        registry.counter("host.write_cmds").add(3, num_bytes=1536)
        registry.counter("host.write_cmds").add(num_bytes=512)  # count +1
        registry.counter("host.read_cmds").add(2)  # counts without bytes
        assert registry.value("host.write_cmds") == 4
        assert registry.bytes("host.write_cmds") == 2048
        assert registry.value("host.read_cmds") == 2
        assert registry.bytes("host.read_cmds") == 0

    def test_snapshots_are_point_in_time_copies(self):
        registry = StatRegistry()
        registry.counter("flash.program").add(num_bytes=4096)
        before = registry.snapshot_bytes()
        registry.counter("flash.program").add(num_bytes=4096)
        assert before["flash.program"] == 4096
        assert registry.snapshot_bytes()["flash.program"] == 8192
