"""Unit tests for the command set."""

import pytest

from repro.common.errors import CommandError
from repro.ssd import Command, Completion, CowEntry, Op, read_command, write_command


class TestCommandValidation:
    def test_read_requires_sectors(self):
        with pytest.raises(CommandError):
            Command(op=Op.READ, lba=0, nsectors=0)

    def test_negative_lba_rejected(self):
        with pytest.raises(CommandError):
            Command(op=Op.READ, lba=-1, nsectors=1)

    def test_write_tag_count_checked(self):
        with pytest.raises(CommandError):
            Command(op=Op.WRITE, lba=0, nsectors=2, tags=["one"])

    def test_cow_requires_entries(self):
        with pytest.raises(CommandError):
            Command(op=Op.COW_MULTI)

    def test_single_cow_exactly_one_entry(self):
        entries = (CowEntry(0, 100), CowEntry(1, 101))
        with pytest.raises(CommandError):
            Command(op=Op.COW, entries=entries)
        Command(op=Op.COW, entries=(CowEntry(0, 100),))  # ok

    def test_flush_needs_nothing(self):
        Command(op=Op.FLUSH)  # ok


class TestCowEntry:
    def test_defaults(self):
        entry = CowEntry(src_lba=3, dst_lba=100)
        assert entry.nsectors == 1
        assert entry.src_offset == 0
        assert entry.length_bytes is None

    def test_validation(self):
        with pytest.raises(CommandError):
            CowEntry(-1, 0)
        with pytest.raises(CommandError):
            CowEntry(0, -1)
        with pytest.raises(CommandError):
            CowEntry(0, 0, nsectors=0)
        with pytest.raises(CommandError):
            CowEntry(0, 0, src_offset=-5)


class TestDataBytes:
    def test_read_write_payload(self):
        assert Command(op=Op.READ, lba=0, nsectors=4).data_bytes == 2048
        assert Command(op=Op.WRITE, lba=0, nsectors=1).data_bytes == 512

    def test_cow_moves_descriptors_only(self):
        entries = tuple(CowEntry(i, 100 + i) for i in range(10))
        cmd = Command(op=Op.COW_MULTI, entries=entries)
        assert cmd.data_bytes == 160  # 16 B per descriptor
        # An order of magnitude less than moving the data itself.
        assert cmd.data_bytes < 10 * 512

    def test_flush_no_payload(self):
        assert Command(op=Op.FLUSH).data_bytes == 0


class TestHelpers:
    def test_read_command(self):
        cmd = read_command(5, 2)
        assert cmd.op is Op.READ and cmd.lba == 5 and cmd.nsectors == 2

    def test_write_command(self):
        cmd = write_command(5, 2, tags=["a", "b"], fua=True, stream="journal",
                            cause="host")
        assert cmd.op is Op.WRITE and cmd.fua and cmd.stream == "journal"

    def test_completion_latency(self):
        completion = Completion(command=read_command(0, 1),
                                submitted_at=100, completed_at=350)
        assert completion.latency_ns == 250
