"""Integration tests for media-error survival: no zombies, no data loss.

The contract under test, end to end:

* a mid-run media error surfaces to the submitter as a typed completion
  (``MEDIA_ERROR`` / ``RETRIED_OK`` / ``READ_ONLY``), never as a dead or
  hung process;
* no acked update and no completed checkpoint is ever lost, at any
  seeded failure rate, baseline and Check-In, single- and multi-tenant
  (Hypothesis randomizes seeds and rates on top of the fixed grid);
* exhausting the spare-block budget ends the run in *reported* read-only
  degraded mode, not an unhandled exception;
* same-seed media runs are byte-identical (determinism guard);
* retry/error events show up in the trace summary.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fault import media_sweep, spare_exhaustion_run
from repro.flash import FlashGeometry, FlashTiming
from repro.flash.media import MediaErrorConfig
from repro.ftl import FtlConfig
from repro.sim import Simulator, spawn
from repro.ssd import (
    Command,
    ControllerConfig,
    InterfaceConfig,
    Op,
    Ssd,
    SsdSpec,
    Status,
)
from repro.system.config import tiny_config
from repro.system.system import KvSystem
from repro.trace import Tracer, summarize


def make_flaky_ssd(read_uecc_base=0.9, media_retry_limit=0,
                   read_reissue_limit=0, seed=21):
    """A device rigged so uncorrectable reads reach the host."""
    sim = Simulator()
    spec = SsdSpec(
        geometry=FlashGeometry(channels=2, packages_per_channel=1,
                               dies_per_package=1, planes_per_die=1,
                               blocks_per_plane=8, pages_per_block=4,
                               page_size=4096),
        timing=FlashTiming(read_ns=50_000, program_ns=500_000,
                           erase_ns=3_000_000, channel_bandwidth=10**9,
                           channel_setup_ns=100),
        ftl=FtlConfig(mapping_unit=4096,
                      read_reissue_limit=read_reissue_limit),
        interface=InterfaceConfig(queue_depth=8, command_overhead_ns=5_000,
                                  pcie_bandwidth=3_200_000_000),
        controller=ControllerConfig(read_cache_units=0,
                                    media_retry_limit=media_retry_limit),
        media=MediaErrorConfig(enabled=True, read_uecc_base=read_uecc_base,
                               max_read_retries=0),
        media_seed=seed,
    )
    return sim, Ssd(sim, spec)


class TestTypedCompletions:
    def test_uncorrectable_read_is_a_completion_not_a_zombie(self):
        """Regression: a device error must never strand the submitter."""
        sim, ssd = make_flaky_ssd()
        ssd.ftl.preload(0, 80, tags=[f"t{s}" for s in range(80)])
        completions = []

        def driver():
            for lba in range(0, 80, 8):
                completion = yield ssd.submit(
                    Command(op=Op.READ, lba=lba, nsectors=8))
                completions.append(completion)

        proc = spawn(sim, driver())
        sim.run()
        # The whole point: the process finished — no hang, no exception.
        assert proc.triggered and proc.ok, getattr(proc, "exception", None)
        assert len(completions) == 10
        statuses = {completion.status for completion in completions}
        assert Status.MEDIA_ERROR in statuses
        failed = [c for c in completions if c.status is Status.MEDIA_ERROR]
        assert all(c.error for c in failed)
        assert ssd.stats.value("cmd.media_errors") == len(failed)

    def test_bounded_retry_reports_retried_ok(self):
        sim, ssd = make_flaky_ssd(media_retry_limit=50)
        ssd.ftl.preload(0, 80, tags=[f"t{s}" for s in range(80)])

        def driver():
            results = []
            for lba in range(0, 80, 8):
                completion = yield ssd.submit(
                    Command(op=Op.READ, lba=lba, nsectors=8))
                results.append(completion)
            return results

        proc = spawn(sim, driver())
        sim.run()
        assert proc.triggered and proc.ok, getattr(proc, "exception", None)
        completions = proc.value
        assert all(c.ok for c in completions)
        retried = [c for c in completions if c.status is Status.RETRIED_OK]
        assert retried and all(c.retries > 0 for c in retried)

    def test_retry_and_error_events_appear_in_trace_summary(self):
        sim, ssd = make_flaky_ssd()
        sim.tracer = Tracer(sim)
        ssd.ftl.preload(0, 80, tags=[f"t{s}" for s in range(80)])

        def driver():
            for lba in range(0, 80, 8):
                yield ssd.submit(Command(op=Op.READ, lba=lba, nsectors=8))

        proc = spawn(sim, driver())
        sim.run()
        assert proc.triggered and proc.ok
        ssd.ftl.enter_degraded("trace smoke")
        stages = {(row["component"], row["stage"])
                  for row in summarize(sim.tracer).stage_rows}
        assert ("media", "cmd_retry") in stages
        assert ("media", "cmd_error") in stages
        assert ("ftl", "degraded") in stages


class TestMediaSweep:
    def test_checkin_sweep_survives_high_rate(self):
        sweep = media_sweep("checkin", rates=(5e-2,), ops=60, num_keys=32,
                            ckpt_every=20)
        assert sweep.ok, sweep.failures()
        point = sweep.results[0]
        assert point.acked_keys > 0
        # At 5% the run must actually have exercised the media paths.
        assert point.program_fails > 0 or point.uecc_events > 0

    def test_baseline_sweep_survives(self):
        sweep = media_sweep("baseline", rates=(1e-2,), ops=60, num_keys=32,
                            ckpt_every=20)
        assert sweep.ok, sweep.failures()

    def test_two_tenant_sweep_survives(self):
        sweep = media_sweep("checkin", rates=(1e-2,), ops=50, num_keys=32,
                            ckpt_every=25, tenants=2)
        assert sweep.ok, sweep.failures()
        assert sweep.results[0].tenants == 2

    def test_sweep_is_deterministic(self):
        first = media_sweep("checkin", rates=(1e-2,), ops=40, num_keys=32,
                            ckpt_every=20)
        second = media_sweep("checkin", rates=(1e-2,), ops=40, num_keys=32,
                            ckpt_every=20)
        assert first.digest() == second.digest()


class TestDegradedMode:
    def test_spare_exhaustion_ends_in_reported_degraded_mode(self):
        result = spare_exhaustion_run()
        summary = result.metrics.summary()
        assert summary["degraded"] == 1.0
        assert summary["bad_blocks"] > 0
        assert result.metrics.device_degraded
        assert "spare blocks exhausted" in result.metrics.degraded_reason
        # Degraded or not, the run completed and served queries.
        assert summary["operations"] > 0

    def test_spare_exhaustion_is_telemetry_observable(self):
        """The degraded_entry watchdog pinpoints the failure instant and
        the SMART frames bracket it (healthy before, degraded after)."""
        result = spare_exhaustion_run()
        sampler = result.telemetry
        assert sampler is not None
        fired = [event for event in sampler.events
                 if event.watchdog == "degraded_entry"]
        assert len(fired) == 1  # terminal: fires once, never clears
        assert fired[0].kind == "fired"
        assert fired[0].severity == "error"
        frames = list(sampler.health.frames)
        assert frames[-1]["degraded"] is True
        assert frames[-1]["bad_blocks"] > frames[0]["bad_blocks"]
        before = [f for f in frames if f["t_ns"] < fired[0].t_ns]
        assert before and before[0]["degraded"] is False


class TestDeterminism:
    def test_same_seed_media_runs_are_identical(self):
        def one_run():
            config = tiny_config(mode="checkin", seed=13,
                                 total_queries=800, num_keys=64,
                                 media=MediaErrorConfig(
                                     enabled=True, program_fail_base=1e-2,
                                     erase_fail_base=5e-3,
                                     read_uecc_base=5e-3))
            return KvSystem(config).run().metrics.summary()

        assert one_run() == one_run()


class TestDurabilityProperty:
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**16),
           rate=st.sampled_from([1e-3, 1e-2, 5e-2]),
           mode=st.sampled_from(["baseline", "checkin"]))
    def test_acked_keys_survive_random_media_errors(self, seed, rate, mode):
        """Reads after recovery return last-acked-or-newer, any rate."""
        sweep = media_sweep(mode, rates=(rate,), seed=seed, ops=40,
                            num_keys=32, ckpt_every=15)
        assert sweep.ok, sweep.failures()
