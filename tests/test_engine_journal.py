"""Integration tests for the journal manager (group commit, halves)."""

import pytest

from repro.common.errors import EngineError
from repro.engine import JournalConfig, JournalManager, PackedFormatter, UpdateRequest
from repro.engine.aligner import SectorAlignedFormatter
from repro.flash import FlashGeometry, FlashTiming
from repro.ftl import FtlConfig
from repro.sim import Simulator, spawn
from repro.ssd import InterfaceConfig, Ssd, SsdSpec


def make_setup(formatter=None, total_sectors=64, group_commit_ns=5_000,
               mapping_unit=512):
    sim = Simulator()
    ssd = Ssd(sim, SsdSpec(
        geometry=FlashGeometry(channels=2, packages_per_channel=1,
                               dies_per_package=1, planes_per_die=1,
                               blocks_per_plane=8, pages_per_block=8),
        timing=FlashTiming(read_ns=10_000, program_ns=100_000,
                           erase_ns=1_000_000),
        ftl=FtlConfig(mapping_unit=mapping_unit),
        interface=InterfaceConfig(queue_depth=8, command_overhead_ns=1_000)))
    journal = JournalManager(
        sim, ssd, formatter or PackedFormatter(),
        JournalConfig(lba_start=0, total_sectors=total_sectors,
                      group_commit_ns=group_commit_ns))
    journal.start()
    return sim, ssd, journal


def request(key, size=200, version=1):
    return UpdateRequest(key=key, version=version, value_bytes=size,
                         target_lba=5000 + key * 8, target_nsectors=1)


def run_until(sim, event):
    while not event.triggered:
        assert sim.step(), "simulation starved"


class TestGroupCommit:
    def test_single_commit(self):
        sim, ssd, journal = make_setup()
        commit = journal.submit(request(1))
        run_until(sim, commit)
        entry = commit.value
        assert entry.committed
        assert journal.active_jmt.lookup(1) is entry
        assert ssd.stats.value("journal.transactions") == 1

    def test_window_batches_concurrent_submissions(self):
        sim, ssd, journal = make_setup(group_commit_ns=10_000)
        commits = [journal.submit(request(k)) for k in range(5)]
        for commit in commits:
            run_until(sim, commit)
        # All five updates share one transaction (one journal write).
        assert ssd.stats.value("journal.transactions") == 1
        assert len(journal.active_jmt) == 5

    def test_separated_submissions_are_separate_transactions(self):
        sim, ssd, journal = make_setup(group_commit_ns=1_000)
        first = journal.submit(request(1))
        run_until(sim, first)
        second = journal.submit(request(2))
        run_until(sim, second)
        assert ssd.stats.value("journal.transactions") == 2

    def test_commit_event_carries_entry(self):
        sim, _ssd, journal = make_setup()
        commit = journal.submit(request(3, size=400, version=7))
        run_until(sim, commit)
        assert commit.value.tag == (3, 7)

    def test_bytes_logged_accumulates(self):
        sim, _ssd, journal = make_setup()
        commit = journal.submit(request(1, size=200))
        run_until(sim, commit)
        assert journal.active_bytes_logged == 216  # header + value


class TestFreezeRelease:
    def test_freeze_rotates_halves(self):
        sim, _ssd, journal = make_setup(total_sectors=64)
        commit = journal.submit(request(1))
        run_until(sim, commit)
        head_before = journal.active_head_sectors
        assert head_before > 0
        frozen = journal.freeze()
        assert frozen.used_sectors == head_before
        assert frozen.lba_start == 0
        assert journal.active_head_sectors == 0
        assert len(journal.active_jmt) == 0
        # New writes land in the second half.
        commit2 = journal.submit(request(2))
        run_until(sim, commit2)
        assert commit2.value.journal_lba >= 32

    def test_double_freeze_rejected(self):
        sim, _ssd, journal = make_setup()
        commit = journal.submit(request(1))
        run_until(sim, commit)
        journal.freeze()
        with pytest.raises(EngineError):
            journal.freeze()

    def test_release_without_freeze_rejected(self):
        _sim, _ssd, journal = make_setup()
        with pytest.raises(EngineError):
            journal.release_frozen()

    def test_release_clears_frozen_jmt(self):
        sim, _ssd, journal = make_setup()
        commit = journal.submit(request(1))
        run_until(sim, commit)
        frozen = journal.freeze()
        journal.release_frozen()
        assert len(frozen.jmt) == 0
        assert journal.frozen is None

    def test_full_half_stalls_until_freeze(self):
        # Half = 8 sectors; each txn (one 200 B log) takes 1 sector.
        sim, ssd, journal = make_setup(total_sectors=16, group_commit_ns=100)
        commits = []
        for k in range(8):
            commits.append(journal.submit(request(k)))
            run_until(sim, commits[-1])
        stalled = journal.submit(request(99))
        # Drive time forward: the commit cannot complete yet.
        sim.schedule(200_000, lambda: None)
        sim.run()
        assert not stalled.triggered
        assert ssd.stats.value("journal.full_stalls") >= 1
        journal.freeze()  # rotates to the empty half
        run_until(sim, stalled)
        assert stalled.value.committed


class TestAlignedJournalWrites:
    def test_aligned_formatter_writes_aligned_transactions(self):
        sim, _ssd, journal = make_setup(
            formatter=SectorAlignedFormatter(mapping_size=512))
        commit = journal.submit(request(1, size=512))
        run_until(sim, commit)
        entry = commit.value
        assert entry.journal_lba % 1 == 0
        assert entry.exclusive_sectors

    def test_txn_alignment_respected(self):
        sim, _ssd, journal = make_setup(mapping_unit=512)
        journal.config = JournalConfig(lba_start=0, total_sectors=64,
                                       group_commit_ns=1_000,
                                       txn_align_sectors=8)
        first = journal.submit(request(1))
        run_until(sim, first)
        second = journal.submit(request(2))
        run_until(sim, second)
        assert second.value.journal_lba % 8 == 0
