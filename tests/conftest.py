"""Shared fixtures for the system-level tests.

The ``test_system*`` files all build the same tiny-device system and
drive it with the same step loop; these fixtures keep that boilerplate
in one place.  Config-only unit tests keep importing ``tiny_config``
directly — the fixtures are for tests that *run* a system.
"""

from __future__ import annotations

import pytest

from repro.sim import spawn
from repro.system import KvSystem, run_config, tiny_config


@pytest.fixture
def make_system():
    """Factory: a :class:`KvSystem` on the tiny test device.

    Keyword arguments are forwarded to :func:`tiny_config`.
    """
    def _make(**overrides) -> KvSystem:
        return KvSystem(tiny_config(**overrides))
    return _make


@pytest.fixture
def started_system(make_system):
    """Factory: a tiny system already loaded with every engine started."""
    def _make(**overrides) -> KvSystem:
        system = make_system(**overrides)
        system.load()
        for tenant in system.tenants:
            tenant.engine.start()
        return system
    return _make


@pytest.fixture
def run_tiny():
    """Factory: run a full tiny-scale workload, returning its RunResult."""
    def _run(**overrides):
        return run_config(tiny_config(**overrides))
    return _run


@pytest.fixture
def drive():
    """Step a system's simulator until the given client generator is done.

    Spawns ``generator`` on ``system.sim``, steps to completion and
    asserts the process neither starved nor raised.  Returns the
    finished process.
    """
    def _drive(system: KvSystem, generator, name: str = "test-client"):
        proc = spawn(system.sim, generator, name=name)
        while not proc.triggered:
            assert system.sim.step(), "simulation starved"
        assert proc.ok, proc.exception
        return proc
    return _drive
