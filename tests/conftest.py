"""Shared fixtures for the system-level tests.

The ``test_system*`` files all build the same tiny-device system and
drive it with the same step loop; these fixtures keep that boilerplate
in one place.  Config-only unit tests keep importing ``tiny_config``
directly — the fixtures are for tests that *run* a system.

Also home to the shared scale/config constants several files used to
define for themselves (``MICRO``, ``TWO_TENANTS``, ``summaries``) —
``tests`` is a package, so ``from tests.conftest import MICRO`` works.
"""

from __future__ import annotations

import json

import pytest

from repro.common.units import MIB
from repro.experiments import ExperimentScale
from repro.sim import spawn
from repro.system import KvSystem, TenantSpec, run_config, tiny_config

MICRO = ExperimentScale(name="micro", queries=1_800, keys=512, threads=4,
                        thread_sweep=(2, 4))
"""Smallest scale the experiment harness runs end to end — the smoke
scale for ``test_experiments.py`` and the overload battery."""

TWO_TENANTS = dict(journal_area_bytes=1 * MIB, num_keys=128,
                   total_queries=600,
                   tenants=(TenantSpec(), TenantSpec()))
"""Canonical two-tenant tiny config (``test_system_tenants.py`` et al)."""


def summaries(result):
    """Byte-stable fingerprint of a run: aggregate + per-tenant metrics."""
    return json.dumps(
        [result.metrics.summary()] +
        [[tenant.name, tenant.metrics.summary()]
         for tenant in result.tenants],
        sort_keys=True)


@pytest.fixture
def make_system():
    """Factory: a :class:`KvSystem` on the tiny test device.

    Keyword arguments are forwarded to :func:`tiny_config`.
    """
    def _make(**overrides) -> KvSystem:
        return KvSystem(tiny_config(**overrides))
    return _make


@pytest.fixture
def started_system(make_system):
    """Factory: a tiny system already loaded with every engine started."""
    def _make(**overrides) -> KvSystem:
        system = make_system(**overrides)
        system.load()
        for tenant in system.tenants:
            tenant.engine.start()
        return system
    return _make


@pytest.fixture
def run_tiny():
    """Factory: run a full tiny-scale workload, returning its RunResult."""
    def _run(**overrides):
        return run_config(tiny_config(**overrides))
    return _run


@pytest.fixture
def drive():
    """Step a system's simulator until the given client generator is done.

    Spawns ``generator`` on ``system.sim``, steps to completion and
    asserts the process neither starved nor raised.  Returns the
    finished process.
    """
    def _drive(system: KvSystem, generator, name: str = "test-client"):
        proc = spawn(system.sim, generator, name=name)
        while not proc.triggered:
            assert system.sim.step(), "simulation starved"
        assert proc.ok, proc.exception
        return proc
    return _drive


@pytest.fixture
def open_loop_config():
    """Factory: a tiny config driven by open-loop arrivals + admission.

    ``rate`` is the offered load (ops/s); admission keyword arguments
    (``policy``, ``max_inflight``, ``max_waiting``) configure the front
    door; everything else is forwarded to :func:`tiny_config`.  The
    returned config runs through the ordinary ``run_config`` /
    ``KvSystem`` path — the open-loop dispatch is selected by the
    ``arrivals`` field.
    """
    from repro.engine.admission import AdmissionConfig
    from repro.workload.arrivals import ArrivalSpec

    def _make(rate: float = 100_000.0, process: str = "poisson",
              schedule: str = "constant", policy: str = "queue",
              max_inflight: int = 8, max_waiting: int = 32,
              **overrides):
        overrides.setdefault("total_queries", 800)
        return tiny_config(
            arrivals=ArrivalSpec(rate_ops_per_sec=rate, process=process,
                                 schedule=schedule),
            admission=AdmissionConfig(policy=policy,
                                      max_inflight=max_inflight,
                                      max_waiting=max_waiting),
            **overrides)
    return _make
