"""Telemetry pipeline: registry, sampler, watchdogs, export, overhead.

The tentpole invariants:

* a sampled run covers every instrumented layer with per-tenant and
  aggregate series;
* SLO watchdogs are edge-triggered with debounce;
* the JSONL dump round-trips through the validator;
* telemetry is **zero overhead when disabled** — the counter snapshots
  of a sampled and an unsampled run are byte-identical.
"""

import json

import pytest

from repro.common.errors import ConfigError
from repro.common.units import MS
from repro.sim.core import Simulator
from repro.system.config import tiny_config
from repro.system.system import KvSystem, run_config
from repro.telemetry import (
    DegradedEntryWatchdog,
    MetricRegistry,
    Series,
    TelemetryConfig,
    ThresholdWatchdog,
    WatchdogBank,
    clear_samplers,
    collected_samplers,
    disable_telemetry,
    enable_telemetry,
    telemetry_enabled,
    validate_telemetry_file,
    write_telemetry_jsonl,
)
from repro.telemetry.names import phase_totals, queue_split, safe_ratio
from repro.telemetry.sampler import TelemetrySampler


def sampled_config(**overrides):
    overrides.setdefault(
        "telemetry", TelemetryConfig(interval_ns=100_000))
    return tiny_config(**overrides)


class TestNamesHelpers:
    def test_safe_ratio(self):
        assert safe_ratio(6, 3) == 2.0
        assert safe_ratio(1, 0) == 0.0
        assert safe_ratio(1, 0, default=float("inf")) == float("inf")

    def test_safe_ratio_is_reexported_from_system_metrics(self):
        from repro.system.metrics import safe_ratio as canonical
        assert canonical is safe_ratio

    def test_phase_totals_sums_across_checkpoints(self):
        ckpts = [{"phases": {"cow_remap": 5, "data_write": 2}},
                 {"phases": {"cow_remap": 3}}]
        assert phase_totals(ckpts) == {"cow_remap": 8, "data_write": 2}

    def test_queue_split_groups_by_component(self):
        class Stat:
            def __init__(self, q, s):
                self.queue_ns, self.service_ns = q, s
        stats = {("ftl", "read"): Stat(5, 10),
                 ("ftl", "write"): Stat(1, 2),
                 ("flash", "program"): Stat(0, 7)}
        split = queue_split(stats)
        assert split["ftl"] == {"queue_ns": 6, "service_ns": 12}
        assert split["flash"] == {"queue_ns": 0, "service_ns": 7}


class TestRegistry:
    def test_duplicate_probe_rejected(self):
        registry = MetricRegistry()
        registry.counter("x", "engine", lambda: 0)
        with pytest.raises(ConfigError):
            registry.counter("x", "engine", lambda: 1)

    def test_tenant_scopes_are_distinct(self):
        registry = MetricRegistry()
        registry.counter("x", "engine", lambda: 1)
        registry.counter("x", "engine", lambda: 2, tenant="t0")
        values = registry.sample()
        assert values[("", "x")] == 1
        assert values[("t0", "x")] == 2

    def test_series_ring_is_bounded(self):
        series = Series(name="x", layer="engine", kind="gauge",
                        tenant="", maxlen=4)
        for i in range(10):
            series.append(i, float(i))
        assert len(series) == 4
        assert series.values() == [6.0, 7.0, 8.0, 9.0]


class TestWatchdogs:
    def test_threshold_fires_and_clears_once(self):
        dog = ThresholdWatchdog("wd", "m", threshold=10.0)
        bank = WatchdogBank()
        bank.add(dog)
        edges = []
        for t, value in enumerate([5, 11, 12, 12, 5, 5, 11]):
            edges += bank.evaluate(t, {("", "m"): float(value)})
        kinds = [(e.kind, e.t_ns) for e in edges]
        assert kinds == [("fired", 1), ("cleared", 4), ("fired", 6)]

    def test_consecutive_debounce(self):
        dog = ThresholdWatchdog("wd", "m", threshold=10.0, consecutive=3)
        bank = WatchdogBank()
        bank.add(dog)
        edges = []
        for t, value in enumerate([11, 11, 5, 11, 11, 11]):
            edges += bank.evaluate(t, {("", "m"): float(value)})
        assert [(e.kind, e.t_ns) for e in edges] == [("fired", 5)]

    def test_degraded_entry_is_terminal(self):
        bank = WatchdogBank()
        bank.add(DegradedEntryWatchdog())
        edges = []
        for t, value in enumerate([0.0, 1.0, 1.0, 0.0]):
            edges += bank.evaluate(t, {("", "ftl.degraded"): value})
        assert [(e.kind, e.severity) for e in edges] == \
            [("fired", "error")]


class TestSampledRun:
    @pytest.fixture(scope="class")
    def run(self):
        return run_config(sampled_config())

    def test_layers_covered(self, run):
        layers = set(run.telemetry.layers_covered())
        assert {"engine", "journal", "checkpoint", "ftl", "gc",
                "flash", "host"} <= layers

    def test_at_least_eight_distinct_metrics(self, run):
        names = {series.name for series in run.telemetry.all_series()}
        assert len(names) >= 8

    def test_counters_are_monotonic(self, run):
        ops = run.telemetry.get("engine.ops").values()
        assert ops == sorted(ops)
        assert ops[-1] == run.metrics.operations

    def test_health_frames_recorded(self, run):
        assert len(run.telemetry.health.frames) > 0
        report = run.telemetry.health_report()
        assert report["spare_remaining"] >= 0
        assert report["degraded"] is False

    def test_sampler_daemon_stopped_at_teardown(self, run):
        # the run() drain completed, so the daemon cannot still be alive
        assert run.telemetry._process is None


class TestJsonlExport:
    def test_roundtrip_validates(self, tmp_path):
        run = run_config(sampled_config())
        path = tmp_path / "telemetry.jsonl"
        count = write_telemetry_jsonl(str(path), run.telemetry)
        assert count == len(path.read_text().splitlines())
        assert validate_telemetry_file(str(path)) == []

    def test_validator_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert validate_telemetry_file(str(bad))
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert validate_telemetry_file(str(empty)) == \
            ["empty telemetry file"]

    def test_validator_catches_footer_mismatch(self, tmp_path):
        run = run_config(sampled_config())
        path = tmp_path / "telemetry.jsonl"
        write_telemetry_jsonl(str(path), run.telemetry)
        lines = path.read_text().splitlines()
        footer = json.loads(lines[-1])
        footer["series"] += 1
        lines[-1] = json.dumps(footer)
        path.write_text("\n".join(lines) + "\n")
        assert any("footer" in p
                   for p in validate_telemetry_file(str(path)))


class TestZeroOverhead:
    """Sampling only reads state: snapshots must be byte-identical."""

    def snapshots(self, config):
        system = KvSystem(config)
        system.run()
        return (json.dumps(system.ssd.stats.snapshot(), sort_keys=True),
                json.dumps(system.ssd.stats.snapshot_bytes(),
                           sort_keys=True))

    def test_sampled_run_does_not_perturb_counters(self):
        plain = self.snapshots(tiny_config())
        sampled = self.snapshots(sampled_config())
        assert plain == sampled

    def test_disabled_telemetry_builds_no_sampler(self):
        run = run_config(tiny_config())
        assert run.telemetry is None


class TestGlobalSwitch:
    def test_switch_wires_sampler_into_plain_config(self):
        clear_samplers()
        enable_telemetry(TelemetryConfig(interval_ns=1 * MS))
        try:
            assert telemetry_enabled()
            run = run_config(tiny_config())
            assert run.telemetry is not None
            assert run.telemetry.samples > 0
        finally:
            disable_telemetry()
            assert not telemetry_enabled()
        labels = [label for label, _ in collected_samplers()]
        assert labels and labels[0] == run.config.mode
        clear_samplers()

    def test_labels_are_uniquified(self):
        clear_samplers()
        enable_telemetry(TelemetryConfig(interval_ns=1 * MS))
        try:
            first = run_config(tiny_config())
            second = run_config(tiny_config())
        finally:
            disable_telemetry()
        labels = [label for label, _ in collected_samplers()]
        assert first.telemetry.label != second.telemetry.label
        assert len(set(labels)) == len(labels)
        clear_samplers()


class TestManualSampler:
    def test_sample_once_without_process(self):
        registry = MetricRegistry()
        state = {"v": 0.0}
        registry.gauge("g", "engine", lambda: state["v"])
        sim = Simulator()
        sampler = TelemetrySampler(sim, registry)
        sampler.sample_once()
        state["v"] = 3.0
        sampler.sample_once()
        assert sampler.get("g").values() == [0.0, 3.0]
        assert sampler.samples == 2
