"""The ``repro-incident/v1`` forensics bundle and its CLI.

One gated, traced, blamed, flight-recorded run feeds most tests (the
bundle is deterministic, so the expensive simulation runs once per
module).  The contract under test is the acceptance chain: the bundle
validates, every flight-recorder span id resolves both in-bundle and
against the full trace dump, the reconstructed timeline interleaves
planes in causal order, and the dominant blame stage under the gate is
``ckpt_freeze_stall``.
"""

from __future__ import annotations

import json

import pytest

from repro.common.jsonl import UnknownSchemaError, read_json
from repro.common.units import MS
from repro.obs import (
    build_timeline,
    dominant_stage,
    incident_records,
    load_incident_file,
    pair_incident_records,
    resolve_against_trace,
    timeline_table,
    validate_incident_file,
    write_incident_jsonl,
)
from repro.system import KvSystem, tiny_config
from repro.telemetry import TelemetryConfig
from repro.trace import write_chrome_trace


@pytest.fixture(scope="module")
def gated_system():
    """One gated burst-prone run with every observability plane armed."""
    system = KvSystem(tiny_config(
        flightrec=True, trace=True, blame=True,
        lock_queries_during_checkpoint=True,
        telemetry=TelemetryConfig(interval_ns=1 * MS)))
    system.telemetry.watchdogs.escalate("checkpoint_overdue")
    system.run()
    return system


@pytest.fixture(scope="module")
def records(gated_system):
    return incident_records(gated_system)


class TestBundle:
    def test_bundle_validates(self, records, tmp_path):
        path = tmp_path / "incident.jsonl"
        count = write_incident_jsonl(str(path), records)
        assert count == len(records)
        assert validate_incident_file(str(path)) == []

    def test_header_names_schema_and_trigger(self, records):
        header = records[0]
        assert header["type"] == "header"
        assert header["schema"] == "repro-incident/v1"
        assert header["flight_events"] > 0

    def test_flight_span_ids_resolve_in_bundle(self, records):
        spans = {record["span_id"] for record in records
                 if record["type"] == "span"}
        referenced = {record["span_id"] for record in records
                      if record["type"] == "flight"
                      and record["span_id"] is not None}
        assert referenced, "gated traced run must link spans"
        assert referenced <= spans

    def test_flight_span_ids_resolve_in_trace_dump(
            self, gated_system, records, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path),
                           [("gated", gated_system.sim.tracer)])
        document, problems = read_json(str(path))
        assert problems == []
        assert resolve_against_trace(records, document) == []

    def test_unresolvable_span_id_is_reported(self, records):
        assert resolve_against_trace(records, {"traceEvents": []})

    def test_blame_names_gated_tail_stage(self, records):
        assert dominant_stage(records) == "ckpt_freeze_stall"

    def test_series_bracket_trigger_window(self, gated_system, records):
        header = records[0]
        trigger_t = header["trigger_t_ns"]
        assert trigger_t is not None
        window = header["window_ns"]
        for record in records:
            if record["type"] == "series":
                for t_ns, _value in record["points"]:
                    assert trigger_t - window <= t_ns <= trigger_t + window

    def test_health_frame_embedded(self, records):
        assert any(record["type"] == "health" for record in records)

    def test_validator_flags_dangling_span_link(self, records, tmp_path):
        broken = [dict(record) for record in records]
        for record in broken:
            if record["type"] == "flight" and record["span_id"] is not None:
                record["span_id"] = 999_999_999
                break
        path = tmp_path / "broken.jsonl"
        write_incident_jsonl(str(path), broken)
        problems = validate_incident_file(str(path))
        assert any("does not resolve" in problem for problem in problems)

    def test_loader_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text(json.dumps(
            {"type": "header", "schema": "repro-blame/v1"}) + "\n")
        with pytest.raises(UnknownSchemaError) as info:
            load_incident_file(str(path))
        assert info.value.found == "repro-blame/v1"
        assert info.value.expected == "repro-incident/v1"


class TestTimeline:
    def test_rows_sorted_by_merged_time(self, records):
        rows = build_timeline(records)
        assert rows
        assert [row[0] for row in rows] == \
            sorted(row[0] for row in rows)

    def test_planes_interleave(self, records):
        planes = {row[2] for row in build_timeline(records)}
        assert "flight" in planes
        assert "TRIGGER" in planes

    def test_table_names_trigger_and_stage(self, records):
        table = timeline_table(records)
        assert "trigger watchdog_error" in table
        assert "ckpt_freeze_stall" in table


class TestPairBundle:
    @pytest.fixture(scope="class")
    def pair_records(self):
        from repro.common.rng import SeededRng
        from repro.replication.campaign import campaign_config
        from repro.replication.replica import ReplicatedPair
        config = campaign_config(ops=120, flightrec=True)
        pair = ReplicatedPair(config)
        pair.start()
        pair.run_workload(kill_step=80)
        pair.kill_primary(SeededRng(7).fork("incident-test"))
        pair.promote()
        return pair_incident_records(pair)

    def test_pair_bundle_validates(self, pair_records, tmp_path):
        path = tmp_path / "pair.jsonl"
        write_incident_jsonl(str(path), pair_records)
        assert validate_incident_file(str(path)) == []

    def test_both_nodes_and_repl_record_present(self, pair_records):
        nodes = {record.get("node") for record in pair_records
                 if record["type"] == "flight"}
        assert "replica" in nodes
        assert any(record["type"] == "repl" for record in pair_records)

    def test_crash_and_promote_triggers(self, pair_records):
        reasons = {record["reason"] for record in pair_records
                   if record["type"] == "trigger"}
        assert {"crash", "promote"} <= reasons

    def test_timeline_annotates_ship_lag(self, pair_records):
        rows = build_timeline(pair_records)
        repl_rows = [row for row in rows
                     if row[2] == "flight" and row[3].startswith("repl.")]
        assert repl_rows
        assert any("ship_lag=" in row[4] for row in repl_rows)


class TestCli:
    def test_incident_run_validate_and_show(self, tmp_path, capsys):
        from repro.__main__ import main
        bundle = tmp_path / "nested" / "dir" / "incident.jsonl"
        trace = tmp_path / "nested" / "trace.json"
        code = main(["incident", "--gate", "--queries", "600",
                     "--escalate", "checkpoint_overdue",
                     "--out", str(bundle), "--trace-out", str(trace),
                     "--assert-stage", "ckpt_freeze_stall"])
        assert code == 0
        assert bundle.exists() and trace.exists()
        assert main(["incident", "--validate", str(bundle)]) == 0
        assert main(["incident", "--show", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "dominant blame stage: ckpt_freeze_stall" in out

    def test_incident_assert_trigger_fails_quiet_run(self, capsys):
        from repro.__main__ import main
        # No gate, no escalation, tiny run: nothing trips.
        code = main(["incident", "--queries", "300", "--escalate", "",
                     "--assert-trigger"])
        capsys.readouterr()
        assert code == 1

    def test_validate_rejects_truncated_bundle(self, tmp_path, capsys):
        from repro.__main__ import main
        path = tmp_path / "trunc.jsonl"
        path.write_text(json.dumps(
            {"type": "header", "schema": "repro-incident/v1",
             "label": "x", "node": None, "triggers": 0,
             "flight_events": 0, "window_ns": 0, "trigger_t_ns": None,
             "trigger_reason": None}) + "\n")
        code = main(["incident", "--validate", str(path)])
        capsys.readouterr()
        assert code == 1
