"""Unit tests for the engine facade pieces: memory cache, gate, config."""

import pytest

from repro.common.errors import ConfigError
from repro.engine import EngineConfig, MemoryCache


class TestMemoryCache:
    def test_miss_then_hit(self):
        cache = MemoryCache(4)
        assert cache.lookup(1) is None
        cache.insert(1, 3)
        assert cache.lookup(1) == 3
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self):
        cache = MemoryCache(2)
        cache.insert(1, 1)
        cache.insert(2, 1)
        cache.lookup(1)
        cache.insert(3, 1)  # evicts 2
        assert cache.lookup(2) is None
        assert cache.lookup(1) == 1

    def test_zero_capacity(self):
        cache = MemoryCache(0)
        cache.insert(1, 1)
        assert cache.lookup(1) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            MemoryCache(-1)

    def test_hit_ratio(self):
        cache = MemoryCache(4)
        cache.insert(1, 1)
        cache.lookup(1)
        cache.lookup(2)
        assert cache.hit_ratio() == pytest.approx(0.5)
        assert MemoryCache(4).hit_ratio() == 0.0

    def test_version_refresh(self):
        cache = MemoryCache(4)
        cache.insert(1, 1)
        cache.insert(1, 5)
        assert cache.lookup(1) == 5


class TestEngineConfigProperties:
    def test_mode_flags(self):
        baseline = EngineConfig(mode="baseline")
        assert not baseline.uses_in_storage_checkpoint
        assert not baseline.uses_aligned_journaling
        assert not baseline.device_allow_remap

        isc_b = EngineConfig(mode="isc_b")
        assert isc_b.uses_in_storage_checkpoint
        assert not isc_b.device_allow_remap

        isc_c = EngineConfig(mode="isc_c", mapping_unit=512)
        assert isc_c.device_allow_remap
        assert not isc_c.uses_aligned_journaling

        checkin = EngineConfig(mode="checkin", mapping_unit=512)
        assert checkin.uses_aligned_journaling
        assert checkin.device_allow_remap

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            EngineConfig(mode="turbo")

    def test_region_validation(self):
        with pytest.raises(ConfigError):
            EngineConfig(journal_sectors=0)
