"""The fault-injection harness: torn writes, invariants, crash sweeps."""

import pytest

from repro.common.errors import FlashError, FtlError
from repro.engine.recovery import peek_sector_tags
from repro.fault import (
    assert_ftl_invariants,
    check_ftl_invariants,
    fault_sweep,
    power_cut,
    recover_device,
)
from repro.fault.harness import _start, _sweep_config
from repro.flash.array import FlashArray
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FlashTiming
from repro.ftl.ftl import FtlConfig
from repro.sim import Simulator, spawn
from repro.ssd.commands import Command, Op
from repro.ssd.ssd import Ssd, SsdSpec


class FixedRng:
    """Stub rng whose randint always returns a fixed value."""

    def __init__(self, value):
        self.value = value

    def randint(self, low, high):
        return max(low, min(high, self.value))


def small_array(sim):
    return FlashArray(sim, FlashGeometry(channels=1, packages_per_channel=1,
                                         dies_per_package=1, planes_per_die=1,
                                         blocks_per_plane=4,
                                         pages_per_block=4),
                      FlashTiming())


class TestTornWrites:
    def _start_program(self, sim, array):
        data = {0: "a", 1: "b"}
        oob = [("x", 1), ("y", 2)]
        proc = spawn(sim, array.program_page(0, data, oob), name="pgm")
        while 0 not in array._inflight_programs:
            assert sim.step()
        return proc

    def test_power_cut_tears_inflight_program(self):
        sim = Simulator()
        array = small_array(sim)
        self._start_program(sim, array)
        torn = array.power_cut(FixedRng(1))  # keep only the first unit
        assert torn == [0]
        block = array.block(0)
        assert block.oob(0) == [("x", 1), None]
        assert block.data(0) == {0: "a"}

    def test_fully_surviving_program_is_not_torn(self):
        sim = Simulator()
        array = small_array(sim)
        self._start_program(sim, array)
        assert array.power_cut(FixedRng(2)) == []  # all units survive
        assert array.block(0).oob(0) == [("x", 1), ("y", 2)]

    def test_completed_program_is_never_torn(self):
        sim = Simulator()
        array = small_array(sim)
        proc = self._start_program(sim, array)
        while not proc.triggered:
            assert sim.step()
        assert array._inflight_programs == {}
        assert array.power_cut(FixedRng(0)) == []

    def test_corrupt_requires_written_page(self):
        sim = Simulator()
        array = small_array(sim)
        with pytest.raises(FlashError):
            array.block(0).corrupt(0, None, None)


class TestInvariants:
    def _system(self, mode="checkin"):
        from repro.system import KvSystem
        system = KvSystem(_sweep_config(mode, seed=5, num_keys=32))
        system.load()
        return system

    def test_clean_after_load(self):
        system = self._system()
        assert check_ftl_invariants(system.ssd.ftl) == []

    def test_detects_valid_count_drift(self):
        system = self._system()
        mapping = system.ssd.ftl.mapping
        block = next(iter(mapping.valid_counts()))
        mapping._valid_per_block[block] += 1
        violations = check_ftl_invariants(system.ssd.ftl)
        assert any("valid-count" in v for v in violations)
        with pytest.raises(FtlError):
            assert_ftl_invariants(system.ssd.ftl)

    def test_detects_stale_reverse_entry(self):
        system = self._system()
        mapping = system.ssd.ftl.mapping
        lpn, upa = next(mapping.items())
        del mapping._l2p[lpn]  # forward entry gone, reverse entry stale
        violations = check_ftl_invariants(system.ssd.ftl)
        assert any("upa" in v for v in violations)

    def test_detects_mapping_to_unwritten_page(self):
        system = self._system()
        ftl = system.ssd.ftl
        # Map an LPN onto a unit of a block nothing was programmed to.
        free_block = next(b for b in range(ftl.geometry.total_blocks)
                          if ftl.array.block(b).write_pointer == 0)
        upa = free_block * ftl.mapping.units_per_block
        ftl.mapping.map(999_999, upa)
        violations = check_ftl_invariants(ftl)
        assert any("unwritten page" in v for v in violations)


class TestHandoffWindow:
    def test_coalescer_handoff_remains_durable(self):
        """Regression: a full unit popped from the capacitor-backed
        coalescer was invisible to recovery until its FTL staging write
        completed — a power cut in that window lost acknowledged data."""
        sim = Simulator()
        ssd = Ssd(sim, SsdSpec(ftl=FtlConfig(mapping_unit=4096)))
        spu = ssd.ftl.sectors_per_unit
        tags = [f"t{i}" for i in range(spu)]
        done = ssd.submit(Command(op=Op.WRITE, lba=0, nsectors=spu, tags=tags))
        hit_window = False
        while not done.triggered:
            assert sim.step()
            if ssd.controller._in_transit and ssd.ftl.mapping.lookup(0) is None:
                # Popped from the coalescer but not yet staged: the exact
                # window the regression guards.
                assert peek_sector_tags(ssd, 0, spu) == tags
                hit_window = True
        assert hit_window
        assert ssd.controller._in_transit == {}


class TestSweep:
    @pytest.mark.parametrize("mode", ["baseline", "isc_c", "checkin"])
    def test_small_sweep_passes(self, mode):
        sweep = fault_sweep(mode=mode, crash_points=6, seed=13, ops=90)
        assert sweep.total_steps > 0
        assert sweep.ok, sweep.failures()[0]

    def test_sweep_is_deterministic(self):
        first = fault_sweep(mode="checkin", crash_points=5, seed=21, ops=80)
        second = fault_sweep(mode="checkin", crash_points=5, seed=21, ops=80)
        assert [r.crash_step for r in first.results] == \
            [r.crash_step for r in second.results]
        assert first.digest() == second.digest()

    def test_crashes_destroy_live_state(self):
        """The sweep must not be vacuous: plugs are pulled while processes
        run and while programs are mid-pulse."""
        sweep = fault_sweep(mode="checkin", crash_points=8, seed=5, ops=90)
        assert any(r.report.killed_processes for r in sweep.results)
        assert any(r.report.torn_pages for r in sweep.results)
        assert any(r.acked_keys for r in sweep.results)

    def test_crash_mid_checkpoint_recovers(self):
        """Force the crash into a running checkpoint specifically."""
        config = _sweep_config("checkin", seed=9, num_keys=64)
        system, (acked,), (proc,), ckpt_violations = _start(config, 120, 40)
        from repro.common.rng import SeededRng
        while not system.engine.checkpoint_running:
            assert system.sim.step()
        assert not proc.triggered
        from repro.engine.recovery import check_durability
        acked_now = dict(acked)
        current = {r.key: r.version for r in system.engine.kvmap.records()}
        before = system.ssd.ftl.mapping.snapshot()
        power_cut(system, SeededRng(9).fork("mid-ckpt"))
        rebuilt = recover_device(system)
        assert rebuilt == before
        assert check_ftl_invariants(system.ssd.ftl) == []
        assert ckpt_violations == []
        check_durability(system.engine, acked_now, current)

    def test_harness_detects_planted_capacitor_loss(self):
        """Sensitivity check: if the capacitor-backed staging buffer were
        volatile, the sweep's checks must notice."""
        config = _sweep_config("checkin", seed=17, num_keys=64)
        system, (acked,), (proc,), _ = _start(config, 120, 40)
        from repro.common.rng import SeededRng
        ftl = system.ssd.ftl
        while not (acked and any(oob for oob in ftl._staged_oob.values())):
            assert system.sim.step()
        before = ftl.mapping.snapshot()
        power_cut(system, SeededRng(17).fork("tear"))
        ftl._staged_tags.clear()  # the planted fault: no capacitor
        ftl._staged_oob.clear()
        rebuilt = recover_device(system)
        assert rebuilt != before


class TestTenantSweep:
    @pytest.mark.parametrize("mode", ["baseline", "checkin"])
    def test_two_tenant_sweep_passes(self, mode):
        sweep = fault_sweep(mode=mode, crash_points=4, seed=13, ops=60,
                            tenants=2)
        assert sweep.ok, sweep.failures()[0]
        # Every crash point verified both tenants' recovered states.
        for result in sweep.results:
            assert result.recovered_digest.count("+") == 1

    def test_two_tenant_sweep_is_deterministic(self):
        first = fault_sweep(mode="checkin", crash_points=3, seed=21,
                            ops=60, tenants=2)
        second = fault_sweep(mode="checkin", crash_points=3, seed=21,
                             ops=60, tenants=2)
        assert first.digest() == second.digest()

    def test_two_tenant_start_runs_one_client_each(self):
        config = _sweep_config("checkin", seed=9, num_keys=64, tenants=2)
        system, ackeds, procs, _ = _start(config, 60, 20)
        assert len(system.tenants) == len(ackeds) == len(procs) == 2
        assert system.ssd.namespaces is not None
        while not all(proc.triggered for proc in procs):
            assert system.sim.step()
        # Both tenants made progress against disjoint namespaces.
        assert all(ackeds)
        from repro.fault.invariants import check_namespace_isolation
        assert check_namespace_isolation(system.ssd.ftl) == []
