"""Per-tenant telemetry isolation on a namespaced (multi-tenant) device.

Two invariants:

* **additivity** — for every metric in ``ADDITIVE_METRICS`` the
  per-tenant series sum *pointwise* to the aggregate series (they are
  sampled at the same instant from the same registry pass);
* **isolation** — a tenant that finished its workload shows flat
  engine/checkpoint series while the other tenant's checkpoint storm is
  in full swing.
"""

from repro.common.units import KIB, MIB, MS
from repro.system.config import TenantSpec, tiny_config
from repro.system.system import run_config
from repro.telemetry import ADDITIVE_METRICS, TelemetryConfig


def two_tenant_run(quiet_queries=150, busy_queries=4_000):
    config = tiny_config(
        tenants=(
            TenantSpec(name="quiet", total_queries=quiet_queries,
                       checkpoint_interval_ns=1_000 * MS),
            TenantSpec(name="busy", total_queries=busy_queries,
                       checkpoint_interval_ns=2 * MS,
                       checkpoint_journal_quota=64 * KIB),
        ),
        total_queries=busy_queries,
        journal_area_bytes=4 * MIB,
        telemetry=TelemetryConfig(interval_ns=100_000),
    )
    return run_config(config)


class TestAdditivity:
    def test_per_tenant_series_sum_to_aggregate(self):
        run = two_tenant_run()
        sampler = run.telemetry
        assert sampler.registry.tenants() == ["", "busy", "quiet"]
        for metric in ADDITIVE_METRICS:
            aggregate = sampler.get(metric)
            quiet = sampler.get(metric, "quiet")
            busy = sampler.get(metric, "busy")
            assert len(aggregate) == len(quiet) == len(busy) > 0
            for (t0, total), (t1, a), (t2, b) in zip(
                    aggregate.points, quiet.points, busy.points):
                assert t0 == t1 == t2
                assert abs(total - (a + b)) < 1e-9, \
                    f"{metric} not additive at t={t0}"

    def test_final_ops_match_run_metrics(self):
        run = two_tenant_run()
        sampler = run.telemetry
        assert sampler.get("engine.ops").last() == \
            run.metrics.operations
        for tenant in run.tenants:
            assert sampler.get("engine.ops", tenant.name).last() == \
                tenant.operations


class TestIsolation:
    def test_quiesced_tenant_stays_flat_during_checkpoint_storm(self):
        run = two_tenant_run()
        sampler = run.telemetry
        quiet_ops = sampler.get("engine.ops", "quiet")
        busy_ckpts = sampler.get("checkpoint.count", "busy")

        # the quiet tenant finished its handful of queries early …
        done_value = quiet_ops.last()
        assert done_value == run.tenant("quiet").operations
        done_index = quiet_ops.values().index(done_value)
        tail = quiet_ops.values()[done_index:]
        assert len(tail) > 10, "run too short to observe the tail"
        assert set(tail) == {done_value}, \
            "quiesced tenant's ops series moved after it finished"

        # … while the busy tenant kept checkpointing in that window.
        done_t = quiet_ops.times()[done_index]
        storm = [v for t, v in busy_ckpts.points if t >= done_t]
        assert storm[-1] - storm[0] >= 2, \
            "expected a checkpoint storm on the busy tenant"

        # and the quiet tenant took no checkpoints during the storm
        quiet_ckpts = sampler.get("checkpoint.count", "quiet")
        quiet_storm = [v for t, v in quiet_ckpts.points if t >= done_t]
        assert quiet_storm[-1] - quiet_storm[0] <= 1

    def test_per_tenant_queue_depth_series_exist(self):
        run = two_tenant_run(quiet_queries=100, busy_queries=1_000)
        sampler = run.telemetry
        for name in ("quiet", "busy"):
            series = sampler.get("host.queue_depth", name)
            assert len(series) > 0
