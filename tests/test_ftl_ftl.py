"""Integration tests for the FTL facade: writes, RMW, remap, GC, metadata."""

import pytest

from repro.common.errors import ConfigError
from repro.flash import FlashArray, FlashGeometry, FlashTiming
from repro.ftl import Ftl, FtlConfig
from repro.sim import Simulator, spawn


def make_ftl(mapping_unit=512, blocks=8, pages=4, channels=2, planes=1,
             **config_kwargs):
    sim = Simulator()
    geometry = FlashGeometry(channels=channels, packages_per_channel=1,
                             dies_per_package=1, planes_per_die=planes,
                             blocks_per_plane=blocks, pages_per_block=pages,
                             page_size=4096)
    timing = FlashTiming(read_ns=50_000, program_ns=500_000,
                         erase_ns=3_000_000, channel_bandwidth=10**9,
                         channel_setup_ns=100)
    array = FlashArray(sim, geometry, timing)
    config = FtlConfig(mapping_unit=mapping_unit, **config_kwargs)
    return sim, Ftl(sim, array, config)


def run(sim, generator):
    """Run a generator as a process to completion; return its value."""
    proc = spawn(sim, generator)
    sim.run()
    assert proc.triggered and proc.ok, getattr(proc, "exception", None)
    return proc.value


class TestConfig:
    def test_mapping_unit_must_divide_page(self):
        with pytest.raises(ConfigError):
            make_ftl(mapping_unit=1536)

    def test_mapping_unit_cannot_exceed_page(self):
        with pytest.raises(ConfigError):
            make_ftl(mapping_unit=8192)

    def test_mapping_unit_sector_multiple(self):
        with pytest.raises(ConfigError):
            FtlConfig(mapping_unit=700)

    def test_units_per_page_derived(self):
        _sim, ftl = make_ftl(mapping_unit=512)
        assert ftl.units_per_page == 8
        assert ftl.sectors_per_unit == 1
        _sim, ftl = make_ftl(mapping_unit=4096)
        assert ftl.units_per_page == 1
        assert ftl.sectors_per_unit == 8


class TestWriteRead:
    def test_roundtrip_sector_tags(self):
        sim, ftl = make_ftl(mapping_unit=512)

        def proc():
            yield from ftl.write(10, 3, tags=["a", "b", "c"], stream="data")
            tags = yield from ftl.read(10, 3)
            return tags

        assert run(sim, proc()) == ["a", "b", "c"]

    def test_unmapped_read_returns_none_without_flash(self):
        sim, ftl = make_ftl()

        def proc():
            tags = yield from ftl.read(100, 4)
            return tags

        assert run(sim, proc()) == [None] * 4
        # Only the DFTL map-cache miss touched flash, not user data.
        assert ftl.stats.value("flash.read") == \
            ftl.stats.value("flash.read.map")

    def test_overwrite_returns_latest(self):
        sim, ftl = make_ftl(mapping_unit=512)

        def proc():
            yield from ftl.write(0, 1, tags=["v1"])
            yield from ftl.write(0, 1, tags=["v2"])
            tags = yield from ftl.read(0, 1)
            return tags

        assert run(sim, proc()) == ["v2"]

    def test_out_of_place_updates_accumulate_invalid(self):
        sim, ftl = make_ftl(mapping_unit=512)

        def proc():
            for version in range(8):  # one full page of updates to lba 0
                yield from ftl.write(0, 1, tags=[f"v{version}"])
            yield from ftl.drain()

        run(sim, proc())
        assert ftl.invalid_units() == 7

    def test_read_spanning_staged_and_flashed(self):
        sim, ftl = make_ftl(mapping_unit=512)

        def proc():
            yield from ftl.write(0, 8, tags=[f"s{i}" for i in range(8)])
            yield from ftl.drain()  # first page programmed
            yield from ftl.write(8, 2, tags=["x", "y"])  # staged
            tags = yield from ftl.read(6, 4)
            return tags

        assert run(sim, proc()) == ["s6", "s7", "x", "y"]

    def test_write_tag_length_validated(self):
        sim, ftl = make_ftl()

        def proc():
            yield from ftl.write(0, 2, tags=["only-one"])

        proc_obj = spawn(sim, proc())
        with pytest.raises(Exception):
            sim.run()
        assert proc_obj.triggered


class TestReadModifyWrite:
    """Partial-unit writes with 4 KiB mapping: the paper's internal WA."""

    def test_partial_write_of_mapped_unit_triggers_rmw(self):
        sim, ftl = make_ftl(mapping_unit=4096)

        def proc():
            # Fill one full 8-sector unit, then update 1 sector of it.
            yield from ftl.write(0, 8, tags=[f"s{i}" for i in range(8)])
            yield from ftl.drain()
            yield from ftl.write(2, 1, tags=["NEW"])
            tags = yield from ftl.read(0, 8)
            return tags

        tags = run(sim, proc())
        assert tags == ["s0", "s1", "NEW", "s3", "s4", "s5", "s6", "s7"]
        assert ftl.stats.value("ftl.units.rmw.host") == 1
        assert ftl.stats.value("ftl.rmw_reads") == 1

    def test_partial_write_of_unmapped_unit_no_rmw(self):
        sim, ftl = make_ftl(mapping_unit=4096)

        def proc():
            yield from ftl.write(2, 1, tags=["only"])
            tags = yield from ftl.read(0, 8)
            return tags

        tags = run(sim, proc())
        assert tags[2] == "only"
        assert tags[0] is None
        assert ftl.stats.value("ftl.units.rmw.host") == 0

    def test_no_rmw_with_sector_mapping(self):
        sim, ftl = make_ftl(mapping_unit=512)

        def proc():
            yield from ftl.write(0, 8, tags=[f"s{i}" for i in range(8)])
            yield from ftl.drain()
            yield from ftl.write(2, 1, tags=["NEW"])

        run(sim, proc())
        assert ftl.stats.value("ftl.units.rmw.host") == 0

    def test_rmw_of_staged_unit_avoids_flash_read(self):
        sim, ftl = make_ftl(mapping_unit=4096)

        def proc():
            yield from ftl.write(0, 8, tags=[f"s{i}" for i in range(8)])
            # still staged (page size == unit size -> actually programs);
            # use two-unit page instead: mapping 2048
            return None

        run(sim, proc())

    def test_write_amplification_with_page_mapping(self):
        """512 B host writes through a 4 KiB mapping write 8x the units."""
        sim, ftl = make_ftl(mapping_unit=4096)

        def proc():
            for i in range(4):
                yield from ftl.write(i * 8, 8, tags=None)  # preload 4 units
            yield from ftl.drain()
            for i in range(4):
                yield from ftl.write(i * 8, 1, tags=None)  # 512 B updates

        run(sim, proc())
        # Each small update rewrote a whole 4 KiB unit.
        assert ftl.stats.value("ftl.units.rmw.host") == 4
        assert ftl.stats.bytes("ftl.units.write.host") == 8 * 4096


class TestRemap:
    def test_remap_no_flash_ops(self):
        sim, ftl = make_ftl(mapping_unit=512)

        def proc():
            yield from ftl.write(0, 2, tags=["j0", "j1"])  # journal units
            yield from ftl.drain()
            programs_before = ftl.stats.value("flash.program")
            yield from ftl.remap([(ftl.lpn_of_lba(0), ftl.lpn_of_lba(100)),
                                  (ftl.lpn_of_lba(1), ftl.lpn_of_lba(101))])
            return programs_before

        before = run(sim, proc())
        assert ftl.stats.value("flash.program") == before
        assert ftl.stats.value("ftl.remap.ckpt") == 2

    def test_remap_then_read_from_destination(self):
        sim, ftl = make_ftl(mapping_unit=512)

        def proc():
            yield from ftl.write(0, 1, tags=["journal-data"])
            yield from ftl.remap([(0, 100)])
            tags = yield from ftl.read(100, 1)
            return tags

        assert run(sim, proc()) == ["journal-data"]

    def test_remap_then_trim_source_keeps_destination(self):
        sim, ftl = make_ftl(mapping_unit=512)

        def proc():
            yield from ftl.write(0, 1, tags=["shared"])
            yield from ftl.remap([(0, 100)])
            yield from ftl.trim(0, 1)
            tags = yield from ftl.read(100, 1)
            return tags

        assert run(sim, proc()) == ["shared"]

    def test_copy_range_programs_flash(self):
        sim, ftl = make_ftl(mapping_unit=512)

        def proc():
            yield from ftl.write(0, 8, tags=[f"j{i}" for i in range(8)])
            yield from ftl.drain()
            yield from ftl.copy_range(0, 100, 8)
            yield from ftl.drain()
            tags = yield from ftl.read(100, 8)
            return tags

        tags = run(sim, proc())
        assert tags == [f"j{i}" for i in range(8)]
        assert ftl.stats.value("ftl.units.write.ckpt") == 8


class TestTrim:
    def test_trim_invalidates_whole_units(self):
        sim, ftl = make_ftl(mapping_unit=512)

        def proc():
            yield from ftl.write(0, 4, tags=list("abcd"))
            count = yield from ftl.trim(0, 4)
            tags = yield from ftl.read(0, 4)
            return count, tags

        count, tags = run(sim, proc())
        assert count == 4
        assert tags == [None] * 4

    def test_trim_skips_partial_units(self):
        sim, ftl = make_ftl(mapping_unit=4096)  # 8 sectors per unit

        def proc():
            yield from ftl.write(0, 8, tags=None)
            count = yield from ftl.trim(0, 4)  # half a unit
            return count

        assert run(sim, proc()) == 0


class TestGarbageCollection:
    def test_foreground_gc_reclaims_space(self):
        # 4 blocks x 4 pages x 8 units = tiny device; hammer one lba.
        sim, ftl = make_ftl(mapping_unit=512, blocks=2, channels=2,
                            gc_low_watermark=1, gc_high_watermark=1)
        total_units = ftl.geometry.total_pages * ftl.units_per_page

        def proc():
            for i in range(total_units * 2):
                yield from ftl.write(0, 1, tags=[f"v{i}"])
            tags = yield from ftl.read(0, 1)
            return tags

        tags = run(sim, proc())
        assert tags == [f"v{total_units * 2 - 1}"]
        assert ftl.stats.value("gc.invocations") >= 1
        assert ftl.stats.value("gc.erased_blocks") >= 1

    def test_gc_preserves_shared_units(self):
        sim, ftl = make_ftl(mapping_unit=512, blocks=2, channels=2,
                            gc_low_watermark=1, gc_high_watermark=1)
        total_units = ftl.geometry.total_pages * ftl.units_per_page

        def proc():
            yield from ftl.write(0, 1, tags=["precious"])
            yield from ftl.remap([(0, 200)])
            for i in range(total_units * 2):
                yield from ftl.write(1, 1, tags=[f"junk{i}"])
            a = yield from ftl.read(0, 1)
            b = yield from ftl.read(200, 1)
            return a, b

        a, b = run(sim, proc())
        assert a == ["precious"]
        assert b == ["precious"]
        # After any migration both LPNs still point at one shared unit.
        assert ftl.mapping.lookup(0) == ftl.mapping.lookup(200)

    def test_gc_migration_counts(self):
        sim, ftl = make_ftl(mapping_unit=512, blocks=2, channels=2,
                            gc_low_watermark=1, gc_high_watermark=1)
        total_units = ftl.geometry.total_pages * ftl.units_per_page

        def proc():
            # Keep 4 live keys; churn the rest so victims have few valid units.
            for i in range(4):
                yield from ftl.write(10 + i, 1, tags=[f"live{i}"])
            for i in range(total_units * 2):
                yield from ftl.write(0, 1, tags=[f"hot{i}"])

        run(sim, proc())
        assert ftl.stats.value("gc.invocations") >= 1
        # Live keys survive.
        def check():
            tags = yield from ftl.read(10, 4)
            return tags
        assert run(sim, check()) == ["live0", "live1", "live2", "live3"]


class TestMetadata:
    def test_metadata_persists_after_many_updates(self):
        sim, ftl = make_ftl(mapping_unit=512, blocks=8)

        def proc():
            # 4096/8 = 512 dirty entries per page; 600 updates over 200 lbas
            # keeps live data small while crossing the persist threshold.
            for i in range(600):
                yield from ftl.write(i % 200, 1, tags=None)
            yield from ftl.drain()

        run(sim, proc())
        assert ftl.stats.value("ftl.units.write.meta") > 0

    def test_force_persist(self):
        sim, ftl = make_ftl(mapping_unit=512)

        def proc():
            yield from ftl.write(0, 4, tags=list("abcd"))
            yield from ftl.persist_metadata(force=True)
            yield from ftl.drain()

        run(sim, proc())
        assert ftl.stats.value("ftl.units.write.meta") >= 1
        persisted = ftl.persisted_mapping()
        assert persisted == ftl.mapping.snapshot()

    def test_flush_stream_pads(self):
        sim, ftl = make_ftl(mapping_unit=512)

        def proc():
            yield from ftl.write(0, 3, tags=list("abc"))
            yield from ftl.flush_stream("data")
            tags = yield from ftl.read(0, 3)
            return tags

        assert run(sim, proc()) == list("abc")
        assert ftl.stats.value("ftl.units.padding") == 5
