"""Integration tests for the five checkpoint strategies via StorageEngine."""

import pytest

from repro.common.errors import ConfigError
from repro.engine import EngineConfig, StorageEngine, make_strategy
from repro.flash import FlashGeometry, FlashTiming
from repro.ftl import FtlConfig
from repro.sim import Simulator, spawn
from repro.ssd import InterfaceConfig, Ssd, SsdSpec

MODES = ("baseline", "isc_a", "isc_b", "isc_c", "checkin")


def build(mode, num_keys=32, mapping_unit=None, record_size=256,
          lock_queries=False):
    sim = Simulator()
    unit = mapping_unit if mapping_unit is not None else \
        (512 if mode in ("isc_c", "checkin") else 4096)
    ssd = Ssd(sim, SsdSpec(
        geometry=FlashGeometry(channels=2, packages_per_channel=1,
                               dies_per_package=2, planes_per_die=1,
                               blocks_per_plane=24, pages_per_block=16),
        timing=FlashTiming(read_ns=20_000, program_ns=200_000,
                           erase_ns=1_500_000),
        ftl=FtlConfig(mapping_unit=unit),
        interface=InterfaceConfig(queue_depth=16, command_overhead_ns=2_000),
        enable_isce=(mode != "baseline"),
        allow_remap=(mode in ("isc_c", "checkin"))))
    engine = StorageEngine(sim, ssd, EngineConfig(
        mode=mode, journal_lba_start=0, journal_sectors=1024,
        meta_lba_start=1024, meta_sectors=64, data_lba_start=1100,
        data_sectors=4096, mapping_unit=unit, group_commit_ns=5_000,
        mem_cache_records=0, verify_reads=True,
        lock_queries_during_checkpoint=lock_queries))
    engine.load([(key, record_size) for key in range(num_keys)])
    engine.start()
    return sim, ssd, engine


def run_process(sim, generator):
    proc = spawn(sim, generator)
    while not proc.triggered:
        assert sim.step(), "simulation starved"
    assert proc.ok, proc.exception
    return proc.value


def update_then_checkpoint(sim, engine, keys):
    def scenario():
        for key in keys:
            yield from engine.put(key)
        report = yield from engine.checkpoint()
        return report
    return run_process(sim, scenario())


class TestAllStrategiesProduceDurableCheckpoints:
    @pytest.mark.parametrize("mode", MODES)
    def test_checkpoint_then_read_from_data_area(self, mode):
        sim, _ssd, engine = build(mode)
        report = update_then_checkpoint(sim, engine, [1, 2, 3])
        assert report is not None
        assert report.entries_checkpointed == 3
        assert report.duration_ns > 0
        assert len(engine.journal.active_jmt) == 0

        def verify():
            versions = []
            for key in (1, 2, 3):
                versions.append((yield from engine.get(key)))
            return versions

        assert run_process(sim, verify()) == [1, 1, 1]

    @pytest.mark.parametrize("mode", MODES)
    def test_only_latest_version_checkpointed(self, mode):
        sim, _ssd, engine = build(mode)

        def scenario():
            for _ in range(4):
                yield from engine.put(7)
            report = yield from engine.checkpoint()
            version = yield from engine.get(7)
            return report, version

        report, version = run_process(sim, scenario())
        assert report.entries_total == 4
        assert report.entries_checkpointed == 1
        assert version == 4

    @pytest.mark.parametrize("mode", MODES)
    def test_journal_freed_after_checkpoint(self, mode):
        sim, _ssd, engine = build(mode)
        report = update_then_checkpoint(sim, engine, [1, 2])
        assert report.journal_sectors_freed > 0
        assert engine.journal.frozen is None

    def test_checkpoint_skipped_when_empty(self):
        sim, _ssd, engine = build("baseline")

        def scenario():
            return (yield from engine.checkpoint())

        assert run_process(sim, scenario()) is None


class TestStrategyMechanisms:
    def test_baseline_reads_and_rewrites(self):
        sim, ssd, engine = build("baseline")
        report = update_then_checkpoint(sim, engine, [1, 2, 3])
        assert report.read_commands == 3
        assert report.write_commands >= 4  # 3 data + 1 metadata
        assert report.cow_commands == 0
        assert ssd.stats.value("ftl.units.write.ckpt") > 0

    def test_isc_a_one_command_per_entry(self):
        sim, _ssd, engine = build("isc_a")
        report = update_then_checkpoint(sim, engine, [1, 2, 3, 4])
        assert report.cow_commands == 4
        assert report.read_commands == 0
        assert report.copied_units > 0
        assert report.remapped_units == 0

    def test_isc_b_batches_commands(self):
        sim, _ssd, engine = build("isc_b")
        report = update_then_checkpoint(sim, engine, list(range(10)))
        assert report.cow_commands == 1  # one multi-CoW for all ten
        assert report.copied_units > 0

    def test_isc_c_copies_packed_logs_despite_remap_support(self):
        sim, _ssd, engine = build("isc_c")
        report = update_then_checkpoint(sim, engine, list(range(10)))
        # Packed journaling: headers misalign every log -> no remap.
        assert report.remapped_units == 0
        assert report.copied_units == 10

    def test_checkin_remaps_full_logs(self):
        # 512 B records with aligned journaling are FULL -> pure remap.
        sim, ssd, engine = build("checkin", record_size=512)
        programs_before = None

        def scenario():
            nonlocal programs_before
            for key in range(10):
                yield from engine.put(key)
            yield from ssd.quiesce()
            programs_before = ssd.stats.value("flash.program")
            report = yield from engine.checkpoint()
            return report

        report = run_process(sim, scenario())
        assert report.remapped_units == 10
        assert report.copied_units == 0

    def test_checkin_merged_partials_take_copy_path(self):
        sim, _ssd, engine = build("checkin", record_size=200)
        report = update_then_checkpoint(sim, engine, list(range(6)))
        assert report.remapped_units == 0
        assert report.copied_units == 6

    def test_checkin_redundant_bytes_far_below_baseline(self):
        """The fig 8a headline at miniature scale."""
        results = {}
        for mode in ("baseline", "checkin"):
            sim, ssd, engine = build(mode, record_size=512)
            update_then_checkpoint(sim, engine, list(range(20)))
            results[mode] = ssd.stats.bytes("ftl.units.write.ckpt")
        assert results["checkin"] == 0  # pure remap: zero copy bytes
        assert results["baseline"] > 20 * 512

    def test_strategy_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_strategy("nonsense", Simulator(), None)


class TestQueryGate:
    def test_queries_stall_while_locked_checkpoint_runs(self):
        sim, _ssd, engine = build("baseline", lock_queries=True)
        latencies = {}

        def updater():
            for key in range(4):
                yield from engine.put(key)

        def scenario():
            yield from updater()
            return (yield from engine.checkpoint())

        proc = spawn(sim, scenario())

        reader_started = []

        def reader():
            # Wait until the checkpoint is running, then issue a read.
            while not engine.checkpoint_running:
                yield 1_000
            start = sim.now
            reader_started.append(start)
            yield from engine.get(0)
            latencies["read"] = sim.now - start

        reader_proc = spawn(sim, reader())
        while not (proc.triggered and reader_proc.triggered):
            assert sim.step()
        assert proc.ok and reader_proc.ok
        report = proc.value
        # The read could not finish before the checkpoint ended.
        assert reader_started[0] + latencies["read"] >= report.finished_at


class TestConfigValidation:
    def test_isc_mode_requires_isce_device(self):
        sim = Simulator()
        ssd = Ssd(sim, SsdSpec(enable_isce=False))
        with pytest.raises(ConfigError):
            StorageEngine(sim, ssd, EngineConfig(mode="isc_b"))

    def test_mapping_unit_mismatch_rejected(self):
        sim = Simulator()
        ssd = Ssd(sim, SsdSpec(ftl=FtlConfig(mapping_unit=512)))
        with pytest.raises(ConfigError):
            StorageEngine(sim, ssd, EngineConfig(mode="baseline",
                                                 mapping_unit=4096))

    def test_region_overlap_rejected(self):
        with pytest.raises(ConfigError):
            EngineConfig(journal_lba_start=0, journal_sectors=1000,
                         meta_lba_start=500, meta_sectors=64,
                         data_lba_start=2000, data_sectors=100)


class TestOffloadProgramDownload:
    """§III-C: the offload execution code is sent exactly once."""

    def test_program_sent_once_across_checkpoints(self):
        sim, ssd, engine = build("checkin")
        update_then_checkpoint(sim, engine, [1, 2, 3])
        assert ssd.isce.program_loaded
        assert ssd.stats.value("host.load_program_cmds") == 1
        update_then_checkpoint(sim, engine, [4, 5, 6])
        assert ssd.stats.value("host.load_program_cmds") == 1

    def test_baseline_never_downloads(self):
        sim, ssd, engine = build("baseline")
        update_then_checkpoint(sim, engine, [1, 2])
        assert ssd.stats.value("host.load_program_cmds") == 0
