"""Tests for ``repro.trace``: span invariants, export schema, overhead.

Covers the tracer's structural guarantees (nesting/ordering, ring bound,
exact aggregates under eviction), the Chrome ``trace_event`` export (valid
JSON, monotone timestamps, one track per component) and the headline
promise: tracing off costs nothing — a traced and an untraced run produce
byte-identical counter snapshots.
"""

import json

import pytest

from repro.sim.core import Simulator
from repro.system.config import tiny_config
from repro.system.system import KvSystem
from repro.trace import (
    NULL_SPAN,
    NULL_TRACER,
    TraceConfig,
    Tracer,
    clear_runs,
    summarize,
    trace_document,
    validate_trace,
)
from repro.trace.metrics import (
    component_table,
    histogram_rows,
    phase_table,
    queue_split_table,
)


class FakeSim:
    """A bare clock: the only part of Simulator the tracer reads."""

    def __init__(self):
        self.now = 0


class TestTracerCore:
    def test_begin_end_records_duration(self):
        sim = FakeSim()
        tracer = Tracer(sim)
        span = tracer.begin("ftl", "write", lba=8, bytes=4096)
        sim.now = 500
        tracer.end(span, flash_pages=1)
        assert span.finished
        assert span.duration_ns == 500
        assert span.attrs == {"lba": 8, "bytes": 4096, "flash_pages": 1}
        assert tracer.stage_stats[("ftl", "write")].count == 1
        assert tracer.stage_stats[("ftl", "write")].bytes == 4096

    def test_end_twice_raises(self):
        tracer = Tracer(FakeSim())
        span = tracer.begin("ssd", "read")
        tracer.end(span)
        with pytest.raises(ValueError):
            tracer.end(span)

    def test_explicit_parent_nesting_validates(self):
        sim = FakeSim()
        tracer = Tracer(sim)
        parent = tracer.begin("engine", "put")
        sim.now = 10
        child = tracer.begin("ssd", "write", parent=parent)
        sim.now = 20
        tracer.end(child)
        sim.now = 30
        tracer.end(parent)
        assert child.parent is parent
        assert child.parent_id == parent.span_id
        assert tracer.validate() == []

    def test_validate_flags_child_outliving_parent(self):
        sim = FakeSim()
        tracer = Tracer(sim)
        parent = tracer.begin("engine", "put")
        child = tracer.begin("ssd", "write", parent=parent)
        sim.now = 10
        tracer.end(parent)
        sim.now = 20
        tracer.end(child)  # closes after its parent: invalid
        problems = tracer.validate()
        assert len(problems) == 1
        assert "outlives parent" in problems[0]

    def test_ring_bound_with_exact_aggregates(self):
        sim = FakeSim()
        tracer = Tracer(sim, TraceConfig(max_spans_per_component=4))
        for index in range(10):
            span = tracer.begin("flash", "read_page")
            sim.now += 100
            tracer.end(span)
        assert len(tracer.spans("flash")) == 4  # ring keeps the tail
        assert tracer.dropped == 6
        # ...but the aggregates saw every span.
        stat = tracer.stage_stats[("flash", "read_page")]
        assert stat.count == 10
        assert stat.total_ns == 1000
        assert stat.mean_ns == 100.0

    def test_open_span_accounting(self):
        tracer = Tracer(FakeSim())
        tracer.begin("client", "read")
        done = tracer.begin("client", "update")
        tracer.end(done)
        assert tracer.open_spans == 1

    def test_instants_suppressed_when_configured(self):
        tracer = Tracer(FakeSim(), TraceConfig(keep_instants=False))
        assert tracer.instant("aligner", "layout") is None
        assert tracer.spans() == []

    def test_checkpoint_phase_folding(self):
        sim = FakeSim()
        tracer = Tracer(sim)
        root = tracer.begin("ckpt", "checkpoint", strategy="checkin")
        for name, duration in (("journal_scan", 10), ("cow_remap", 30),
                               ("cow_remap", 5), ("dealloc", 7)):
            phase = tracer.begin("ckpt", name, parent=root)
            sim.now += duration
            tracer.end(phase)
        tracer.end(root)
        assert root.phases == {"journal_scan": 10, "cow_remap": 35,
                               "dealloc": 7}
        assert len(tracer.checkpoint_summaries) == 1
        summary = tracer.checkpoint_summaries[0]
        assert summary["strategy"] == "checkin"
        assert summary["duration_ns"] == 52
        assert summary["phases"]["cow_remap"] == 35
        # Phase spans are not themselves checkpoint roots.
        derived = summarize(tracer)
        assert derived.checkpoint_count == 1
        assert derived.phase_fraction("cow_remap") == pytest.approx(35 / 52)

    def test_wallclock_tracer_advances(self):
        tracer = Tracer.wallclock()
        span = tracer.begin("recovery", "spor_scan")
        sum(range(1000))  # any work at all
        tracer.end(span)
        assert span.duration_ns > 0

    def test_histogram_rows_cover_all_observations(self):
        sim = FakeSim()
        tracer = Tracer(sim)
        for duration in (1, 2, 3, 1000):
            span = tracer.begin("ftl", "write")
            sim.now += duration
            tracer.end(span)
        rows = histogram_rows(tracer, "ftl", "write")
        assert sum(count for _label, count in rows) == 4
        assert histogram_rows(tracer, "ftl", "nothing") == []


class TestNullTracer:
    def test_null_span_is_a_shared_singleton(self):
        assert NULL_TRACER.begin("ftl", "write", lba=1) is NULL_SPAN
        assert NULL_TRACER.end(NULL_SPAN) is NULL_SPAN
        assert NULL_TRACER.instant("aligner", "layout") is None
        assert not NULL_TRACER.enabled

    def test_every_simulator_starts_disabled(self):
        assert Simulator().tracer is NULL_TRACER
        assert Simulator().tracer is Simulator().tracer  # shared, not per-sim


class TestExport:
    def _tracer(self):
        sim = FakeSim()
        tracer = Tracer(sim)
        outer = tracer.begin("engine", "put", key=3)
        sim.now = 100
        inner = tracer.begin("ssd", "write", parent=outer, track=1)
        sim.now = 250
        tracer.end(inner)
        tracer.end(outer)
        tracer.instant("aligner", "layout", logs=2)
        return tracer

    def test_document_roundtrips_and_validates(self):
        document = trace_document([("run", self._tracer())])
        decoded = json.loads(json.dumps(document))
        assert validate_trace(decoded) == []
        events = decoded["traceEvents"]
        names = {event["args"]["name"] for event in events
                 if event["ph"] == "M" and event["name"] == "process_name"}
        assert names == {"run/engine", "run/ssd", "run/aligner"}
        slices = [event for event in events if event["ph"] == "X"]
        timestamps = [event["ts"] for event in slices]
        assert timestamps == sorted(timestamps)
        assert any(event["ph"] == "i" for event in events)

    def test_two_runs_get_disjoint_pids(self):
        document = trace_document([("a", self._tracer()),
                                   ("b", self._tracer())])
        pids = {event["pid"]: event["args"]["name"]
                for event in document["traceEvents"]
                if event["ph"] == "M" and event["name"] == "process_name"}
        assert len(pids) == 6  # 3 components x 2 runs, no collisions
        assert {name.split("/")[0] for name in pids.values()} == {"a", "b"}

    def test_validate_catches_broken_documents(self):
        assert validate_trace([]) != []
        assert validate_trace({}) == ["missing traceEvents list"]
        bad_ts = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 0, "ts": 5.0, "dur": 1},
            {"ph": "X", "name": "b", "pid": 1, "tid": 0, "ts": 2.0, "dur": 1},
        ]}
        assert any("monotone" in problem
                   for problem in validate_trace(bad_ts))
        bad_dur = {"traceEvents": [
            {"ph": "X", "name": "a", "pid": 1, "tid": 0, "ts": 1.0}]}
        assert any("dur" in problem for problem in validate_trace(bad_dur))


@pytest.fixture(scope="module")
def traced_run():
    """One small traced end-to-end run, shared by the assertions below."""
    clear_runs()
    config = tiny_config(mode="checkin", total_queries=800, trace=True)
    system = KvSystem(config)
    result = system.run()
    yield system, result
    clear_runs()


class TestTracedSystem:
    def test_spans_cover_the_stack(self, traced_run):
        system, _result = traced_run
        components = set(system.sim.tracer.components())
        # The acceptance floor: at least six distinct component tracks,
        # spanning host side and device side.
        assert {"client", "engine", "journal", "ssd", "ftl",
                "flash"} <= components

    def test_no_leaked_or_invalid_spans(self, traced_run):
        system, _result = traced_run
        tracer = system.sim.tracer
        assert tracer.validate() == []
        assert tracer.open_spans == 0

    def test_checkpoints_have_named_phases(self, traced_run):
        _system, result = traced_run
        summary = result.trace_summary
        assert summary is not None
        assert summary.checkpoint_count >= 1
        assert summary.phase_totals  # at least one named phase folded in
        assert set(summary.phase_totals) <= {
            "journal_scan", "journal_readback", "cow_remap", "data_write",
            "dealloc", "metadata_persist", "load_program"}

    def test_export_is_valid(self, traced_run):
        system, _result = traced_run
        document = trace_document([("checkin", system.sim.tracer)])
        assert validate_trace(json.loads(json.dumps(document))) == []

    def test_tables_render(self, traced_run):
        _system, result = traced_run
        summary = result.trace_summary
        assert "time in stage" in component_table(summary)
        assert "phase breakdown" in phase_table(summary)
        assert "queue-wait" in queue_split_table(summary)


class TestZeroOverhead:
    def test_counters_byte_identical_traced_vs_untraced(self):
        """Tracing must not perturb the simulation: same events, same
        counters, byte for byte."""
        snapshots = []
        clear_runs()
        for trace in (False, True):
            config = tiny_config(mode="isc_b", total_queries=600,
                                 trace=trace)
            system = KvSystem(config)
            system.run()
            snapshots.append((system.ssd.stats.snapshot(),
                              system.ssd.stats.snapshot_bytes(),
                              system.sim.now))
        clear_runs()
        untraced, traced = snapshots
        assert untraced[0] == traced[0]  # counts
        assert untraced[1] == traced[1]  # bytes
        assert untraced[2] == traced[2]  # simulated end time
