"""Unit tests for the device DRAM read cache."""

import pytest

from repro.common.errors import ConfigError
from repro.ssd import DramReadCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = DramReadCache(4)
        assert cache.get(1) is None
        cache.put(1, ("a",))
        assert cache.get(1) == ("a",)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_peek_no_stats(self):
        cache = DramReadCache(4)
        cache.put(1, ("a",))
        assert cache.peek(1) == ("a",)
        assert cache.hits == 0 and cache.misses == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            DramReadCache(-1)

    def test_zero_capacity_disabled(self):
        cache = DramReadCache(0)
        assert not cache.enabled
        cache.put(1, ("a",))
        assert cache.get(1) is None
        assert len(cache) == 0

    def test_hit_ratio(self):
        cache = DramReadCache(4)
        cache.put(1, ("a",))
        cache.get(1)
        cache.get(2)
        assert cache.hit_ratio() == pytest.approx(0.5)

    def test_hit_ratio_empty(self):
        assert DramReadCache(4).hit_ratio() == 0.0


class TestLru:
    def test_eviction_order(self):
        cache = DramReadCache(2)
        cache.put(1, ("a",))
        cache.put(2, ("b",))
        cache.put(3, ("c",))  # evicts 1
        assert cache.peek(1) is None
        assert cache.peek(2) == ("b",)
        assert cache.peek(3) == ("c",)

    def test_get_refreshes_recency(self):
        cache = DramReadCache(2)
        cache.put(1, ("a",))
        cache.put(2, ("b",))
        cache.get(1)          # 1 becomes most recent
        cache.put(3, ("c",))  # evicts 2
        assert cache.peek(1) == ("a",)
        assert cache.peek(2) is None

    def test_put_overwrites(self):
        cache = DramReadCache(2)
        cache.put(1, ("old",))
        cache.put(1, ("new",))
        assert cache.get(1) == ("new",)
        assert len(cache) == 1


class TestInvalidation:
    def test_invalidate_one(self):
        cache = DramReadCache(4)
        cache.put(1, ("a",))
        cache.invalidate(1)
        assert cache.peek(1) is None

    def test_invalidate_missing_is_noop(self):
        DramReadCache(4).invalidate(9)

    def test_invalidate_range(self):
        cache = DramReadCache(8)
        for lpn in range(6):
            cache.put(lpn, (str(lpn),))
        cache.invalidate_range(2, 4)
        assert cache.peek(1) is not None
        assert cache.peek(2) is None
        assert cache.peek(4) is None
        assert cache.peek(5) is not None

    def test_invalidate_huge_range_uses_scan_path(self):
        cache = DramReadCache(8)
        cache.put(5, ("x",))
        cache.put(100, ("y",))
        cache.invalidate_range(0, 10**9)
        assert len(cache) == 0
