"""System-level durability: full runs keep every committed update safe."""

import pytest

from repro.engine.recovery import check_durability, recover_store, verify_device_recovery


def run_tracked(system, drive, updates=400, checkpoint_at=200):
    """Run a scripted write workload, tracking acknowledged versions."""
    engine = system.engine

    def client():
        for i in range(updates):
            key = i % system.config.num_keys
            version = yield from engine.put(key)
            acked[key] = version
            if i == checkpoint_at:
                yield from engine.checkpoint()

    acked = {}
    drive(system, client())
    system.engine.shutdown()
    system.sim.run()
    return acked


@pytest.mark.parametrize("mode", ["baseline", "isc_b", "isc_c", "checkin"])
def test_end_of_run_durability(started_system, drive, mode):
    system = started_system(mode=mode, num_keys=96)
    acked = run_tracked(system, drive)
    check_durability(system.engine, acked)


@pytest.mark.parametrize("mode", ["baseline", "checkin"])
def test_mid_run_crash_points(started_system, mode):
    """Pull the plug at several arbitrary instants: nothing acked is lost."""
    from repro.sim import spawn
    system = started_system(mode=mode, num_keys=64, seed=11)
    engine, sim = system.engine, system.sim
    acked = {}

    def client():
        for i in range(240):
            key = (i * 7) % 64
            version = yield from engine.put(key)
            acked[key] = version
            if i in (80, 160):
                yield from engine.checkpoint()

    proc = spawn(sim, client())
    steps = 0
    while not proc.triggered:
        assert sim.step()
        steps += 1
        if steps % 120 == 0:
            check_durability(engine, dict(acked))
    assert proc.ok, proc.exception
    check_durability(engine, acked)


def test_device_recovery_after_full_run(started_system, drive):
    system = started_system(mode="checkin", num_keys=96,
                            track_op_log=True, snapshot_metadata=True)
    run_tracked(system, drive)
    verify_device_recovery(system.ssd.ftl)


def test_recovery_distinguishes_checkpoint_and_journal(started_system, drive):
    system = started_system(mode="checkin", num_keys=32)
    acked = run_tracked(system, drive, updates=96, checkpoint_at=48)
    recovered = recover_store(system.engine)
    # Some keys were checkpointed, some only journaled afterwards.
    assert recovered.from_checkpoint
    assert recovered.replayed_from_journal
    for key, version in acked.items():
        assert recovered.version_of(key) >= version
