"""Unit tests for workload generation: distributions, mixes, sizes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import WorkloadError
from repro.common.rng import SeededRng
from repro.workload import (
    FixedSize,
    MixedSizes,
    OperationGenerator,
    OpKind,
    ScrambledZipfianKeys,
    UniformKeys,
    WorkloadSpec,
    ZipfianKeys,
    fnv1a_64,
    make_distribution,
    mixed_pattern,
    small_value_default,
    workload_by_name,
    zeta,
)


class TestUniform:
    def test_keys_in_range(self):
        dist = UniformKeys(100, SeededRng(1))
        keys = [dist.next_key() for _ in range(1000)]
        assert min(keys) >= 0 and max(keys) < 100

    def test_roughly_flat(self):
        dist = UniformKeys(10, SeededRng(1))
        counts = [0] * 10
        for _ in range(10_000):
            counts[dist.next_key()] += 1
        assert min(counts) > 700  # each ~1000 expected

    def test_item_count_validated(self):
        with pytest.raises(WorkloadError):
            UniformKeys(0, SeededRng(1))


class TestZipfian:
    def test_keys_in_range(self):
        dist = ZipfianKeys(1000, SeededRng(2))
        keys = [dist.next_key() for _ in range(5000)]
        assert min(keys) >= 0 and max(keys) < 1000

    def test_head_dominates(self):
        dist = ZipfianKeys(1000, SeededRng(2))
        keys = [dist.next_key() for _ in range(20_000)]
        head_fraction = sum(1 for k in keys if k < 10) / len(keys)
        # With theta=0.99, the top-10 ranks draw a large share.
        assert head_fraction > 0.30

    def test_rank_zero_most_popular(self):
        dist = ZipfianKeys(1000, SeededRng(2))
        counts = {}
        for _ in range(20_000):
            key = dist.next_key()
            counts[key] = counts.get(key, 0) + 1
        assert max(counts, key=counts.get) == 0

    def test_theta_validated(self):
        with pytest.raises(WorkloadError):
            ZipfianKeys(100, SeededRng(1), theta=1.0)

    def test_zeta(self):
        assert zeta(1, 0.99) == pytest.approx(1.0)
        assert zeta(2, 0.5) == pytest.approx(1.0 + 2 ** -0.5)
        with pytest.raises(WorkloadError):
            zeta(0, 0.9)

    def test_deterministic(self):
        a = ZipfianKeys(500, SeededRng(9))
        b = ZipfianKeys(500, SeededRng(9))
        assert [a.next_key() for _ in range(50)] == \
            [b.next_key() for _ in range(50)]

    def test_single_item(self):
        dist = ZipfianKeys(1, SeededRng(3))
        assert all(dist.next_key() == 0 for _ in range(20))


class TestScrambledZipfian:
    def test_hot_keys_spread_over_space(self):
        dist = ScrambledZipfianKeys(1000, SeededRng(4))
        counts = {}
        for _ in range(5000):
            key = dist.next_key()
            counts[key] = counts.get(key, 0) + 1
        hot = sorted(counts, key=counts.get, reverse=True)[:5]
        # Popular ranks hash anywhere, so the hot keys are not all < 10.
        assert max(hot) > 10

    def test_fnv_hash_is_stable(self):
        assert fnv1a_64(12345) == fnv1a_64(12345)
        assert fnv1a_64(1) != fnv1a_64(2)

    def test_skew_preserved(self):
        dist = ScrambledZipfianKeys(1000, SeededRng(4))
        counts = {}
        for _ in range(20_000):
            key = dist.next_key()
            counts[key] = counts.get(key, 0) + 1
        top = sorted(counts.values(), reverse=True)[:10]
        assert sum(top) / 20_000 > 0.30


class TestFactory:
    @pytest.mark.parametrize("name", ["uniform", "zipfian", "scrambled_zipfian"])
    def test_known_names(self, name):
        dist = make_distribution(name, 100, SeededRng(1))
        assert dist.name == name
        assert 0 <= dist.next_key() < 100

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            make_distribution("latest", 100, SeededRng(1))


class TestWorkloadSpecs:
    def test_paper_mixes(self):
        a = workload_by_name("A")
        assert a.read_proportion == 0.5 and a.update_proportion == 0.5
        f = workload_by_name("f")
        assert f.rmw_proportion == 0.5
        wo = workload_by_name("WO")
        assert wo.update_proportion == 1.0
        assert wo.write_fraction == 1.0

    def test_extended_mixes(self):
        b = workload_by_name("B")
        assert b.read_proportion == 0.95
        assert b.write_fraction == pytest.approx(0.05)
        c = workload_by_name("C")
        assert c.write_fraction == 0.0

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            workload_by_name("Z")

    def test_proportions_validated(self):
        with pytest.raises(WorkloadError):
            WorkloadSpec("bad", 0.5, 0.2, 0.1)

    def test_operation_mix_statistics(self):
        spec = workload_by_name("A")
        gen = OperationGenerator(spec, UniformKeys(100, SeededRng(5)),
                                 SeededRng(6))
        kinds = [gen.next_operation().kind for _ in range(4000)]
        reads = sum(1 for k in kinds if k is OpKind.READ)
        assert 0.45 < reads / len(kinds) < 0.55

    def test_wo_only_updates(self):
        gen = OperationGenerator(workload_by_name("WO"),
                                 UniformKeys(10, SeededRng(5)), SeededRng(6))
        assert all(gen.next_operation().kind is OpKind.UPDATE
                   for _ in range(100))

    def test_f_has_rmw(self):
        gen = OperationGenerator(workload_by_name("F"),
                                 UniformKeys(10, SeededRng(5)), SeededRng(6))
        kinds = {gen.next_operation().kind for _ in range(200)}
        assert OpKind.READ_MODIFY_WRITE in kinds
        assert OpKind.UPDATE not in kinds


class TestRecordSizes:
    def test_fixed(self):
        model = FixedSize(512)
        assert model.size_for_key(0) == 512
        assert model.size_for_key(999) == 512
        assert model.name == "fixed-512"

    def test_fixed_validated(self):
        with pytest.raises(WorkloadError):
            FixedSize(0)

    def test_mixed_stable_per_key(self):
        model = MixedSizes("m", [128, 4096], [0.5, 0.5], seed=7)
        sizes = [model.size_for_key(k) for k in range(50)]
        again = [model.size_for_key(k) for k in range(50)]
        assert sizes == again
        assert set(sizes) <= {128, 4096}
        assert len(set(sizes)) == 2  # both appear over 50 keys

    def test_mixed_validation(self):
        with pytest.raises(WorkloadError):
            MixedSizes("m", [128], [0.5, 0.5])
        with pytest.raises(WorkloadError):
            MixedSizes("m", [], [])
        with pytest.raises(WorkloadError):
            MixedSizes("m", [128], [0.0])

    @pytest.mark.parametrize("pattern", ["P1", "P2", "P3", "P4"])
    def test_patterns_cover_paper_range(self, pattern):
        model = mixed_pattern(pattern)
        sizes = {model.size_for_key(k) for k in range(500)}
        assert min(sizes) >= 128
        assert max(sizes) <= 4096

    def test_pattern_p4_reaches_4096(self):
        model = mixed_pattern("P4")
        sizes = {model.size_for_key(k) for k in range(500)}
        assert 4096 in sizes

    def test_unknown_pattern(self):
        with pytest.raises(WorkloadError):
            mixed_pattern("P9")

    def test_small_default_mostly_small(self):
        model = small_value_default()
        sizes = [model.size_for_key(k) for k in range(1000)]
        small = sum(1 for s in sizes if s <= 512)
        sub_sector = sum(1 for s in sizes if s < 512)
        assert small / len(sizes) > 0.5
        assert sub_sector / len(sizes) > 0.15  # PARTIAL/MERGED path exercised

    def test_sizes_helper(self):
        pairs = FixedSize(100).sizes(3)
        assert pairs == [(0, 100), (1, 100), (2, 100)]

    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_pattern_sizes_from_choice_set(self, key):
        model = mixed_pattern("P2")
        assert model.size_for_key(key) in model.size_choices
