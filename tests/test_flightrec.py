"""The black-box flight recorder: ring semantics, layer hooks, overhead.

The recorder is always-on-capable but strictly passive: plain-tuple
appends into a bounded deque, zero simulated yields.  The tests pin the
three contracts that make it safe to leave armed in production runs:

* bounded memory (ring wrap + dropped count, capped trigger list);
* every instrumented layer emits its events when armed, and none of
  them perturb the simulation (byte-identical counter snapshots);
* disabled runs allocate nothing (``sim.flightrec`` stays ``None``).
"""

from __future__ import annotations

import json

import pytest

from repro.common.units import MS
from repro.obs import (
    FlightRecorder,
    disable_flightrec,
    enable_flightrec,
    flightrec_enabled,
)
from repro.system import KvSystem, run_config, tiny_config
from repro.telemetry import TelemetryConfig


def gated_config(**overrides):
    """The burst-prone gated scenario every forensics test reuses."""
    defaults = dict(flightrec=True, trace=True,
                    lock_queries_during_checkpoint=True,
                    telemetry=TelemetryConfig(interval_ns=1 * MS))
    defaults.update(overrides)
    return tiny_config(**defaults)


class TestRecorderRing:
    def test_records_plain_tuples_in_order(self):
        recorder = FlightRecorder(capacity=8)
        recorder.record(10, "ckpt", "begin", 1, {"strategy": "x"})
        recorder.record(20, "ckpt", "end", 1)
        assert list(recorder.events) == [
            (10, "ckpt", "begin", 1, {"strategy": "x"}),
            (20, "ckpt", "end", 1, None)]
        assert len(recorder) == 2

    def test_ring_wraps_and_counts_drops(self):
        recorder = FlightRecorder(capacity=4)
        for step in range(10):
            recorder.record(step, "layer", "kind")
        assert len(recorder) == 4
        assert recorder.dropped == 6
        assert [event[0] for event in recorder.events] == [6, 7, 8, 9]

    def test_tail_returns_most_recent(self):
        recorder = FlightRecorder(capacity=16)
        for step in range(6):
            recorder.record(step, "layer", "kind")
        assert [event[0] for event in recorder.tail(3)] == [3, 4, 5]

    def test_span_ids_sorted_distinct_non_none(self):
        recorder = FlightRecorder(capacity=16)
        recorder.record(1, "a", "x", 7)
        recorder.record(2, "b", "y", None)
        recorder.record(3, "c", "z", 3)
        recorder.record(4, "d", "w", 7)
        assert recorder.span_ids() == [3, 7]

    def test_trip_lands_in_ring_and_trigger_list(self):
        recorder = FlightRecorder(capacity=16)
        recorder.trip(42, "crash", {"kind": "power_cut"})
        assert recorder.first_trigger == (42, "crash",
                                          {"kind": "power_cut"})
        assert recorder.events[-1][:3] == (42, "incident", "trigger")

    def test_trigger_list_is_capped(self):
        from repro.obs.flightrec import MAX_TRIGGERS
        recorder = FlightRecorder(capacity=4)
        for step in range(200):
            recorder.trip(step, "crash")
        assert len(recorder.triggers) == MAX_TRIGGERS
        assert recorder.first_trigger[0] == 0


class TestWiring:
    def test_disabled_run_allocates_no_recorder(self):
        system = KvSystem(tiny_config())
        assert system.flightrec is None
        assert system.sim.flightrec is None

    def test_config_flag_arms_recorder(self):
        system = KvSystem(tiny_config(flightrec=True))
        assert system.flightrec is not None
        assert system.sim.flightrec is system.flightrec

    def test_global_switch_arms_plain_config(self):
        enable_flightrec(capacity=64)
        try:
            assert flightrec_enabled()
            run = run_config(tiny_config())
            assert run.flightrec is not None
            assert run.flightrec.capacity == 64
        finally:
            disable_flightrec()
        assert not flightrec_enabled()


class TestLayerHooks:
    @pytest.fixture(scope="class")
    def recorded_run(self):
        system = KvSystem(gated_config())
        system.run()
        return system

    def kinds(self, recorder):
        return {(event[1], event[2]) for event in recorder.events}

    def test_checkpoint_lifecycle_recorded(self, recorded_run):
        kinds = self.kinds(recorded_run.flightrec)
        assert ("ckpt", "begin") in kinds
        assert ("ckpt", "end") in kinds
        assert ("ckpt", "phase_begin") in kinds
        assert ("ckpt", "phase_end") in kinds

    def test_checkpoint_events_carry_trace_span_ids(self, recorded_run):
        recorder = recorded_run.flightrec
        span_ids = recorder.span_ids()
        assert span_ids, "traced gated run must link spans"
        exported = {span.span_id
                    for span in recorded_run.sim.tracer.spans()}
        assert set(span_ids) <= exported

    def test_watchdog_edges_recorded(self, recorded_run):
        kinds = self.kinds(recorded_run.flightrec)
        assert ("telemetry", "watchdog_fired") in kinds

    def test_degraded_entry_trips_recorder(self, make_system):
        system = make_system(flightrec=True)
        system.ssd.ftl.enter_degraded("spare blocks exhausted")
        recorder = system.flightrec
        assert ("ftl", "degraded") in self.kinds(recorder)
        assert recorder.first_trigger[1] == "degraded_entry"

    def test_block_retirement_recorded(self, make_system):
        system = make_system(flightrec=True)
        ftl = system.ssd.ftl
        units = 0
        while not ftl.allocator.full_blocks and units < 8_192:
            ftl.preload(units, 256,
                        tags=[f"t{units + s}" for s in range(256)])
            units += 256
        victim = sorted(ftl.allocator.full_blocks)[0]
        ftl.retire_block(victim, cause="program_fail")
        events = [event for event in system.flightrec.events
                  if event[1:3] == ("ftl", "block_retired")]
        assert events and events[0][4]["cause"] == "program_fail"
        assert events[0][4]["block"] == victim

    def test_power_cut_trips_crash_trigger(self, make_system):
        from repro.common.rng import SeededRng
        from repro.fault.crash import power_cut
        system = make_system(flightrec=True)
        system.load()
        power_cut(system, SeededRng(3).fork("flightrec-test"))
        assert system.flightrec.first_trigger[1] == "crash"


class TestZeroOverhead:
    """Arming the recorder must not move a single simulated byte."""

    def snapshot(self, config):
        system = KvSystem(config)
        result = system.run()
        return json.dumps(
            [system.ssd.stats.snapshot(),
             system.ssd.stats.snapshot_bytes(),
             result.metrics.summary()], sort_keys=True)

    def test_recorder_on_vs_off_byte_identical(self):
        assert self.snapshot(tiny_config()) == \
            self.snapshot(tiny_config(flightrec=True))

    def test_recorder_on_vs_off_gated_traced_byte_identical(self):
        baseline = gated_config(flightrec=False)
        armed = gated_config()
        assert self.snapshot(baseline) == self.snapshot(armed)
