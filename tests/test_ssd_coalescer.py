"""Unit tests for the device write coalescer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.ssd.coalescer import WriteCoalescer


def make(spu=8, capacity=4):
    return WriteCoalescer(sectors_per_unit=spu, capacity_units=capacity)


class TestMerge:
    def test_partial_write_buffers(self):
        wb = make()
        ready = wb.merge(0, 2, ["a", "b"], "journal", "journal")
        assert ready == []
        assert len(wb) == 1
        entry = wb.peek(0)
        assert entry.tags[:2] == ["a", "b"]
        assert entry.covered[:2] == [True, True]
        assert not entry.full

    def test_sequential_appends_complete_unit(self):
        """The WAL pattern: sub-unit appends coalesce until full."""
        wb = make(spu=4)
        assert wb.merge(0, 2, ["a", "b"], "j", "j") == []
        ready = wb.merge(2, 2, ["c", "d"], "j", "j")
        assert len(ready) == 1
        assert ready[0].tags == ["a", "b", "c", "d"]
        assert len(wb) == 0  # full units leave the buffer

    def test_full_cover_in_one_write(self):
        wb = make(spu=2)
        ready = wb.merge(0, 4, list("abcd"), "d", "d")
        assert [u.lpn for u in ready] == [0, 1]

    def test_overwrite_in_buffer(self):
        wb = make(spu=4)
        wb.merge(0, 1, ["old"], "d", "d")
        wb.merge(0, 1, ["new"], "d", "d")
        assert wb.peek(0).tags[0] == "new"
        assert len(wb) == 1

    def test_write_spanning_units(self):
        wb = make(spu=2)
        ready = wb.merge(1, 2, ["x", "y"], "d", "d")
        assert ready == []
        assert len(wb) == 2  # tail of unit 0 and head of unit 1

    def test_validation(self):
        with pytest.raises(ConfigError):
            WriteCoalescer(0, 4)
        with pytest.raises(ConfigError):
            WriteCoalescer(8, -1)

    def test_disabled(self):
        wb = WriteCoalescer(8, 0)
        assert not wb.enabled


class TestEviction:
    def test_lru_eviction_under_pressure(self):
        wb = make(spu=8, capacity=2)
        wb.merge(0, 1, ["a"], "d", "d")     # unit 0
        wb.merge(8, 1, ["b"], "d", "d")     # unit 1
        wb.merge(16, 1, ["c"], "d", "d")    # unit 2 -> over capacity
        evicted = wb.evict_pressure()
        assert [u.lpn for u in evicted] == [0]
        assert len(wb) == 2

    def test_covered_runs(self):
        wb = make(spu=8)
        wb.merge(1, 2, ["a", "b"], "d", "d")
        wb.merge(5, 1, ["c"], "d", "d")
        entry = wb.peek(0)
        assert entry.covered_runs == [(1, 2), (5, 1)]


class TestDrainDiscard:
    def test_drain_all(self):
        wb = make()
        wb.merge(0, 1, ["a"], "d", "d")
        wb.merge(8, 1, ["b"], "d", "d")
        drained = wb.drain_all()
        assert len(drained) == 2
        assert len(wb) == 0

    def test_drain_range(self):
        wb = make(spu=8)
        wb.merge(0, 1, ["a"], "d", "d")
        wb.merge(8, 1, ["b"], "d", "d")
        drained = wb.drain_range(0, 8)
        assert [u.lpn for u in drained] == [0]
        assert len(wb) == 1

    def test_discard_clears_partial_overlap(self):
        wb = make(spu=8)
        wb.merge(0, 1, ["a"], "d", "d")
        wb.merge(6, 2, ["b", "c"], "d", "d")
        # The trim covers sectors 0-3: sector 0's content must go, but the
        # unit survives because sectors 6-7 are still covered.
        assert wb.discard_range(0, 4) == 0
        entry = wb.peek(0)
        assert entry is not None
        assert not entry.covered[0] and entry.tags[0] is None
        assert entry.covered[6] and entry.covered[7]
        # Trimming the rest empties the unit and drops it.
        assert wb.discard_range(4, 4) == 1
        assert len(wb) == 0

    def test_discard_whole_unit(self):
        wb = make(spu=8)
        wb.merge(0, 1, ["a"], "d", "d")
        assert wb.discard_range(0, 8) == 1
        assert len(wb) == 0

    def test_discard_does_not_resurrect_trimmed_sectors(self):
        """Regression: a partially-overlapping unit used to keep its
        covered flags, so overlay() served trimmed data to later reads."""
        wb = make(spu=8)
        wb.merge(0, 2, ["a", "b"], "d", "d")
        wb.discard_range(0, 1)
        tags = wb.overlay(0, 2, [None, None])
        assert tags == [None, "b"]


class TestOverlay:
    def test_overlay_patches_covered_sectors(self):
        wb = make(spu=4)
        wb.merge(1, 2, ["B", "C"], "d", "d")
        tags = wb.overlay(0, 4, ["w", "x", "y", "z"])
        assert tags == ["w", "B", "C", "z"]

    def test_overlay_ignores_uncovered(self):
        wb = make(spu=4)
        wb.merge(0, 1, ["A"], "d", "d")
        tags = wb.overlay(2, 1, ["keep"])
        assert tags == ["keep"]

    @given(st.lists(st.tuples(st.integers(0, 31), st.integers(1, 8)),
                    max_size=20))
    def test_property_overlay_reflects_latest_merge(self, writes):
        """After any write sequence, overlay returns the latest value for
        every covered sector still in the buffer."""
        wb = WriteCoalescer(4, capacity_units=1000)
        latest = {}
        flushed = set()
        for index, (lba, n) in enumerate(writes):
            tags = [f"v{index}-{i}" for i in range(n)]
            ready = wb.merge(lba, n, tags, "d", "d")
            for i in range(n):
                latest[lba + i] = tags[i]
            for unit in ready:
                for offset in range(4):
                    flushed.add(unit.lpn * 4 + offset)
                    # flushed sectors carry the latest value at flush time
                    assert unit.tags[offset] == latest.get(
                        unit.lpn * 4 + offset)
        result = wb.overlay(0, 40, [None] * 40)
        for sector in range(40):
            entry = wb.peek(sector // 4)
            if entry is not None and entry.covered[sector % 4]:
                assert result[sector] == latest[sector]
