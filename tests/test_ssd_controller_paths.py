"""Controller path tests: coalescer interplay with reads/flush/trim."""

from repro.flash import FlashGeometry, FlashTiming
from repro.ftl import FtlConfig
from repro.sim import Simulator, spawn
from repro.ssd import Command, ControllerConfig, InterfaceConfig, Op, Ssd, SsdSpec


def make_ssd(mapping_unit=4096, coalesce_bytes=1024 * 1024):
    sim = Simulator()
    spec = SsdSpec(
        geometry=FlashGeometry(channels=2, packages_per_channel=1,
                               dies_per_package=1, planes_per_die=1,
                               blocks_per_plane=8, pages_per_block=4),
        timing=FlashTiming(read_ns=50_000, program_ns=500_000,
                           erase_ns=3_000_000),
        ftl=FtlConfig(mapping_unit=mapping_unit),
        interface=InterfaceConfig(queue_depth=8),
        controller=ControllerConfig(write_coalesce_bytes=coalesce_bytes))
    return sim, Ssd(sim, spec)


def run(sim, generator):
    proc = spawn(sim, generator)
    sim.run()
    assert proc.ok, proc.exception
    return proc.value


class TestBufferedReads:
    def test_read_served_from_buffer_without_flash(self):
        sim, ssd = make_ssd()

        def proc():
            yield from ssd.write(0, 2, tags=["a", "b"])  # partial unit
            reads_before = ssd.stats.value("flash.read")
            tags = yield from ssd.read(0, 2)
            return reads_before, tags

        before, tags = run(sim, proc())
        assert tags == ["a", "b"]
        # No user-data flash read: the data never left DRAM.
        assert ssd.stats.value("flash.read") - before <= \
            ssd.stats.value("flash.read.map")
        assert ssd.stats.value("host.read_buffer_hits") >= 1

    def test_read_mixing_buffered_and_flash(self):
        sim, ssd = make_ssd()

        def proc():
            yield from ssd.write(0, 8, tags=[f"f{i}" for i in range(8)])
            yield from ssd.quiesce()                      # unit on flash
            yield from ssd.write(8, 1, tags=["buffered"])  # next unit partial
            tags = yield from ssd.read(6, 3)
            return tags

        assert run(sim, proc()) == ["f6", "f7", "buffered"]


class TestFlushAndTrim:
    def test_flush_writes_partial_buffered_units(self):
        sim, ssd = make_ssd()

        def proc():
            yield from ssd.write(0, 3, tags=list("abc"))
            assert len(ssd.controller.write_buffer) == 1
            yield ssd.submit(Command(op=Op.FLUSH))
            yield from ssd.quiesce()
            tags = yield from ssd.read(0, 3)
            return tags

        assert run(sim, proc()) == list("abc")
        assert len(ssd.controller.write_buffer) == 0
        assert ssd.stats.value("ftl.units.rmw.host") == 0  # unmapped before

    def test_trim_discards_buffered_data(self):
        sim, ssd = make_ssd(mapping_unit=512)

        def proc():
            yield from ssd.write(0, 1, tags=["gone"])
            yield ssd.submit(Command(op=Op.TRIM, lba=0, nsectors=8))
            tags = yield from ssd.read(0, 1)
            return tags

        assert run(sim, proc()) == [None]

    def test_eviction_under_pressure_reaches_flash(self):
        # Coalescer sized for one unit: scattered writes force evictions.
        sim, ssd = make_ssd(mapping_unit=4096, coalesce_bytes=4096)

        def proc():
            for i in range(6):
                yield from ssd.write(i * 8, 1, tags=[f"u{i}"])
            yield ssd.submit(Command(op=Op.FLUSH))
            yield from ssd.quiesce()
            tags = []
            for i in range(6):
                tags.extend((yield from ssd.read(i * 8, 1)))
            return tags

        assert run(sim, proc()) == [f"u{i}" for i in range(6)]
        assert ssd.stats.value("flash.program") >= 1


class TestDeviceInternalPaths:
    def test_device_read_overlays_buffer(self):
        sim, ssd = make_ssd(mapping_unit=512)

        def proc():
            yield from ssd.write(0, 1, tags=["host"])
            tags = yield from ssd.controller.device_read(0, 1)
            return tags

        assert run(sim, proc()) == ["host"]

    def test_device_write_counts_no_host_command(self):
        sim, ssd = make_ssd(mapping_unit=512)

        def proc():
            yield from ssd.controller.device_write(0, 1, ["internal"],
                                                   "ckpt", "ckpt")
            tags = yield from ssd.controller.device_read(0, 1)
            return tags

        assert run(sim, proc()) == ["internal"]
        assert ssd.stats.value("host.write_cmds") == 0
