"""Unit tests for the front-door admission controller.

Pure controller-level coverage: policies, slot accounting, FIFO slot
transfer, typed shed reasons and the reconciliation ledger.  The
system-level overload battery lives in ``test_overload.py``.
"""

import pytest

from repro.common.errors import ConfigError
from repro.engine.admission import (
    ACCEPT,
    POLICIES,
    QUEUED,
    SHED_QUEUE_FULL,
    SHED_REASONS,
    SHED_WAITING_ROOM_FULL,
    SHED_WRITE_DEGRADED,
    AdmissionConfig,
    AdmissionController,
    AdmissionTicket,
)
from repro.sim import Simulator


def controller(policy="queue", max_inflight=2, max_waiting=2):
    return AdmissionController(
        Simulator(),
        AdmissionConfig(policy=policy, max_inflight=max_inflight,
                        max_waiting=max_waiting))


class TestConfig:
    def test_policies(self):
        for policy in POLICIES:
            AdmissionConfig(policy=policy)

    def test_bad_policy(self):
        with pytest.raises(ConfigError):
            AdmissionConfig(policy="bounce")

    def test_bad_limits(self):
        with pytest.raises(ConfigError):
            AdmissionConfig(max_inflight=0)
        with pytest.raises(ConfigError):
            AdmissionConfig(max_waiting=-1)


class TestTicket:
    def test_outcome_flags(self):
        assert AdmissionTicket(ACCEPT).accepted
        assert AdmissionTicket(QUEUED).queued
        for reason in SHED_REASONS:
            ticket = AdmissionTicket(reason)
            assert ticket.shed
            assert not ticket.accepted and not ticket.queued


class TestQueuePolicy:
    def test_accept_until_full_then_queue_then_shed(self):
        front = controller(max_inflight=2, max_waiting=2)
        outcomes = [front.try_admit(is_read=False).outcome
                    for _ in range(5)]
        assert outcomes == [ACCEPT, ACCEPT, QUEUED, QUEUED,
                            SHED_WAITING_ROOM_FULL]
        assert front.inflight == 2 and front.waiting == 2

    def test_release_transfers_slot_fifo(self):
        front = controller(max_inflight=1, max_waiting=2)
        front.try_admit(is_read=False)
        first = front.try_admit(is_read=False)
        second = front.try_admit(is_read=False)
        front.release()
        # The freed slot goes to the oldest waiter, in order; inflight
        # never dips (the slot transfers, it is not returned to the pool).
        assert first.event.triggered and not second.event.triggered
        assert front.inflight == 1 and front.waiting == 1
        front.release()
        assert second.event.triggered
        assert front.inflight == 1 and front.waiting == 0
        front.release()
        assert front.inflight == 0

    def test_release_without_admit_raises(self):
        with pytest.raises(ConfigError):
            controller().release()


class TestShedPolicy:
    def test_sheds_at_capacity_no_waiting_room(self):
        front = controller(policy="shed", max_inflight=1)
        assert front.try_admit(is_read=False).accepted
        ticket = front.try_admit(is_read=False)
        assert ticket.outcome == SHED_QUEUE_FULL
        assert front.waiting == 0


class TestDegradePolicy:
    def test_reads_wait_writes_shed(self):
        front = controller(policy="degrade", max_inflight=1, max_waiting=4)
        assert front.try_admit(is_read=True).accepted
        assert front.try_admit(is_read=True).queued
        ticket = front.try_admit(is_read=False)
        assert ticket.outcome == SHED_WRITE_DEGRADED

    def test_reads_shed_when_waiting_room_full(self):
        front = controller(policy="degrade", max_inflight=1, max_waiting=1)
        front.try_admit(is_read=True)
        front.try_admit(is_read=True)
        ticket = front.try_admit(is_read=True)
        assert ticket.outcome == SHED_WAITING_ROOM_FULL


class TestReconciliation:
    def test_ledger_balances_and_reports(self):
        front = controller(max_inflight=2, max_waiting=1)
        tickets = [front.try_admit(is_read=False) for _ in range(5)]
        executing = [t for t in tickets if not t.shed]
        for _ in executing:
            front.release()
        report = front.report("t0")
        assert report.submitted == 5
        assert report.completed == 3
        assert report.shed == {SHED_QUEUE_FULL: 0, SHED_WRITE_DEGRADED: 0,
                               SHED_WAITING_ROOM_FULL: 2}
        assert report.shed_total == 2
        assert report.shed_rate == pytest.approx(0.4)
        assert report.reconciles()
        assert report.max_inflight_seen == 2
        assert report.max_waiting_seen == 1

    def test_empty_report_reconciles(self):
        report = controller().report("idle")
        assert report.reconciles()
        assert report.shed_rate == 0.0
