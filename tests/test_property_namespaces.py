"""Property tests: namespace isolation under randomized tenant activity.

Hypothesis drives random per-tenant scripts of puts and checkpoints
against a namespaced tiny device, optionally pulling the plug mid-run
and running SPOR recovery.  Whatever the interleaving — remap
checkpoints, GC relocation, crash, recovery — the physical partitioning
must hold: no flash unit referenced by two namespaces, every mapped LPN
inside its owner's range, every durable remap confined to one tenant.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.rng import SeededRng
from repro.common.units import MIB
from repro.fault import check_ftl_invariants, power_cut, recover_device
from repro.fault.invariants import check_namespace_isolation
from repro.sim import spawn
from repro.system import KvSystem, TenantSpec, tiny_config

KEYS = 16

# One script per tenant: ("put", key) | ("ckpt",)
SCRIPT = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, KEYS - 1)),
        st.tuples(st.just("ckpt")),
    ),
    min_size=1, max_size=25)

# 0 = run to completion; otherwise cut power after that many kernel
# steps (clamped by the run's natural length — large draws degenerate
# into crash-free examples, which is a property worth keeping too).
CRASH_STEP = st.one_of(st.just(0), st.integers(1, 1_500))


def run_tenants(mode, scripts, crash_step):
    """Run one script per tenant; crash/recover if the step count hits."""
    config = tiny_config(mode=mode, seed=5, num_keys=KEYS,
                         track_op_log=True, snapshot_metadata=True,
                         journal_area_bytes=1 * MIB,
                         tenants=tuple(TenantSpec() for _ in scripts))
    system = KvSystem(config)
    system.load()
    procs = []
    for tenant, script in zip(system.tenants, scripts):
        tenant.engine.start()

        def client(engine=tenant.engine, script=script):
            for op in script:
                if op[0] == "put":
                    yield from engine.put(op[1])
                else:
                    yield from engine.checkpoint()

        procs.append(spawn(system.sim, client(),
                           name=f"tenant{tenant.index}"))

    steps = 0
    crashed = False
    while not all(proc.triggered for proc in procs):
        assert system.sim.step(), "simulation starved"
        steps += 1
        if crash_step and steps >= crash_step:
            crashed = True
            break
    if crashed:
        power_cut(system, SeededRng(99).fork("tear"))
        recover_device(system)
    else:
        for proc in procs:
            assert proc.ok, proc.exception
    return system


def assert_isolated(system):
    ftl = system.ssd.ftl
    violations = check_namespace_isolation(ftl) + check_ftl_invariants(ftl)
    assert not violations, violations


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scripts=st.tuples(SCRIPT, SCRIPT), crash_step=CRASH_STEP)
def test_property_two_tenant_isolation_checkin(scripts, crash_step):
    assert_isolated(run_tenants("checkin", scripts, crash_step))


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scripts=st.tuples(SCRIPT, SCRIPT), crash_step=CRASH_STEP)
def test_property_two_tenant_isolation_baseline(scripts, crash_step):
    assert_isolated(run_tenants("baseline", scripts, crash_step))


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scripts=st.tuples(SCRIPT, SCRIPT, SCRIPT), crash_step=CRASH_STEP)
def test_property_three_tenant_isolation_checkin(scripts, crash_step):
    assert_isolated(run_tenants("checkin", scripts, crash_step))
