"""Unit tests for flash geometry and address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import ConfigError
from repro.flash import FlashGeometry


def small_geometry():
    return FlashGeometry(channels=2, packages_per_channel=1, dies_per_package=2,
                         planes_per_die=1, blocks_per_plane=4,
                         pages_per_block=8, page_size=4096)


class TestDerivedSizes:
    def test_num_luns(self):
        geo = small_geometry()
        assert geo.num_luns == 2 * 1 * 2 * 1

    def test_total_blocks(self):
        geo = small_geometry()
        assert geo.total_blocks == geo.num_luns * 4

    def test_total_pages(self):
        geo = small_geometry()
        assert geo.total_pages == geo.total_blocks * 8

    def test_capacity(self):
        geo = small_geometry()
        assert geo.capacity_bytes == geo.total_pages * 4096

    def test_block_bytes(self):
        assert small_geometry().block_bytes == 8 * 4096

    def test_default_geometry_is_valid(self):
        geo = FlashGeometry()
        assert geo.total_pages > 0
        assert geo.num_luns == 8 * 1 * 2 * 2


class TestValidation:
    def test_rejects_zero_channels(self):
        with pytest.raises(ConfigError):
            FlashGeometry(channels=0)

    def test_rejects_non_sector_page(self):
        with pytest.raises(ConfigError):
            FlashGeometry(page_size=1000)

    def test_page_range_check(self):
        geo = small_geometry()
        with pytest.raises(ConfigError):
            geo.block_of_page(geo.total_pages)

    def test_block_range_check(self):
        geo = small_geometry()
        with pytest.raises(ConfigError):
            geo.lun_of_block(geo.total_blocks)

    def test_negative_page(self):
        with pytest.raises(ConfigError):
            small_geometry().check_page(-1)


class TestAddressing:
    def test_block_of_page(self):
        geo = small_geometry()
        assert geo.block_of_page(0) == 0
        assert geo.block_of_page(7) == 0
        assert geo.block_of_page(8) == 1

    def test_page_in_block(self):
        geo = small_geometry()
        assert geo.page_in_block(0) == 0
        assert geo.page_in_block(9) == 1

    def test_first_page_of_block_roundtrip(self):
        geo = small_geometry()
        for block in range(geo.total_blocks):
            ppa = geo.first_page_of_block(block)
            assert geo.block_of_page(ppa) == block
            assert geo.page_in_block(ppa) == 0

    def test_lun_striping(self):
        geo = small_geometry()
        luns = [geo.lun_of_block(b) for b in range(geo.num_luns)]
        assert luns == list(range(geo.num_luns))

    def test_channel_of_lun_within_range(self):
        geo = small_geometry()
        for lun in range(geo.num_luns):
            assert 0 <= geo.channel_of_lun(lun) < geo.channels

    def test_channel_of_lun_rejects_bad_lun(self):
        with pytest.raises(ConfigError):
            small_geometry().channel_of_lun(99)

    @given(st.integers(min_value=0, max_value=small_geometry().total_pages - 1))
    def test_page_decomposition_roundtrip(self, ppa):
        geo = small_geometry()
        block = geo.block_of_page(ppa)
        index = geo.page_in_block(ppa)
        assert block * geo.pages_per_block + index == ppa

    @given(st.integers(min_value=0, max_value=small_geometry().total_pages - 1))
    def test_lun_consistency(self, ppa):
        geo = small_geometry()
        assert geo.lun_of_page(ppa) == geo.lun_of_block(geo.block_of_page(ppa))

    def test_blocks_spread_across_all_luns(self):
        geo = small_geometry()
        seen = {geo.lun_of_block(b) for b in range(geo.total_blocks)}
        assert seen == set(range(geo.num_luns))
