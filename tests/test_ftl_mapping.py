"""Unit tests for the sub-page mapping table."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import FtlError
from repro.ftl import SubPageMappingTable


def make_table(units_per_page=8, pages_per_block=4):
    return SubPageMappingTable(units_per_page, pages_per_block)


class TestBasics:
    def test_empty_lookup(self):
        table = make_table()
        assert table.lookup(0) is None
        assert not table.is_mapped(0)
        assert table.mapped_lpn_count == 0

    def test_map_and_lookup(self):
        table = make_table()
        table.map(5, 100)
        assert table.lookup(5) == 100
        assert table.referrers(100) == frozenset({5})
        assert table.refcount(100) == 1

    def test_remap_releases_old_unit(self):
        table = make_table()
        table.map(5, 100)
        table.map(5, 200)
        assert table.lookup(5) == 200
        assert table.refcount(100) == 0
        assert table.refcount(200) == 1

    def test_map_same_unit_is_noop(self):
        table = make_table()
        table.map(5, 100)
        table.map(5, 100)
        assert table.refcount(100) == 1

    def test_unmap(self):
        table = make_table()
        table.map(5, 100)
        assert table.unmap(5) == 100
        assert table.lookup(5) is None
        assert table.refcount(100) == 0

    def test_unmap_unmapped_returns_none(self):
        assert make_table().unmap(7) is None

    def test_negative_unit_rejected(self):
        with pytest.raises(FtlError):
            make_table().map(0, -1)

    def test_constructor_validation(self):
        with pytest.raises(FtlError):
            SubPageMappingTable(0, 4)


class TestSharing:
    """The remap primitive: several LPNs on one physical unit."""

    def test_share_creates_alias(self):
        table = make_table()
        table.map(1, 100)  # journal lpn
        upa = table.share(1, 50)  # checkpoint: data lpn 50 -> same unit
        assert upa == 100
        assert table.lookup(50) == 100
        assert table.referrers(100) == frozenset({1, 50})
        assert table.is_shared(100)

    def test_share_unmapped_source_is_error(self):
        with pytest.raises(FtlError):
            make_table().share(9, 50)

    def test_unmap_one_alias_keeps_unit_valid(self):
        table = make_table()
        table.map(1, 100)
        table.share(1, 50)
        table.unmap(1)  # journal log deleted after checkpoint
        assert table.refcount(100) == 1
        assert table.lookup(50) == 100
        block = table.block_of_unit(100)
        assert table.valid_units(block) == 1

    def test_shared_unit_counts_once_per_block(self):
        table = make_table()
        table.map(1, 100)
        table.share(1, 50)
        block = table.block_of_unit(100)
        assert table.valid_units(block) == 1


class TestValidCounting:
    def test_valid_units_per_block(self):
        table = make_table(units_per_page=8, pages_per_block=4)
        # units per block = 32; unit 0 and 33 are in blocks 0 and 1
        table.map(1, 0)
        table.map(2, 33)
        table.map(3, 34)
        assert table.valid_units(0) == 1
        assert table.valid_units(1) == 2

    def test_overwrite_invalidates(self):
        table = make_table()
        table.map(1, 0)
        table.map(1, 1)  # out-of-place update
        assert table.valid_units(0) == 1  # unit 1 valid, unit 0 invalid

    def test_release_block_requires_no_valid(self):
        table = make_table()
        table.map(1, 0)
        with pytest.raises(FtlError):
            table.release_block(0)
        table.unmap(1)
        table.release_block(0)
        assert table.valid_units(0) == 0

    def test_valid_units_in_page(self):
        table = make_table(units_per_page=4, pages_per_block=2)
        table.map(1, 0)
        table.map(2, 3)
        table.map(3, 4)  # page 1
        assert table.valid_units_in_page(0) == (0, 3)
        assert table.valid_units_in_page(1) == (4,)


class TestAddressHelpers:
    def test_block_page_unit_decomposition(self):
        table = make_table(units_per_page=4, pages_per_block=2)
        # units_per_block = 8
        assert table.block_of_unit(9) == 1
        assert table.page_of_unit(9) == 2
        assert table.unit_index(9) == 1


class TestSnapshotRestore:
    def test_roundtrip(self):
        table = make_table()
        table.map(1, 10)
        table.map(2, 20)
        table.share(1, 3)
        snap = table.snapshot()
        other = make_table()
        other.restore(snap)
        assert other.lookup(1) == 10
        assert other.lookup(3) == 10
        assert other.referrers(10) == frozenset({1, 3})
        assert other.valid_units(table.block_of_unit(10)) == \
            table.valid_units(table.block_of_unit(10))

    def test_restore_replaces_state(self):
        table = make_table()
        table.map(9, 99)
        table.restore({1: 10})
        assert table.lookup(9) is None
        assert table.lookup(1) == 10


@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 20),
                          st.integers(0, 40)), max_size=60))
def test_property_snapshot_restore_roundtrip(ops):
    """snapshot()/restore() rebuilds the reverse map, refcounts and
    per-block valid counts identically — including shared units created
    by remap-style aliasing."""
    table = SubPageMappingTable(4, 4)
    for op, lpn, upa in ops:
        if op == 0:
            table.map(lpn, upa)
        elif op == 1:
            src = upa % 21
            if table.is_mapped(src):
                table.share(src, lpn)
        else:
            table.unmap(lpn)
    restored = SubPageMappingTable(4, 4)
    restored.restore(table.snapshot())
    assert dict(restored.items()) == dict(table.items())
    assert sorted(restored.reverse_items()) == sorted(table.reverse_items())
    assert restored.valid_counts() == table.valid_counts()
    for upa in dict(table.reverse_items()):
        assert restored.refcount(upa) == table.refcount(upa)


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 40)), max_size=60))
def test_property_refcounts_consistent(ops):
    """After any sequence of maps, reverse map and valid counts agree."""
    table = SubPageMappingTable(4, 4)
    for lpn, upa in ops:
        table.map(lpn, upa)
    # Reconstruct expectations from the forward table.
    from collections import defaultdict
    expected_refs = defaultdict(set)
    for lpn, upa in table.items():
        expected_refs[upa].add(lpn)
    for upa, refs in expected_refs.items():
        assert table.referrers(upa) == frozenset(refs)
    blocks = defaultdict(int)
    for upa in expected_refs:
        blocks[table.block_of_unit(upa)] += 1
    for block, count in blocks.items():
        assert table.valid_units(block) == count
