"""Overload-survival battery: open-loop load past the saturation point.

The closed-loop suite can never see overload (clients self-throttle), so
these tests drive the tiny system with open-loop arrivals at a multiple
of its measured closed-loop capacity and assert the failure mode is the
*designed* one:

* the waiting room stays bounded (no unbounded queue growth);
* every submitted op gets exactly one typed completion — executed or
  shed with a reason — so the admission ledger reconciles exactly;
* shed counts agree exactly with the telemetry pipeline's counters;
* the whole admission layer is zero-overhead when disabled: a huge
  front door on the closed-loop path is byte-identical to no front
  door at all;
* a power cut mid-burst never loses an acked write and never acks a
  shed op (via the open-loop crash sweep).

Run across several seeds: overload dynamics are exactly the place where
a single lucky schedule could hide a leak.
"""

import pytest

from repro.common.units import MIB
from repro.engine.admission import AdmissionConfig
from repro.fault.harness import open_loop_crash_sweep
from repro.system import TenantSpec, run_config, tiny_config
from repro.telemetry.sampler import TelemetryConfig
from repro.workload.arrivals import ArrivalSpec
from tests.conftest import summaries

SEEDS = (7, 11, 23)

OVERLOAD_FACTOR = 2.0
"""Offered load as a multiple of the measured closed-loop capacity."""


def overloaded_run(seed, **overrides):
    """Calibrate closed-loop capacity, then run at 2x that, open loop."""
    calibration = run_config(tiny_config(seed=seed, total_queries=600))
    capacity = calibration.metrics.throughput_qps()
    params = dict(
        seed=seed, total_queries=800,
        arrivals=ArrivalSpec(rate_ops_per_sec=OVERLOAD_FACTOR * capacity),
        # Same concurrency the capacity was calibrated at: extra
        # in-flight slots would silently absorb the overload.
        admission=AdmissionConfig(policy="queue", max_inflight=4,
                                  max_waiting=16))
    params.update(overrides)
    return run_config(tiny_config(**params))


class TestOverloadSurvival:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bounded_queues_and_typed_completions(self, seed):
        result = overloaded_run(seed)
        report = result.admission
        assert report is not None
        # Every submitted op got exactly one typed completion: no
        # zombies, no double counting — the ledger balances exactly.
        assert report.submitted == 800
        assert report.reconciles()
        # 2x offered load must actually shed (the waiting room is finite)
        # yet the waiting room never grew past its bound.
        assert report.shed_total > 0
        assert report.max_waiting_seen <= report.max_waiting
        assert report.max_inflight_seen <= report.max_inflight
        # Executed ops are exactly the completed ones.
        assert result.metrics.operations == report.completed

    @pytest.mark.parametrize("policy,expect_sheds",
                             [("queue", True), ("shed", True)])
    def test_policies_survive_overload(self, policy, expect_sheds):
        result = overloaded_run(7, admission=AdmissionConfig(
            policy=policy, max_inflight=4, max_waiting=16))
        report = result.admission
        assert report.reconciles()
        assert (report.shed_total > 0) == expect_sheds

    def test_shed_counts_reconcile_with_telemetry(self):
        result = overloaded_run(7, telemetry=TelemetryConfig())
        report = result.admission
        assert report.shed_total > 0
        # The teardown sample reads the controller's final counters, so
        # the telemetry series must agree with the report *exactly*.
        assert result.telemetry.get("admission.shed_ops").last() == \
            report.shed_total
        assert result.telemetry.get("admission.submitted").last() == \
            report.submitted

    @pytest.mark.parametrize("seed", SEEDS)
    def test_open_loop_runs_are_deterministic(self, seed):
        assert summaries(overloaded_run(seed)) == \
            summaries(overloaded_run(seed))


class TestZeroOverhead:
    """Admission off == admission absent, byte for byte."""

    def test_closed_loop_accept_path_is_invisible(self):
        # A front door too large to ever queue or shed must not perturb
        # the closed-loop run at all: same metrics fingerprint as no
        # front door (no events, no extra yields, zero blame charges).
        plain = run_config(tiny_config(seed=7, total_queries=600))
        fronted = run_config(tiny_config(
            seed=7, total_queries=600,
            admission=AdmissionConfig(max_inflight=1_000_000,
                                      max_waiting=1_000_000)))
        assert summaries(plain) == summaries(fronted)
        report = fronted.admission
        assert report.reconciles()
        assert report.shed_total == 0 and report.max_waiting_seen == 0

    def test_arrivals_off_leaves_legacy_path_untouched(self):
        # No arrivals, no admission: the config builds no controller at
        # all, so the legacy path cannot even observe the new layer.
        result = run_config(tiny_config(seed=7, total_queries=600))
        assert result.admission is None


class TestNoisyNeighbour:
    def test_quiet_tenant_never_sheds(self):
        # Tenant 0 hammers its namespace open loop through a tiny front
        # door; tenant 1 runs the ordinary closed-loop workload behind
        # an ample one.  Admission is per-tenant, so the noisy tenant's
        # sheds must stay its own: quiet tenant shed rate exactly 0.
        config = tiny_config(
            journal_area_bytes=1 * MIB, num_keys=128, total_queries=600,
            tenants=(
                TenantSpec(
                    name="noisy",
                    arrivals=ArrivalSpec(rate_ops_per_sec=300_000.0,
                                         process="bursts"),
                    admission=AdmissionConfig(policy="queue",
                                              max_inflight=2,
                                              max_waiting=4)),
                TenantSpec(
                    name="quiet",
                    admission=AdmissionConfig(max_inflight=64,
                                              max_waiting=64))))
        result = run_config(config)
        reports = {tenant.name: tenant.admission
                   for tenant in result.tenants}
        assert reports["noisy"].shed_total > 0
        assert reports["quiet"].shed_total == 0
        assert reports["quiet"].shed_rate == 0.0
        for report in reports.values():
            assert report.reconciles()


class TestCrashMidBurst:
    @pytest.mark.parametrize("mode", ["baseline", "checkin"])
    def test_acked_survives_shed_never_acked(self, mode):
        sweep = open_loop_crash_sweep(mode, crash_points=6)
        assert sweep.ok, sweep.failures()
        # The disjointness claim is only exercised if sheds happened.
        assert sweep.total_shed() > 0

    def test_sweep_is_deterministic(self):
        first = open_loop_crash_sweep("checkin", crash_points=4)
        second = open_loop_crash_sweep("checkin", crash_points=4)
        assert first.digest() == second.digest()
