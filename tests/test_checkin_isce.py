"""Unit tests for the ISCE components: processor policy, log manager,
deallocator."""

import pytest

from repro.checkin.checkpoint import CheckpointProcessor, _contiguous_runs
from repro.flash import FlashArray, FlashGeometry, FlashTiming
from repro.ftl import Ftl, FtlConfig
from repro.sim import Simulator, spawn
from repro.ssd.commands import CowEntry


def make_processor(mapping_unit=512, allow_remap=True):
    sim = Simulator()
    geometry = FlashGeometry(channels=2, packages_per_channel=1,
                             dies_per_package=1, planes_per_die=1,
                             blocks_per_plane=16, pages_per_block=8)
    array = FlashArray(sim, geometry, FlashTiming(
        read_ns=10_000, program_ns=100_000, erase_ns=1_000_000))
    ftl = Ftl(sim, array, FtlConfig(mapping_unit=mapping_unit))
    return sim, ftl, CheckpointProcessor(sim, ftl, allow_remap=allow_remap)


def run(sim, generator):
    proc = spawn(sim, generator)
    sim.run()
    assert proc.ok, proc.exception
    return proc.value


class TestRemappability:
    def test_aligned_mapped_entry_remappable(self):
        sim, ftl, processor = make_processor()

        def setup():
            yield from ftl.write(0, 1, tags=["j"], stream="journal")

        run(sim, setup())
        assert processor.is_remappable(CowEntry(src_lba=0, dst_lba=100))

    def test_unmapped_source_not_remappable(self):
        _sim, _ftl, processor = make_processor()
        assert not processor.is_remappable(CowEntry(src_lba=0, dst_lba=100))

    def test_offset_entry_not_remappable(self):
        sim, ftl, processor = make_processor()
        run(sim, ftl.write(0, 1, tags=["j"], stream="journal"))
        assert not processor.is_remappable(
            CowEntry(src_lba=0, dst_lba=100, src_offset=128, length_bytes=128))

    def test_sub_length_entry_not_remappable(self):
        sim, ftl, processor = make_processor()
        run(sim, ftl.write(0, 1, tags=["j"], stream="journal"))
        assert not processor.is_remappable(
            CowEntry(src_lba=0, dst_lba=100, length_bytes=384))

    def test_misaligned_lbas_not_remappable_with_large_unit(self):
        sim, ftl, processor = make_processor(mapping_unit=4096)
        run(sim, ftl.write(0, 8, tags=None, stream="journal"))
        # whole-unit source but sector-misaligned destination
        assert not processor.is_remappable(
            CowEntry(src_lba=0, dst_lba=101, nsectors=8))
        assert processor.is_remappable(
            CowEntry(src_lba=0, dst_lba=104, nsectors=8))

    def test_remap_disabled_device(self):
        sim, ftl, processor = make_processor(allow_remap=False)
        run(sim, ftl.write(0, 1, tags=["j"], stream="journal"))
        assert not processor.is_remappable(CowEntry(src_lba=0, dst_lba=100))

    def test_mismatched_spans_not_remappable(self):
        sim, ftl, processor = make_processor()
        run(sim, ftl.write(0, 2, tags=["a", "b"], stream="journal"))
        assert not processor.is_remappable(
            CowEntry(src_lba=0, dst_lba=100, nsectors=1, src_nsectors=2))


class TestProcess:
    def test_mixed_batch_splits_remap_and_copy(self):
        sim, ftl, processor = make_processor()

        def scenario():
            yield from ftl.write(0, 2, tags=["a", "b"], stream="journal")
            entries = (
                CowEntry(src_lba=0, dst_lba=100),                  # remap
                CowEntry(src_lba=1, dst_lba=108, src_offset=0,
                         length_bytes=256),                        # copy
            )
            remapped, copied = yield from processor.process(entries)
            return remapped, copied

        remapped, copied = run(sim, scenario())
        assert remapped == 1
        assert copied == 1

    def test_pacing_skipped_without_pressure(self):
        sim, ftl, processor = make_processor()
        processor.host_pressure = lambda: False
        assert processor._pace_delay(100) == 0

    def test_pacing_accumulates_under_pressure(self):
        sim, ftl, processor = make_processor()
        processor.host_pressure = lambda: True
        first = processor._pace_delay(10)
        second = processor._pace_delay(10)
        assert second > first >= 0


class TestContiguousRuns:
    def test_empty(self):
        assert _contiguous_runs([]) == []

    def test_single(self):
        assert _contiguous_runs([5]) == [(5, 1)]

    def test_merges_adjacent(self):
        assert _contiguous_runs([1, 2, 3, 7, 8, 12]) == \
            [(1, 3), (7, 2), (12, 1)]


class TestLogManagerAndDeallocator:
    def test_log_manager_tracks_and_resets(self):
        from repro.checkin.log_manager import LogManager
        sim, ftl, _processor = make_processor()
        manager = LogManager(sim, ftl, metadata_update_interval=2)

        def scenario():
            yield from manager.note_journal_write(0, 4)
            yield from manager.note_journal_write(4, 4)

        run(sim, scenario())
        assert manager.committed_ranges == [(0, 4), (4, 4)]
        manager.checkpoint_created()
        assert manager.committed_ranges == []

    def test_deallocator_frees_and_counts(self):
        from repro.checkin.deallocator import Deallocator
        sim, ftl, _processor = make_processor()
        deallocator = Deallocator(sim, ftl)

        def scenario():
            yield from ftl.write(0, 4, tags=list("abcd"), stream="journal")
            freed = yield from deallocator.delete_logs(0, 4)
            return freed

        assert run(sim, scenario()) == 4
        assert ftl.stats.value("isce.deleted_log_units") == 4

    def test_deallocator_gc_policy(self):
        from repro.checkin.deallocator import Deallocator
        sim, ftl, _processor = make_processor()
        deallocator = Deallocator(sim, ftl)
        # Fresh device: plenty of free blocks -> no GC even when idle.
        assert not deallocator.should_collect(device_idle=True)
        assert not deallocator.should_collect(device_idle=False)
