"""Pure-logic tests for checkpointer helpers and report math."""

import pytest

from repro.checkin.format import LogType
from repro.engine import CheckpointPolicy, CheckpointReport, cow_entry_for
from repro.engine.records import JournalEntry


def entry(**kwargs):
    defaults = dict(key=1, version=2, target_lba=1000, target_nsectors=2,
                    value_bytes=900, stored_bytes=1024, journal_lba=16,
                    journal_nsectors=2, src_offset=0,
                    log_type=LogType.FULL, exclusive_sectors=True)
    defaults.update(kwargs)
    return JournalEntry(**defaults)


class TestCowEntryFor:
    def test_full_exclusive_becomes_plain_descriptor(self):
        cow = cow_entry_for(entry())
        assert cow.src_lba == 16
        assert cow.dst_lba == 1000
        assert cow.nsectors == 2
        assert cow.src_nsectors == 2
        assert cow.src_offset == 0
        assert cow.length_bytes is None  # remap-eligible shape

    def test_merged_carries_offset_and_length(self):
        cow = cow_entry_for(entry(log_type=LogType.MERGED,
                                  exclusive_sectors=False,
                                  src_offset=256, stored_bytes=256,
                                  value_bytes=200, target_nsectors=1,
                                  journal_nsectors=1))
        assert cow.src_offset == 256
        assert cow.length_bytes == 256
        assert cow.nsectors == 1

    def test_packed_log_never_remap_shaped(self):
        cow = cow_entry_for(entry(log_type=LogType.FULL,
                                  exclusive_sectors=False,
                                  src_offset=16))
        assert cow.length_bytes is not None

    def test_partial_with_zero_offset_still_copy_shaped(self):
        cow = cow_entry_for(entry(log_type=LogType.PARTIAL,
                                  exclusive_sectors=True,
                                  src_offset=0, stored_bytes=384,
                                  value_bytes=300, target_nsectors=1,
                                  journal_nsectors=1))
        assert cow.length_bytes == 384


class TestCheckpointReport:
    def test_duration(self):
        report = CheckpointReport(strategy="x", started_at=100,
                                  finished_at=400)
        assert report.duration_ns == 300

    def test_defaults(self):
        report = CheckpointReport(strategy="x", started_at=0)
        assert report.remapped_units == 0
        assert report.journal_sectors_freed == 0


class TestCheckpointPolicy:
    def test_defaults(self):
        policy = CheckpointPolicy()
        assert policy.parallelism >= 1
        assert policy.cow_batch >= 1
        assert policy.metadata_bytes_per_entry > 0
