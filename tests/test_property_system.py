"""Property-based tests over the full engine: random op sequences.

Hypothesis drives randomized interleavings of puts, gets, checkpoints and
crash-point recoveries against a small Check-In system, checking the
invariants that must survive anything:

* a read returns the exact version most recently committed for that key;
* recovery never loses an acknowledged update and never invents one;
* checkpoints never change observable values.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import EngineConfig, StorageEngine
from repro.engine.recovery import check_durability
from repro.flash import FlashGeometry, FlashTiming
from repro.ftl import FtlConfig
from repro.sim import Simulator, spawn
from repro.ssd import InterfaceConfig, Ssd, SsdSpec

KEYS = 12

# Operations: ("put", key) | ("get", key) | ("ckpt",)
OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, KEYS - 1)),
        st.tuples(st.just("get"), st.integers(0, KEYS - 1)),
        st.tuples(st.just("ckpt")),
    ),
    min_size=1, max_size=40)


def build(mode):
    sim = Simulator()
    unit = 512 if mode in ("isc_c", "checkin") else 4096
    ssd = Ssd(sim, SsdSpec(
        geometry=FlashGeometry(channels=2, packages_per_channel=1,
                               dies_per_package=1, planes_per_die=2,
                               blocks_per_plane=16, pages_per_block=8),
        timing=FlashTiming(read_ns=10_000, program_ns=100_000,
                           erase_ns=1_000_000),
        ftl=FtlConfig(mapping_unit=unit),
        interface=InterfaceConfig(queue_depth=8),
        enable_isce=(mode != "baseline"),
        allow_remap=(mode in ("isc_c", "checkin"))))
    engine = StorageEngine(sim, ssd, EngineConfig(
        mode=mode, journal_lba_start=0, journal_sectors=2048,
        meta_lba_start=2048, meta_sectors=64, data_lba_start=2112,
        data_sectors=2048, mapping_unit=unit, group_commit_ns=2_000,
        mem_cache_records=4, verify_reads=True))
    engine.load([(key, 200 + 37 * key) for key in range(KEYS)])
    engine.start()
    return sim, engine


def execute(sim, engine, operations):
    committed = {}
    observed = []

    def driver():
        for operation in operations:
            if operation[0] == "put":
                key = operation[1]
                version = yield from engine.put(key)
                committed[key] = version
            elif operation[0] == "get":
                key = operation[1]
                version = yield from engine.get(key)
                observed.append((key, version, committed.get(key, 0)))
            else:
                yield from engine.checkpoint()

    proc = spawn(sim, driver())
    while not proc.triggered:
        assert sim.step(), "simulation starved"
    assert proc.ok, proc.exception
    return committed, observed


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=OPERATIONS)
def test_property_reads_see_committed_versions_checkin(operations):
    sim, engine = build("checkin")
    _committed, observed = execute(sim, engine, operations)
    for key, version, expected in observed:
        assert version == expected, (key, version, expected)
    engine.shutdown()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=OPERATIONS)
def test_property_reads_see_committed_versions_baseline(operations):
    sim, engine = build("baseline")
    _committed, observed = execute(sim, engine, operations)
    for key, version, expected in observed:
        assert version == expected, (key, version, expected)
    engine.shutdown()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=OPERATIONS)
def test_property_durability_after_any_sequence(operations):
    sim, engine = build("checkin")
    committed, _observed = execute(sim, engine, operations)
    check_durability(engine, committed)
    engine.shutdown()
