"""Unit tests for the host/device journal-log format contract."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.checkin import (
    ALIGN_SIZES,
    LogType,
    MergedPayload,
    align_full,
    align_sub_sector,
    extract_part,
)
from repro.common.errors import EngineError


class TestAlignSubSector:
    @pytest.mark.parametrize("size,expected", [
        (1, 128), (128, 128), (129, 256), (256, 256),
        (300, 384), (384, 384), (385, 512), (512, 512),
    ])
    def test_alignment_classes(self, size, expected):
        assert align_sub_sector(size) == expected

    def test_rejects_zero_and_oversize(self):
        with pytest.raises(EngineError):
            align_sub_sector(0)
        with pytest.raises(EngineError):
            align_sub_sector(513)

    @given(st.integers(min_value=1, max_value=512))
    def test_result_is_align_class(self, size):
        result = align_sub_sector(size)
        assert result in ALIGN_SIZES
        assert result >= size
        assert result - size < 128


class TestAlignFull:
    def test_uncompressed_rounds_to_sectors(self):
        assert align_full(513) == 1024
        assert align_full(1024) == 1024
        assert align_full(1025) == 1536

    def test_compression_shrinks(self):
        # 4096 at 50% compression -> 2048 (already sector aligned)
        assert align_full(4096, compress_ratio=0.5) == 2048

    def test_never_below_one_sector(self):
        assert align_full(600, compress_ratio=0.01) == 512

    def test_validation(self):
        with pytest.raises(EngineError):
            align_full(512)  # not > 512
        with pytest.raises(EngineError):
            align_full(1024, compress_ratio=0.0)
        with pytest.raises(EngineError):
            align_full(1024, compress_ratio=1.5)

    @given(st.integers(min_value=513, max_value=100_000),
           st.floats(min_value=0.1, max_value=1.0))
    def test_sector_multiple(self, size, ratio):
        result = align_full(size, compress_ratio=ratio)
        assert result % 512 == 0
        assert result >= 512


class TestMergedPayload:
    def test_pack_two_values(self):
        merged = MergedPayload()
        off_a = merged.add(128, "A")
        off_b = merged.add(384, "B")
        assert (off_a, off_b) == (0, 128)
        assert merged.used_bytes == 512
        assert merged.part_at(0) == "A"
        assert merged.part_at(128) == "B"
        assert merged.part_at(64) is None

    def test_fits(self):
        merged = MergedPayload()
        merged.add(384, "x")
        assert merged.fits(128)
        assert not merged.fits(256)

    def test_overflow_rejected(self):
        merged = MergedPayload()
        merged.add(512, "full")
        with pytest.raises(EngineError):
            merged.add(128, "extra")

    def test_unaligned_part_rejected(self):
        with pytest.raises(EngineError):
            MergedPayload().add(100, "x")
        with pytest.raises(EngineError):
            MergedPayload().add(0, "x")


class TestExtractPart:
    def test_plain_sector(self):
        assert extract_part("tag", 0) == "tag"
        assert extract_part("tag", 128) is None

    def test_merged_sector(self):
        merged = MergedPayload()
        merged.add(256, "first")
        merged.add(128, "second")
        assert extract_part(merged, 0) == "first"
        assert extract_part(merged, 256) == "second"
        assert extract_part(merged, 384) is None


class TestLogType:
    def test_members(self):
        assert {t.value for t in LogType} == {"full", "partial", "merged"}
