#!/usr/bin/env python
"""Flash-lifetime study: GC pressure and Equation (1) across configs.

Run with::

    python examples/lifetime_study.py

Drives a deliberately small device hard enough that the journal ring
wraps and garbage collection must run, then compares GC invocations,
block erases and the paper's Equation (1) relative lifetime for the
baseline, ISC-C and Check-In — the Figure 8(b) story at example scale.
"""

from repro.analysis import format_table
from repro.common.units import MIB
from repro.experiments.base import QUICK, paper_config
from repro.system.system import run_config

MODES = ("baseline", "isc_c", "checkin")
PE_CYCLES = 3000


def main() -> None:
    rows = []
    lifetimes = {}
    for mode in MODES:
        config = paper_config(
            mode, QUICK,
            workload="WO",
            total_queries=30_000,
            num_keys=2_048,
            blocks_per_plane=5,         # ~20 MiB device -> the ring wraps
            journal_area_bytes=6 * MIB,
            checkpoint_interval_ns=10 ** 12,
            checkpoint_journal_quota=2 * MIB,
            gc_high_watermark=10,
        )
        metrics = run_config(config).metrics
        # Equation (1) at equal work: T_op normalised to the common query
        # budget, so configurations compare at the same operations served.
        erases = max(1, metrics.erase_count())
        lifetimes[mode] = PE_CYCLES * config.total_queries / erases
        rows.append([
            mode,
            metrics.gc_invocations(),
            metrics.gc_migrated_units(),
            metrics.erase_count(),
            metrics.waf(),
            lifetimes[mode] / 1e6,
        ])
    print(format_table(
        ["config", "gc_invocations", "migrated_units", "erases", "WAF",
         "rel_lifetime"],
        rows, title="GC pressure and Equation (1) lifetime"))

    print(f"\nCheck-In lifetime vs baseline: "
          f"{lifetimes['checkin'] / lifetimes['baseline']:.2f}x "
          f"(paper: 3.86x)")
    print(f"Check-In lifetime vs ISC-C:    "
          f"{lifetimes['checkin'] / lifetimes['isc_c']:.2f}x "
          f"(paper: 1.81x)")


if __name__ == "__main__":
    main()
