#!/usr/bin/env python
"""Compare all five configurations on a YCSB workload.

Run with::

    python examples/ycsb_comparison.py [workload] [threads]

(defaults: workload A, 32 threads).  Prints the throughput / latency /
redundant-write / checkpoint-time comparison that summarises the paper's
headline results, using the same full-system runs the benchmarks use.
"""

import sys

from repro.analysis import format_table, reduction_pct
from repro.common.units import MIB, MS
from repro.experiments.base import ALL_MODES, QUICK, paper_config
from repro.system.system import run_config


def main(workload: str = "A", threads: int = 32) -> None:
    rows = []
    results = {}
    for mode in ALL_MODES:
        config = paper_config(
            "baseline", QUICK,
            workload=workload,
            threads=threads,
            total_queries=12_000,
            checkpoint_interval_ns=60 * MS,
            checkpoint_journal_quota=16 * MIB,
        ).with_mode(mode)
        result = run_config(config)
        results[mode] = result
        metrics = result.metrics
        rows.append([
            mode,
            metrics.throughput_qps(),
            metrics.latency_all.mean() / 1e3,
            metrics.latency_all.p999() / 1e3,
            result.mean_checkpoint_ns() / 1e6,
            metrics.redundant_write_bytes() / MIB,
            metrics.remapped_units(),
        ])
    print(format_table(
        ["config", "qps", "mean_us", "p99.9_us", "ckpt_ms",
         "redundant_MiB", "remaps"],
        rows, float_format=".1f",
        title=f"YCSB workload {workload}, {threads} threads, zipfian"))

    base = results["baseline"].metrics
    best = results["checkin"].metrics
    print(f"\nCheck-In vs baseline: "
          f"throughput {best.throughput_qps() / base.throughput_qps():.2f}x, "
          f"redundant writes -"
          f"{reduction_pct(base.redundant_write_bytes(), best.redundant_write_bytes()):.1f}%, "
          f"p99.9 -"
          f"{reduction_pct(base.latency_all.p999(), best.latency_all.p999()):.1f}%")


if __name__ == "__main__":
    workload_arg = sys.argv[1] if len(sys.argv) > 1 else "A"
    threads_arg = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    main(workload_arg, threads_arg)
