#!/usr/bin/env python
"""Crash-consistency demo: sudden power loss and two-level recovery.

Run with::

    python examples/crash_recovery.py

Runs a write workload against a Check-In system, "pulls the plug" at an
arbitrary simulated instant, then performs the paper's §III-G recovery:

1. device level — rebuild the FTL mapping table from the OOB records and
   the durable remap/trim log (verified to match the live mapping);
2. engine level — restore the last checkpoint and replay the journal,
   then verify every acknowledged update is present and nothing is
   invented.
"""

from repro.engine.recovery import (
    check_durability,
    recover_store,
    verify_device_recovery,
)
from repro.sim import spawn
from repro.system import KvSystem, tiny_config


def main() -> None:
    # Recovery verification needs the durable-op log in the FTL.
    config = tiny_config(mode="checkin", num_keys=64, seed=7,
                         snapshot_metadata=True, track_op_log=True)
    system = KvSystem(config)
    system.load()
    system.engine.start()
    engine, sim = system.engine, system.sim

    acknowledged = {}

    def client():
        for i in range(300):
            key = i % 64
            version = yield from engine.put(key)
            acknowledged[key] = version
            if i == 150:
                report = yield from engine.checkpoint()
                print(f"mid-run checkpoint: {report.entries_checkpointed} "
                      f"entries, {report.remapped_units} remapped")

    proc = spawn(sim, client())
    # Crash at an arbitrary point: stop driving the event loop mid-flight.
    steps = 0
    while not proc.triggered and steps < 4_000:
        sim.step()
        steps += 1
    print(f"power lost at t={sim.now / 1e6:.2f} ms "
          f"({len(acknowledged)} keys acknowledged, "
          f"{'workload finished' if proc.triggered else 'mid-workload'})")

    # --- device-level SPOR ------------------------------------------------
    verify_device_recovery(system.ssd.ftl)
    print("device recovery: OOB + op-log scan rebuilt the exact mapping")

    # --- engine-level replay ----------------------------------------------
    recovered = recover_store(engine)
    check_durability(engine, acknowledged)
    replayed = sum(1 for k in acknowledged
                   if recovered.replayed_from_journal.get(k, 0) >=
                   acknowledged[k])
    from_ckpt = sum(1 for k in acknowledged
                    if recovered.from_checkpoint.get(k, 0) >= acknowledged[k])
    print(f"engine recovery: every acknowledged update recovered "
          f"({from_ckpt} keys satisfied by the checkpoint, "
          f"{replayed} by journal replay)")


if __name__ == "__main__":
    main()
