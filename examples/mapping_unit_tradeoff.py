#!/usr/bin/env python
"""The mapping-unit trade-off: remap eligibility vs space overhead.

Run with::

    python examples/mapping_unit_tradeoff.py

Sweeps the FTL mapping unit for ISC-C and Check-In on the paper's mixed
record pattern P4 (128-4096 B), showing the Figure 13 story at example
scale: larger units shrink the mapping table but cost alignment padding,
and only Check-In's journaling keeps checkpoints remappable.
"""

from repro.analysis import format_table
from repro.experiments.base import QUICK, paper_config
from repro.system.system import run_config

UNITS = (512, 1024, 4096)


def main() -> None:
    rows = []
    for unit in UNITS:
        measured = {}
        for mode in ("isc_c", "checkin"):
            config = paper_config(mode, QUICK, mapping_unit=unit,
                                  size_spec="P4", threads=64,
                                  total_queries=8_000)
            metrics = run_config(config).metrics
            measured[mode] = metrics
        checkin = measured["checkin"]
        iscc = measured["isc_c"]
        journal_ratio = (checkin.journal_stored_bytes() /
                         iscc.journal_stored_bytes()
                         if iscc.journal_stored_bytes() else 0.0)
        rows.append([
            unit,
            iscc.throughput_qps(),
            checkin.throughput_qps(),
            checkin.remapped_units(),
            (journal_ratio - 1.0) * 100.0,
        ])
    print(format_table(
        ["mapping_unit", "isc_c_qps", "checkin_qps", "checkin_remaps",
         "journal_overhead_%"],
        rows, float_format=".1f",
        title="Mapping-unit trade-off (pattern P4, 64 threads)"))
    print("\nLarger units: fewer mapping entries but fewer remappable logs "
          "and more padding —\nthe paper's 'appropriate trade-offs are "
          "required when selecting a mapping unit'.")


if __name__ == "__main__":
    main()
