#!/usr/bin/env python
"""Quickstart: build a Check-In key-value store, query it, checkpoint it.

Run with::

    python examples/quickstart.py

Demonstrates the public API end to end: configure a system, load keys,
issue queries from a simulation process, trigger an in-storage checkpoint,
and read the device statistics that the paper's evaluation is built on.
"""

from repro.common.units import format_bytes, format_time
from repro.sim import spawn
from repro.system import KvSystem, tiny_config


def main() -> None:
    # A small Check-In system: 512 B sub-page FTL, sector-aligned
    # journaling, in-storage checkpoint engine.
    system = KvSystem(tiny_config(mode="checkin", num_keys=128))
    system.load()
    system.engine.start()
    engine, sim = system.engine, system.sim

    def scenario():
        # Update a handful of keys; each put write-ahead journals first.
        for key in range(16):
            version = yield from engine.put(key)
            assert version == 1
        # Read one back: served from engine memory or the device.
        version = yield from engine.get(3)
        print(f"read key 3 -> version {version} at t={format_time(sim.now)}")

        # Checkpoint: the engine offloads CoW descriptors to the SSD,
        # which remaps aligned journal logs with zero flash writes.
        report = yield from engine.checkpoint()
        print(f"checkpoint [{report.strategy}]: "
              f"{report.entries_checkpointed} entries in "
              f"{format_time(report.duration_ns)} — "
              f"{report.remapped_units} units remapped, "
              f"{report.copied_units} copied")

        # The data now lives at its data-area home.
        version = yield from engine.get(3)
        print(f"read key 3 after checkpoint -> version {version}")

    proc = spawn(sim, scenario())
    while not proc.triggered:
        assert sim.step(), "simulation starved"
    if not proc.ok:
        raise proc.exception
    engine.shutdown()
    sim.run()

    stats = system.ssd.stats
    print("\ndevice statistics:")
    print(f"  flash programs : {stats.value('flash.program'):6d} "
          f"({format_bytes(stats.bytes('flash.program'))})")
    print(f"  flash reads    : {stats.value('flash.read'):6d}")
    print(f"  remapped units : {stats.value('isce.remapped_units'):6d}")
    print(f"  copied units   : {stats.value('isce.copied_units'):6d}")
    print(f"  journal commits: {stats.value('journal.transactions'):6d}")


if __name__ == "__main__":
    main()
