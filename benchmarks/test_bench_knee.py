"""Benchmark: open-loop latency-vs-offered-load knee per checkpoint mode.

Not a paper figure — the paper's closed-loop YCSB clients self-throttle
at saturation, so "baseline collapses under checkpoint storms" never
shows up as a number there.  The knee sweep offers load open loop and
locates the highest rate each mode sustains inside a fixed p99 + shed
SLO; in-storage checkpointing must move that knee measurably right.
"""

from repro.experiments.base import QUICK
from repro.experiments.interference import run_burst_storm
from repro.experiments.knee import SHED_SLO, run_knee


def test_knee_checkin_sustains_more_offered_load(benchmark, record_result):
    """The PR's acceptance criterion: checkin's knee sits at a measurably
    higher offered load than baseline's, at the same SLO."""
    result = benchmark.pedantic(run_knee, kwargs=dict(scale=QUICK),
                                rounds=1, iterations=1)
    record_result("knee", result.table(), result)

    for mode in ("baseline", "checkin"):
        points = result.points[mode]
        assert points, "knee search probed no points"
        # Every point ran long enough to see checkpoint activity, and
        # the admission ledger balanced at each one.
        for point in points:
            assert point.checkpoints >= 1
            assert point.submitted == point.completed + point.shed
        # Sustained points really met the envelope.
        sustained = [p for p in points if p.met(result.slo_p99_us)]
        assert sustained
        for point in sustained:
            assert point.shed_rate <= SHED_SLO

    # The headline, with real margin: in-storage checkpointing sustains
    # at least 2x baseline's offered load under the freeze-consistency
    # lock (measured ~7x at this scale).
    assert result.sustainable_ops("baseline") > 0
    assert result.checkin_beats_baseline()
    assert result.knee_gain() > 2.0


def test_burst_storm_survival(benchmark, record_result):
    """Checkpoint storm under a flash-crowd burst: both modes survive
    with typed completions, checkin keeps measurably more goodput, and
    only baseline trips the overload watchdogs."""
    result = benchmark.pedantic(run_burst_storm, rounds=1, iterations=1)
    record_result("burst_storm", result.table(), result)

    for mode in ("baseline", "checkin"):
        # Survival: bounded waiting room, exact reconciliation.
        assert result.survived(mode)
        assert result.admission[mode].submitted > 0
        # The storm tenant really checkpointed during the burst.
        assert result.storm_checkpoints[mode] >= 1

    # Goodput is the robust discriminator (shed-rate ordering is
    # occupancy-timing noise at the crowd spike): checkin clears at
    # least 2x baseline's goodput at the same offered load.
    assert result.checkin_keeps_more_load()
    assert result.goodput_qps["checkin"] > 2.0 * result.goodput_qps["baseline"]
    # The PR-5 watchdogs double as overload detectors.  At this scale
    # the 4x crowd spike briefly fills either mode's waiting room
    # (admission_overload), but the engine-side detectors separate the
    # modes cleanly: only host-level checkpointing stalls the engine
    # queue, and it runs checkpoint-overdue far more often.
    assert result.overload_detected("baseline")
    base_counts = result.watchdog_counts["baseline"]
    checkin_counts = result.watchdog_counts["checkin"]
    assert base_counts.get("queue_stall", 0) > 0
    assert checkin_counts.get("queue_stall", 0) == 0
    assert base_counts.get("checkpoint_overdue", 0) > \
        checkin_counts.get("checkpoint_overdue", 0)
