"""Benchmark regenerating Figure 12 — checkpoint-interval sensitivity."""

from repro.experiments.fig12 import run_fig12


def test_fig12_interval_sensitivity(benchmark, record_result):
    """Baseline throughput depends on the interval; Check-In is steady."""
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    text = result.table() + (
        f"\n\nthroughput spread across intervals: "
        f"baseline {result.spread_pct('baseline'):.1f}%, "
        f"checkin {result.spread_pct('checkin'):.1f}%")
    record_result("fig12", text, result)

    # Shape: the baseline's throughput varies strongly with the interval
    # while Check-In's barely moves (the paper's 'better and steady').
    assert result.spread_pct("baseline") > 2.0 * result.spread_pct("checkin")
    assert result.spread_pct("checkin") < 10.0
    # The baseline gains from longer intervals (last >= first point).
    baseline = result.throughput_qps["baseline"]
    assert baseline[-1] >= baseline[0]
    # Check-In beats the baseline at every interval.
    for base_qps, checkin_qps in zip(result.throughput_qps["baseline"],
                                     result.throughput_qps["checkin"]):
        assert checkin_qps > base_qps
