#!/usr/bin/env python
"""CI benchmark-regression gate.

Compare a fresh ``repro bench`` artifact against the committed baseline
and exit non-zero when any gated metric drifts past its tolerance::

    PYTHONPATH=src python -m repro bench --threads 8 --queries 4000 \
        --artifact /tmp/bench_now.json
    python benchmarks/regress.py /tmp/bench_now.json

The baseline defaults to ``BENCH_baseline.json`` at the repo root.
Both files carry a ``config_hash`` over their bench parameters; the gate
refuses to compare artifacts of different configurations — a silent
config change would make any drift number meaningless.

The simulator is seed-deterministic, so a same-commit rerun reproduces
the baseline exactly; the tolerances below are headroom for intentional
behaviour changes, not noise margins.  When a change legitimately moves
a metric, regenerate and commit the baseline in the same PR::

    PYTHONPATH=src python -m repro bench --threads 8 --queries 4000 \
        --artifact BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.benchfile import load_bench_artifact  # noqa: E402
from repro.telemetry.names import safe_ratio  # noqa: E402

TOLERANCES = {
    "throughput_qps": 0.10,
    "latency_p50_us": 0.20,
    "latency_p99_us": 0.30,
    "waf": 0.10,
    "redundant_units": 0.15,
    "checkpoint_total_ms": 0.30,
    "operations": 0.0,
    "ops_per_sec": 0.75,
    "ckpt_blame_p99_share": 0.50,
    "knee_sustainable_ops": 0.30,
    "rto_warm_replica_ns": 0.50,
}
"""Allowed relative drift per gated metric (0.0 = must match exactly).

``ops_per_sec`` measures host wall-clock simulator speed, the one metric
that is *not* seed-deterministic: CI machines vary and share cores.  Its
very loose tolerance only catches a simulator that got several times
slower (a hot-path regression), never scheduling jitter.

``ckpt_blame_p99_share`` is the checkpoint-attributable fraction of the
>p99 tail from the blame ledgers (``repro.obs``): for the gated checkin
configuration it should stay near zero — growth means checkpoints
started leaking into the tail, the paper's headline regression.  The
share is a fraction in [0, 1], so the 50% tolerance is *relative* to a
small baseline, keeping the gate tight in absolute terms.

``knee_sustainable_ops`` is checkin's open-loop knee (highest offered
load sustained inside the knee experiment's p99 + shed SLO).  The
bisection resolves the knee to ~12.5%, so 30% headroom gates real
capacity collapses without tripping on bracket-boundary wobble.

``rto_warm_replica_ns`` is the mean warm-promote failover RTO of the
compact seeded kill campaign — lower is better, so it gates on growth:
50% headroom lets the failover-detection constant or drain behaviour be
tuned intentionally while catching a promote path that stopped being
warm (an order-of-magnitude jump toward snapshot-restore territory)."""

HIGHER_IS_BETTER = {"throughput_qps", "ops_per_sec",
                    "knee_sustainable_ops"}
"""Metrics that only gate in the downward direction; everything else
gates on getting *bigger* (latency, WAF, redundant writes, stalls)."""


def check(baseline: dict, current: dict) -> list:
    """All tolerance breaches of ``current`` vs ``baseline``."""
    problems = []
    if baseline["config_hash"] != current["config_hash"]:
        return [f"config_hash mismatch: baseline ran "
                f"{baseline['bench']}, current ran {current['bench']} — "
                "regenerate the baseline for this configuration"]
    base_metrics = baseline["metrics"]
    cur_metrics = current["metrics"]
    for metric, tolerance in TOLERANCES.items():
        if metric not in base_metrics:
            problems.append(f"{metric}: missing from baseline")
            continue
        if metric not in cur_metrics:
            problems.append(f"{metric}: missing from current artifact")
            continue
        base = base_metrics[metric]
        cur = cur_metrics[metric]
        if metric in HIGHER_IS_BETTER:
            drift = safe_ratio(base - cur, abs(base))   # drop = positive
        else:
            drift = safe_ratio(cur - base, abs(base))   # growth = positive
        if drift > tolerance:
            direction = "dropped" if metric in HIGHER_IS_BETTER \
                else "grew"
            problems.append(
                f"{metric}: {direction} {drift * 100.0:.1f}% "
                f"(baseline {base:g} -> current {cur:g}, "
                f"tolerance {tolerance * 100.0:.0f}%)")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when a bench artifact regresses vs the baseline")
    parser.add_argument("current", help="fresh BENCH_*.json to gate")
    parser.add_argument("--baseline",
                        default=str(REPO_ROOT / "BENCH_baseline.json"),
                        help="committed baseline artifact "
                             "(default: BENCH_baseline.json at repo root)")
    args = parser.parse_args(argv)
    try:
        baseline = load_bench_artifact(args.baseline)
        current = load_bench_artifact(args.current)
    except (OSError, ValueError) as exc:
        print(f"regress: {exc}", file=sys.stderr)
        return 2
    problems = check(baseline, current)
    for problem in problems:
        print(f"REGRESSION: {problem}", file=sys.stderr)
    if problems:
        print(f"regress: {len(problems)} metric(s) out of tolerance "
              f"(baseline commit {baseline.get('commit', '?')[:12]})")
        return 1
    print(f"regress: all {len(TOLERANCES)} gated metrics within "
          f"tolerance of {pathlib.Path(args.baseline).name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
