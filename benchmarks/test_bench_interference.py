"""Benchmark: multi-tenant checkpoint interference (shared-device QoS).

Not a paper figure — this regenerates the §V bandwidth-stealing claim
under namespace sharding: a checkpoint-storm tenant and a read-only
tenant share one device, and the reader's p99 is compared against its
own solo run for host-level (baseline) vs in-storage remap (checkin)
checkpointing.
"""

from repro.experiments.interference import run_interference


def test_interference_reader_tail(benchmark, record_result):
    """Remap checkpointing must degrade the co-tenant's p99 reads strictly
    less than host-level checkpointing does."""
    result = benchmark.pedantic(run_interference, rounds=1, iterations=1)
    record_result("interference", result.table(), result)

    for mode in ("baseline", "checkin"):
        assert result.p99_read_us[(mode, "solo")] > 0
        assert result.aggregate_qps[mode] > 0
        # The storm tenant really checkpointed while the reader ran.
        assert result.storm_checkpoints[mode] >= 1
        # Co-locating a write storm costs the reader tail latency in any
        # mode (that's raw bandwidth sharing, not checkpointing).
        assert result.contention(mode) > 2.0
        # Checkpoints never *improve* the co-tenant's tail.
        assert result.degradation(mode) >= 0.9

    # The headline: in-storage remap steals less reader tail than the
    # host-level journal round-trip (the PR's acceptance criterion).
    assert result.remap_beats_host_checkpointing()
    # With real margin, not a rounding accident: host-level
    # checkpointing inflates the reader's p99 by >50% over the
    # checkpoint-free control, while remap checkpointing stays within
    # 30% of it.
    assert result.degradation("baseline") > 1.5
    assert result.degradation("checkin") < 1.3
    # Remap checkpointing also keeps more aggregate throughput.
    assert result.aggregate_qps["checkin"] > result.aggregate_qps["baseline"]

    # The attribution view (locked placement, blame ledgers): the
    # ledgers don't just show the baseline tail is worse — they charge
    # it to checkpoint stages.  Host-level checkpointing owns a large
    # slice of the reader's >p99 time; remap barely registers.
    assert result.blame_isolates_checkpoints()
    assert result.ckpt_tail_share["baseline"] > 0.2
    assert result.ckpt_tail_share["checkin"] < 0.1
    assert result.ckpt_tail_share["baseline"] > \
        4 * result.ckpt_tail_share["checkin"]
