"""Benchmark: checkpoint-phase profiling via the span tracer.

Not a paper figure — this regenerates the *explanation* behind
Figs. 8–12: where each configuration's checkpoint time goes (journal
scan, host readback/rewrite vs device CoW/remap, metadata persist,
deallocation), measured from the end-to-end span trace instead of
ad-hoc counters.
"""

from typing import Any, List

from repro.analysis import format_table
from repro.system.config import SystemConfig
from repro.system.system import KvSystem
from repro.trace import clear_runs

MODES = ("baseline", "isc_b", "checkin")


def _run_traced(mode: str):
    config = SystemConfig(mode=mode, threads=8, total_queries=6_000,
                          verify_reads=False, trace=True)
    return KvSystem(config).run()


def test_trace_phase_breakdown(benchmark, record_result):
    """Per-configuration checkpoint phase decomposition from the tracer."""
    clear_runs()
    results = benchmark.pedantic(
        lambda: {mode: _run_traced(mode) for mode in MODES},
        rounds=1, iterations=1)
    clear_runs()

    summaries = {mode: results[mode].trace_summary for mode in MODES}
    phases = sorted({phase for summary in summaries.values()
                     for phase in summary.phase_totals})
    headers = ["mode", "ckpts", "ckpt_ms"] + [f"{p}_ms" for p in phases]
    rows: List[List[Any]] = []
    for mode in MODES:
        summary = summaries[mode]
        total_ms = sum(c["duration_ns"] for c in summary.checkpoints) / 1e6
        rows.append([mode, summary.checkpoint_count, total_ms]
                    + [summary.phase_totals.get(p, 0) / 1e6 for p in phases])
    text = format_table(headers, rows,
                        title="checkpoint phase breakdown (span tracer)")
    record_result("trace_phases", text)

    # Shape: every configuration checkpointed at least once and the trace
    # decomposes it into named phases.
    for mode in MODES:
        assert summaries[mode].checkpoint_count >= 1, mode
        assert summaries[mode].phase_totals, mode
        assert summaries[mode].open_spans == 0, mode
    # The baseline pays for the host round-trip (journal readback + data
    # rewrite); the in-storage configurations never enter those phases.
    assert summaries["baseline"].phase_totals.get("data_write", 0) > 0
    assert "data_write" not in summaries["isc_b"].phase_totals
    assert "data_write" not in summaries["checkin"].phase_totals
    assert "cow_remap" in summaries["checkin"].phase_totals
    # The paper's headline: Check-In's checkpoints are dramatically
    # cheaper than the baseline's.
    total = lambda mode: sum(  # noqa: E731 - tiny local helper
        c["duration_ns"] for c in summaries[mode].checkpoints)
    assert total("checkin") < total("baseline")
