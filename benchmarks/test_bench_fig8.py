"""Benchmarks regenerating Figure 8 — redundant writes, GC, lifetime."""

from repro.analysis import ordering_holds
from repro.experiments.fig8 import run_fig8a, run_fig8b


def test_fig8a_redundant_writes(benchmark, record_result):
    """Redundant writes vs checkpoint interval, all five configurations."""
    result = benchmark.pedantic(run_fig8a, rounds=1, iterations=1)
    text = result.table() + (
        f"\n\nCheck-In vs baseline: -{result.checkin_vs_baseline_pct():.1f}% "
        f"(paper: -94.3%)"
        f"\nCheck-In vs ISC-C:    -{result.checkin_vs_iscc_pct():.1f}% "
        f"(paper: -45.6%)")
    record_result("fig8a", text, result)

    # Shape: configuration ordering on mean redundant volume.
    means = {mode: result.mean_redundant(mode)
             for mode in result.redundant_mib}
    violation = ordering_holds(
        means, ["baseline", "isc_c", "checkin"], larger_first=True)
    assert violation is None, violation
    # Magnitude: the paper's 94.3% reduction, within a generous band.
    assert result.checkin_vs_baseline_pct() > 80.0
    # ISC-C also clearly better than Check-In is NOT true - Check-In wins.
    assert result.checkin_vs_iscc_pct() > 20.0
    # Longer intervals collapse duplicate versions: less redundant I/O.
    series = result.redundant_mib["baseline"]
    assert series[-1] < series[0]


def test_fig8b_gc_and_lifetime(benchmark, record_result):
    """GC invocations vs write-query count plus the Equation (1) estimate."""
    result = benchmark.pedantic(run_fig8b, rounds=1, iterations=1)
    text = result.table() + "\n\n" + result.lifetime_table() + (
        f"\n\nGC reduction vs baseline: {result.gc_vs_baseline_pct():.1f}% "
        f"(paper: 74.1%)"
        f"\nGC reduction vs ISC-C:    {result.gc_vs_iscc_pct():.1f}% "
        f"(paper: 44.8%)"
        f"\nlifetime vs baseline: {result.lifetime_vs_baseline():.2f}x "
        f"(paper: 3.86x)")
    record_result("fig8b", text, result)

    # Shape: GC grows with write volume for the baseline; the remapping
    # configurations collect far less.
    baseline = result.gc_counts["baseline"]
    assert baseline[-1] > baseline[0]
    assert result.total_gc("checkin") < result.total_gc("baseline")
    assert result.gc_vs_baseline_pct() > 40.0
    # Equation (1): Check-In extends lifetime (paper: 3.86x).
    assert result.lifetime_vs_baseline() > 1.5
