"""Extension benchmark: the RPO/RTO recovery matrix.

Not a paper figure — the robustness extension's headline: a warm
replica promoted on failure must serve its first read well before a
cold node can fetch, install and replay a snapshot.  The acceptance
bar is a >= 2x mean-RTO advantage at QUICK scale, with zero acked-write
loss at every seeded crash point (the campaign raises otherwise).
"""

from repro.experiments.base import QUICK
from repro.experiments.recovery_matrix import run_recovery_matrix


def test_recovery_matrix(benchmark, record_result):
    result = benchmark.pedantic(run_recovery_matrix, args=(QUICK,),
                                rounds=1, iterations=1)
    record_result("recovery_matrix", result.table())

    warm = result.row("warm_replica")
    cold = result.row("snapshot_replay")
    spor = result.row("spor_local")
    # Warm promote: continuously-replayed state, nothing to install.
    assert result.warm_speedup() >= 2.0
    # Warm RPO can only be the unshipped tail; cold additionally loses
    # acked-but-unexported ops, so it can never have *less* exposure.
    assert warm.rpo_ops <= cold.rpo_ops
    # The paper's local-restart story: nothing lost, but the journal
    # replay makes it slower to first read than a warm promote.
    assert spor.rpo_ops == 0.0
    assert warm.rto_ns < spor.rto_ns


def test_rto_metric_is_gated():
    """The bench artifact must carry and gate ``rto_warm_replica_ns``."""
    import regress

    from repro.analysis.benchfile import GATED_METRICS
    assert "rto_warm_replica_ns" in GATED_METRICS
    assert "rto_warm_replica_ns" in regress.TOLERANCES
    # Lower is better: the gate must fire on *growth*.
    assert "rto_warm_replica_ns" not in regress.HIGHER_IS_BETTER
