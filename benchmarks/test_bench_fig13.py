"""Benchmarks regenerating Figure 13 — mapping-unit sensitivity & space."""

from repro.experiments.fig13 import run_fig13a, run_fig13b


def test_fig13a_mapping_unit_throughput(benchmark, record_result):
    """Throughput for ISC-C and Check-In across mapping-unit sizes.

    Model note (see EXPERIMENTS.md): at simulation scale the dominant
    cost of large units is read-modify-write amplification, so absolute
    throughput *decreases* with the unit here, whereas the paper's
    testbed — dominated by per-unit metadata processing — increased.
    The comparative claim is preserved: Check-In outperforms ISC-C across
    units because only its journaling stays remappable/merge-friendly.
    """
    result = benchmark.pedantic(run_fig13a, rounds=1, iterations=1)
    record_result("fig13a", result.table(), result)

    # Check-In >= ISC-C at the main configurations.
    for unit in (512, 1024, 2048):
        assert result.gain_at(unit) >= 1.0
    # Remapping only happens for Check-In, and most at the 512 B unit.
    remaps = result.remapped_units["checkin"]
    assert remaps[0] > 0
    assert remaps[0] >= max(remaps)
    assert all(r == 0 for r in result.remapped_units["isc_c"])


def test_fig13b_space_overhead(benchmark, record_result):
    """Alignment padding: Check-In vs ISC-C for patterns P1-P4."""
    result = benchmark.pedantic(run_fig13b, rounds=1, iterations=1)
    record_result("fig13b", result.table(), result)

    # At the default 512 B unit, merging keeps the overhead negligible
    # (within a few percent either way of the packed format).
    for pattern in result.patterns:
        assert abs(result.overhead_pct(pattern, 512)) < 15.0
    # At 4 KiB units, padding costs something — the paper reports ~3 %
    # for its mixed patterns; the widest mix (P4) lands close to that,
    # and the small-value-heavy patterns pay more.
    assert 0.0 < result.overhead_pct("P4", 4096) < 15.0
    for pattern in result.patterns:
        assert result.overhead_pct(pattern, 4096) > \
            result.overhead_pct(pattern, 512)
