"""Benchmark regenerating Figure 10 — checkpointing time vs threads."""

from repro.analysis import ordering_holds
from repro.experiments.fig10 import run_fig10


def test_fig10_checkpoint_time(benchmark, record_result):
    """Locked-checkpoint duration per configuration across thread counts."""
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    record_result("fig10", result.table(), result)

    at_max = {mode: result.at_max_threads(mode) for mode in result.ckpt_ms}
    # Paper ordering: in-storage checkpointing shortens the checkpoint,
    # remapping shortens it dramatically. (5% slack for A/B noise.)
    violation = ordering_holds(
        at_max, ["baseline", "isc_b", "isc_c", "checkin"],
        larger_first=True, slack=1.05)
    assert violation is None, violation
    # Check-In's checkpoint is an order of magnitude below the baseline's.
    assert at_max["checkin"] < at_max["baseline"] / 5.0
    # More threads journal more data: time grows from the smallest sweep
    # point for the copying configurations.
    for mode in ("baseline", "isc_a", "isc_b"):
        series = result.series(mode)
        assert max(series) >= series[0]
    # ... while the remapping checkpoint stays nearly flat.
    checkin = result.series("checkin")
    assert max(checkin) < 3.0 * min(checkin)
