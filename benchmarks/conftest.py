"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures, asserts the
*shape* of the result (orderings, trends, rough factors — never absolute
numbers), prints the rows, and persists them under
``benchmarks/results/`` so EXPERIMENTS.md can reference them.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory experiment outputs are persisted into."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Callable saving (and echoing) one experiment's rendered output.

    Pass the result object as the third argument to also persist a
    machine-readable ``.json`` next to the text table.
    """
    from repro.analysis import save_json

    def _record(experiment_id: str, text: str, result=None) -> None:
        path = results_dir / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        if result is not None:
            save_json(result, results_dir / f"{experiment_id}.json")
        print(f"\n{text}\n[saved to {path}]")

    return _record
