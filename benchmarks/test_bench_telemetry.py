"""Benchmark: telemetry pipeline on one Check-In run.

Not a paper figure — this persists the observability artifacts the
other benchmarks explain: the sampled time series of a full Check-In
run (JSONL + the self-contained sparkline HTML report) and the
per-series overview table for EXPERIMENTS.md.
"""

from make_report import write_telemetry_html
from repro.system.config import SystemConfig
from repro.system.system import run_config
from repro.telemetry import (
    TelemetryConfig,
    summary_table,
    validate_telemetry_file,
    write_telemetry_jsonl,
)


def _run_sampled():
    config = SystemConfig(mode="checkin", threads=8, total_queries=6_000,
                          verify_reads=False,
                          telemetry=TelemetryConfig(interval_ns=500_000))
    return run_config(config)


def test_telemetry_pipeline(benchmark, record_result, results_dir):
    """Sampled run -> JSONL -> validator -> sparkline HTML report."""
    result = benchmark.pedantic(_run_sampled, rounds=1, iterations=1)
    sampler = result.telemetry
    assert sampler.samples > 10

    # the dump validates and covers the stack
    jsonl_path = results_dir / "telemetry.jsonl"
    write_telemetry_jsonl(str(jsonl_path), sampler)
    assert validate_telemetry_file(str(jsonl_path)) == []
    assert len(sampler.layers_covered()) >= 4
    assert len({series.name for series in sampler.all_series()}) >= 8

    # self-contained HTML report (inline SVG sparklines, no assets)
    html_path = write_telemetry_html(jsonl_path,
                                     results_dir / "telemetry.html")
    text = html_path.read_text()
    assert "<svg class='spark'" in text
    assert "<script" not in text

    record_result("telemetry", summary_table(sampler))
