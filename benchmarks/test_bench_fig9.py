"""Benchmark regenerating Figure 9 — tail latency."""

from repro.experiments.fig9 import run_fig9


def test_fig9_tail_latency(benchmark, record_result):
    """99.9/99.99 percentile latency: Check-In vs baseline and ISC-C."""
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    record_result("fig9", result.table() + "\n\n" + result.comparison_table(), result)

    for distribution in ("uniform", "zipfian"):
        # Check-In's p99.9 beats the baseline's substantially (the paper
        # reports -92%; our coarse latency model yields a smaller but
        # still decisive reduction).
        assert result.p999_reduction_vs_baseline(distribution) > 25.0
        # And the p99.99 beats ISC-C (paper: about -51%).
        assert result.p9999_reduction_vs_iscc(distribution) > 15.0
        # Absolute ordering at p99.9: checkin is the best of the three.
        p999 = {mode: result.p999_us[(distribution, mode)]
                for mode in ("baseline", "isc_c", "checkin")}
        assert p999["checkin"] <= min(p999["baseline"], p999["isc_c"])
