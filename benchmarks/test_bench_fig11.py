"""Benchmark regenerating Figure 11 — overall throughput and latency."""

from repro.experiments.base import QUICK
from repro.experiments.fig11 import run_fig11


def test_fig11_overall_throughput_latency(benchmark, record_result):
    """Workloads A/F/WO x threads x all five configurations."""
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    text = (result.table() + "\n\n" + result.comparison_table())
    record_result("fig11", text, result)

    # Headline direction: Check-In improves average throughput and cuts
    # average latency versus the baseline at the highest thread count.
    # (The paper reports +8.1% / -10.2% on its testbed; our simulated
    # checkpoint overhead is relatively heavier, so the gains are larger.)
    assert result.throughput_gain_pct() > 0.0
    assert result.latency_reduction_pct() > 0.0

    # Throughput grows (then saturates) with the thread count for every
    # configuration: the first sweep point is never the maximum.
    for workload in result.workloads:
        for mode in ("baseline", "checkin"):
            series = [result.throughput_qps[(workload, mode, t)]
                      for t in result.threads]
            assert max(series) >= series[0]
            # Latency grows with threads (closed loop deepens queues).
            lat = [result.latency_us[(workload, mode, t)]
                   for t in result.threads]
            assert lat[-1] >= lat[0]

    # Check-In >= baseline throughput for each workload at max threads.
    top = result.threads[-1]
    for workload in result.workloads:
        assert result.throughput_qps[(workload, "checkin", top)] >= \
            result.throughput_qps[(workload, "baseline", top)]
