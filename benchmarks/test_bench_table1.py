"""Benchmark entry for Table I — render the resolved configuration."""

from repro.experiments.table1 import render_table1


def test_table1_configuration(benchmark, record_result):
    """Render the Table-I analog and sanity-check the resolved values."""
    text = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    record_result("table1", text)

    assert "Flash topology" in text
    assert "Mapping unit" in text
    assert "checkin:512" in text
    assert "baseline:4096" in text
    assert "P/E cycles" in text
