"""Benchmarks regenerating Figure 3 — the motivation study."""

from repro.analysis import monotonic
from repro.experiments.fig3 import run_fig3a, run_fig3b, run_fig3c


def test_fig3a_amplification(benchmark, record_result):
    """I/O and flash-op amplification, uniform vs zipfian (baseline)."""
    result = benchmark.pedantic(run_fig3a, rounds=1, iterations=1)
    record_result("fig3a", result.table(), result)

    # Shape: both amplifications exceed 1x and uniform > zipfian, as the
    # paper's 2.98/1.91 (I/O) and 7.9/4.7 (flash) ordering.
    assert result.amp("uniform", "io") > result.amp("zipfian", "io") > 1.0
    assert result.amp("uniform", "flash") > result.amp("zipfian", "flash") > 1.0
    # Magnitudes in the paper's ballpark (within ~2x).
    assert 1.5 < result.amp("uniform", "io") < 6.0
    assert 4.0 < result.amp("uniform", "flash") < 16.0


def test_fig3b_checkpoint_time_vs_threads(benchmark, record_result):
    """Checkpointing time grows with threads; zipfian latest-ratio lower."""
    result = benchmark.pedantic(run_fig3b, rounds=1, iterations=1)
    record_result("fig3b", result.table(), result)

    for distribution in ("uniform", "zipfian"):
        series = result.series(distribution)
        # Grows from the smallest thread count (tolerate saturation flat).
        assert series[-1] >= series[0]
        assert max(series) > 1.2 * series[0]
    # The uniform distribution keeps many more latest versions alive.
    assert result.latest_ratio_factor() > 1.5


def test_fig3c_latency_during_checkpointing(benchmark, record_result):
    """Queries slow down while the baseline checkpoint runs."""
    result = benchmark.pedantic(run_fig3c, rounds=1, iterations=1)
    record_result("fig3c", result.table(), result)

    # Shape: both classes degrade during checkpointing, writes more than
    # reads (the paper reports 4x reads / 21x writes on real hardware;
    # our coarse latency model reproduces the direction, not the size).
    assert result.read_slowdown > 1.0
    assert result.write_slowdown > 1.0
