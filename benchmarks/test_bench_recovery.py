"""Extension benchmark: restart time with the Check-In recovery assist.

Not a paper figure — §III-G claims the Check-In SSD "can reduce the
recovery time" by pre-reading journal logs into the device buffer; this
bench quantifies that claim on a journal-heavy restart.
"""

from repro.engine.recovery import timed_restart
from repro.sim import spawn
from repro.system import KvSystem, tiny_config


def _journal_heavy_system():
    from repro.common.units import MIB
    system = KvSystem(tiny_config(mode="checkin", num_keys=256,
                                  total_queries=1, threads=1,
                                  journal_area_bytes=4 * MIB,
                                  checkpoint_interval_ns=10 ** 15,
                                  checkpoint_journal_quota=10 ** 15))
    system.load()
    system.engine.start()
    engine, sim = system.engine, system.sim

    def writer():
        for i in range(1_500):
            yield from engine.put(i % 256)

    proc = spawn(sim, writer())
    while not proc.triggered:
        assert sim.step()
    assert proc.ok, proc.exception
    return system


def _restart(system, preread):
    proc = spawn(system.sim, timed_restart(system.engine,
                                           device_preread=preread))
    while not proc.triggered:
        assert system.sim.step()
    assert proc.ok, proc.exception
    return proc.value


def test_recovery_preread(benchmark, record_result):
    def run_all():
        system = _journal_heavy_system()
        conventional = _restart(system, preread=False)
        preread = _restart(system, preread=True)
        system.engine.shutdown()
        return conventional, preread

    conventional, preread = benchmark.pedantic(run_all, rounds=1,
                                               iterations=1)
    speedup = conventional.duration_ns / max(1, preread.duration_ns)
    text = (
        "Extension: restart (journal replay) time, Check-In recovery assist\n"
        f"  conventional replay : {conventional.duration_ns / 1e6:8.2f} ms "
        f"({conventional.read_commands} commands)\n"
        f"  device pre-read     : {preread.duration_ns / 1e6:8.2f} ms "
        f"({preread.read_commands} commands)\n"
        f"  speedup             : {speedup:.1f}x")
    record_result("recovery_preread", text)
    assert preread.duration_ns < conventional.duration_ns
    assert speedup > 1.5
