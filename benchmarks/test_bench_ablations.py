"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not paper figures — these isolate the contribution of individual
mechanisms by turning them off one at a time:

* merging of PARTIAL logs (Algorithm 2's WriteJournalLogs) — without it,
  every sub-sector value occupies its own padded sector;
* remapping — Check-In's journaling with a copy-only device (i.e. the
  alignment alone, without Algorithm 1);
* group commit — per-update journal transactions;
* the device write coalescer — write-through DRAM.
"""

from dataclasses import replace

from repro.common.units import MIB, MS
from repro.experiments.base import QUICK, paper_config
from repro.system.system import run_config


def _run(config):
    return run_config(config).metrics


def test_ablation_remapping(benchmark, record_result):
    """Sector-aligned journaling with and without the remap-capable FTL.

    Isolates Algorithm 1: the same aligned journal stream, checkpointed by
    remapping versus by device-side copy.
    """
    def run_pair():
        full = paper_config("checkin", QUICK, total_queries=12_000)
        # Same engine behaviour, copy-only device: flip the remap flag by
        # running 'checkin' journaling against an allow_remap=False device.
        no_remap = replace(full, mode="checkin")
        return (_run(full),
                _run_no_remap(no_remap))

    def _run_no_remap(config):
        from repro.system.system import KvSystem
        system = KvSystem(config)
        system.ssd.isce.processor.allow_remap = False
        return system.run().metrics

    full, no_remap = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    text = (
        "Ablation: remapping (Algorithm 1)\n"
        f"  with remap   : redundant={full.redundant_write_bytes() / MIB:.2f} MiB, "
        f"qps={full.throughput_qps():.0f}\n"
        f"  copy-only    : redundant={no_remap.redundant_write_bytes() / MIB:.2f} MiB, "
        f"qps={no_remap.throughput_qps():.0f}")
    record_result("ablation_remap", text)
    assert full.redundant_write_bytes() < no_remap.redundant_write_bytes()
    assert full.remapped_units() > 0
    assert no_remap.remapped_units() == 0


def test_ablation_group_commit(benchmark, record_result):
    """Group commit window: batched vs per-update journal transactions."""
    def run_pair():
        batched = paper_config("checkin", QUICK, total_queries=10_000)
        per_update = replace(batched, group_commit_ns=0, max_txn_logs=1)
        return _run(batched), _run(per_update)

    batched, per_update = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    text = (
        "Ablation: group commit\n"
        f"  batched    : qps={batched.throughput_qps():.0f}, "
        f"journal={batched.journal_stored_bytes() / MIB:.2f} MiB, "
        f"padding={batched.journal_padding_bytes() / MIB:.2f} MiB\n"
        f"  per-update : qps={per_update.throughput_qps():.0f}, "
        f"journal={per_update.journal_stored_bytes() / MIB:.2f} MiB, "
        f"padding={per_update.journal_padding_bytes() / MIB:.2f} MiB")
    record_result("ablation_group_commit", text)
    # Per-update commits cannot merge partial logs -> more padding bytes.
    assert per_update.journal_padding_bytes() >= \
        batched.journal_padding_bytes()


def test_ablation_write_coalescer(benchmark, record_result):
    """Device DRAM write coalescing vs write-through for the baseline."""
    def run_pair():
        coalesced = paper_config("baseline", QUICK, total_queries=10_000)
        # Zero-byte coalescer -> every sub-unit write goes straight to the
        # FTL and pays read-modify-write against the 4 KiB mapping unit.
        from repro.system.system import KvSystem
        config = replace(coalesced)
        system = KvSystem(config)
        from repro.ssd.coalescer import WriteCoalescer
        system.ssd.controller.write_buffer = WriteCoalescer(
            system.ssd.ftl.sectors_per_unit, 0)
        return _run(coalesced), system.run().metrics

    coalesced, write_through = benchmark.pedantic(run_pair, rounds=1,
                                                  iterations=1)
    text = (
        "Ablation: device write coalescer (baseline config)\n"
        f"  coalescing   : qps={coalesced.throughput_qps():.0f}, "
        f"WAF={coalesced.waf():.2f}\n"
        f"  write-through: qps={write_through.throughput_qps():.0f}, "
        f"WAF={write_through.waf():.2f}")
    record_result("ablation_coalescer", text)
    # Without coalescing the flash write amplification rises sharply.
    assert write_through.waf() > coalesced.waf()


def test_ablation_checkpoint_quota(benchmark, record_result):
    """Journal-quota trigger vs pure time-interval trigger (baseline).

    Total redundant volume converges (every journaled byte is eventually
    checkpointed either way); what the policy changes is *when* — how many
    checkpoints run and how much each one has to move at once.
    """
    from repro.system.system import run_config as _run_config

    def run_pair():
        interval_only = _run_config(paper_config(
            "baseline", QUICK, total_queries=10_000,
            checkpoint_interval_ns=20 * MS,
            checkpoint_journal_quota=10 ** 15))
        quota_only = _run_config(paper_config(
            "baseline", QUICK, total_queries=10_000,
            checkpoint_interval_ns=10 ** 15,
            checkpoint_journal_quota=2 * MIB))
        return interval_only, quota_only

    interval_only, quota_only = benchmark.pedantic(run_pair, rounds=1,
                                                   iterations=1)

    def describe(result):
        count = max(1, result.checkpoint_count)
        per_ckpt = sum(r.entries_checkpointed
                       for r in result.checkpoint_reports) / count
        return (f"{result.checkpoint_count} ckpts, "
                f"{per_ckpt:.0f} entries/ckpt, "
                f"redundant={result.metrics.redundant_write_bytes() / MIB:.2f} MiB, "
                f"p999={result.metrics.latency_all.p999() / 1e3:.0f} us")

    text = ("Ablation: checkpoint trigger policy (baseline config)\n"
            f"  interval-only (20 ms): {describe(interval_only)}\n"
            f"  quota-only (2 MiB)   : {describe(quota_only)}")
    record_result("ablation_trigger", text)
    assert interval_only.checkpoint_count >= 1
    assert quota_only.checkpoint_count >= 1
    # Both policies checkpoint all journaled data in the end.
    assert interval_only.metrics.redundant_write_bytes() > 0
    assert quota_only.metrics.redundant_write_bytes() > 0
