"""Check-In: in-storage checkpointing for key-value stores on flash SSDs.

A from-scratch reproduction of the ISCA 2020 paper as a complete simulated
system.  The most useful entry points:

>>> from repro import SystemConfig, run_config
>>> result = run_config(SystemConfig(mode="checkin", total_queries=2000,
...                                  threads=4, num_keys=512))
>>> result.metrics.throughput_qps() > 0
True

Sub-packages: :mod:`repro.sim` (event kernel), :mod:`repro.flash` (NAND),
:mod:`repro.ftl` (translation layer), :mod:`repro.ssd` (device),
:mod:`repro.checkin` (the paper's device-side contribution),
:mod:`repro.engine` (the host storage engine), :mod:`repro.workload`
(YCSB-like clients), :mod:`repro.system` (wiring + metrics),
:mod:`repro.experiments` (one module per paper figure) and
:mod:`repro.analysis` (reporting).
"""

from repro.system import KvSystem, RunResult, SystemConfig, run_config, tiny_config

__version__ = "1.0.0"

__all__ = [
    "KvSystem",
    "RunResult",
    "SystemConfig",
    "run_config",
    "tiny_config",
    "__version__",
]
