"""NAND flash geometry and physical address arithmetic.

The physical hierarchy is channels → packages → dies → planes → blocks →
pages.  For operation scheduling we flatten everything above a block into
*LUNs* (logical units): one plane is one LUN, because a plane can execute
one array operation at a time while its channel is only busy during data
transfer.  Blocks are striped across LUNs so sequential allocation spreads
load over all channels and dies.

Addresses:

* ``ppa``  — physical page address, 0 .. total_pages-1
* ``block``— global block id, 0 .. total_blocks-1
* a page's block is ``ppa // pages_per_block``; its index inside the block
  is ``ppa % pages_per_block``
* a block's LUN is ``block % num_luns`` (striping); its channel is
  ``lun % channels``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError


@dataclass(frozen=True)
class FlashGeometry:
    """Dimensions of the simulated NAND array."""

    channels: int = 8
    packages_per_channel: int = 1
    dies_per_package: int = 2
    planes_per_die: int = 2
    blocks_per_plane: int = 16
    pages_per_block: int = 64
    page_size: int = 4096

    def __post_init__(self) -> None:
        for field_name in ("channels", "packages_per_channel", "dies_per_package",
                           "planes_per_die", "blocks_per_plane",
                           "pages_per_block", "page_size"):
            value = getattr(self, field_name)
            if value < 1:
                raise ConfigError(f"{field_name} must be >= 1, got {value}")
        if self.page_size % 512 != 0:
            raise ConfigError("page_size must be a multiple of the 512 B sector")

    # -- derived sizes ---------------------------------------------------
    @property
    def num_luns(self) -> int:
        """Independently schedulable plane count."""
        return (self.channels * self.packages_per_channel *
                self.dies_per_package * self.planes_per_die)

    @property
    def blocks_per_lun(self) -> int:
        """Erase blocks per LUN (one plane's worth)."""
        return self.blocks_per_plane

    @property
    def total_blocks(self) -> int:
        """Erase blocks in the whole array."""
        return self.num_luns * self.blocks_per_plane

    @property
    def total_pages(self) -> int:
        """Physical pages in the whole array."""
        return self.total_blocks * self.pages_per_block

    @property
    def block_bytes(self) -> int:
        """Bytes per erase block."""
        return self.pages_per_block * self.page_size

    @property
    def capacity_bytes(self) -> int:
        """Raw physical capacity including over-provisioning headroom."""
        return self.total_pages * self.page_size

    # -- address arithmetic ----------------------------------------------
    def block_of_page(self, ppa: int) -> int:
        """Global block id containing physical page ``ppa``."""
        self.check_page(ppa)
        return ppa // self.pages_per_block

    def page_in_block(self, ppa: int) -> int:
        """Index of ``ppa`` within its block (0 .. pages_per_block-1)."""
        self.check_page(ppa)
        return ppa % self.pages_per_block

    def first_page_of_block(self, block: int) -> int:
        """PPA of page 0 in ``block``."""
        self.check_block(block)
        return block * self.pages_per_block

    def lun_of_block(self, block: int) -> int:
        """LUN executing operations for ``block``."""
        self.check_block(block)
        return block % self.num_luns

    def lun_of_page(self, ppa: int) -> int:
        """LUN executing operations for page ``ppa``."""
        return self.lun_of_block(self.block_of_page(ppa))

    def channel_of_lun(self, lun: int) -> int:
        """Channel wired to ``lun``."""
        if not 0 <= lun < self.num_luns:
            raise ConfigError(f"lun {lun} out of range [0, {self.num_luns})")
        return lun % self.channels

    def channel_of_page(self, ppa: int) -> int:
        """Channel used to move data for page ``ppa``."""
        return self.channel_of_lun(self.lun_of_page(ppa))

    # -- validation --------------------------------------------------------
    def check_page(self, ppa: int) -> None:
        """Raise when ``ppa`` is outside the array."""
        if not 0 <= ppa < self.total_pages:
            raise ConfigError(f"ppa {ppa} out of range [0, {self.total_pages})")

    def check_block(self, block: int) -> None:
        """Raise when ``block`` is outside the array."""
        if not 0 <= block < self.total_blocks:
            raise ConfigError(f"block {block} out of range [0, {self.total_blocks})")
