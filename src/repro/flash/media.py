"""Seeded NAND media-error model: program/erase/read failure injection.

Real NAND fails in three ways the perfect-flash model above cannot show:

* **program-status failures** — the page does not verify after tPROG;
* **erase-status failures** — the block does not erase cleanly (the
  classic grown-bad-block trigger);
* **uncorrectable reads (UECC)** — raw bit-error rate exceeds the ECC
  budget; controllers walk a ladder of read-retry voltage levels before
  giving up.

:class:`MediaErrorModel` draws each outcome deterministically from a
seed, the operation kind, the block id and a per-(kind, block) operation
counter, so a run is exactly reproducible and *order-robust*: the draw
does not depend on global event interleaving, only on how many times
this block saw this kind of operation.

Error probabilities compose multiplicatively from the physics the paper
leaves implicit:

* **wear** — P/E cycling degrades the oxide; probability scales with
  ``1 + (erase_count / wear_reference_pe) ** wear_exponent``;
* **retention** — charge leaks over time; scales with the block's age
  since its first post-erase program;
* **read disturb** — reads softly program neighbouring cells; scales
  with reads since the last erase beyond a threshold (UECC only).

Read-retry models the extra sensing levels: each retry level re-draws
failure independently (a fresh draw ≈ a different read voltage), and
each attempt costs :attr:`~repro.flash.timing.FlashTiming.read_retry_ns`
of extra LUN time.  A UECC is *transient* in this model — re-issuing the
read draws fresh levels — which matches retry-based recovery in real
firmware and keeps acknowledged data recoverable by construction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.errors import ConfigError

PROGRAM = "program"
ERASE = "erase"
READ = "read"

_DRAW_DENOM = float(1 << 64)


@dataclass(frozen=True)
class MediaErrorConfig:
    """Knobs of the media-error model (all rates are per operation)."""

    enabled: bool = True

    program_fail_base: float = 0.0
    """Base program-status failure probability on a pristine block."""

    erase_fail_base: float = 0.0
    """Base erase-status failure probability on a pristine block."""

    read_uecc_base: float = 0.0
    """Base per-attempt uncorrectable-read probability."""

    wear_exponent: float = 2.0
    """How sharply P/E wear amplifies all failure rates."""

    wear_reference_pe: int = 3000
    """P/E count at which the wear multiplier reaches 2x base."""

    retention_scale_ns: int = 10_000_000_000
    """Data age at which retention doubles the read-failure rate."""

    read_disturb_threshold: int = 10_000
    """Reads since erase below which disturb adds nothing."""

    read_disturb_scale: int = 10_000
    """Excess reads that double the UECC rate once past the threshold."""

    max_read_retries: int = 3
    """Extra read-retry voltage levels tried before declaring UECC."""

    max_probability: float = 0.95
    """Cap on any composed probability (a draw can always succeed)."""

    def __post_init__(self) -> None:
        for name in ("program_fail_base", "erase_fail_base",
                     "read_uecc_base"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {rate}")
        if self.max_read_retries < 0:
            raise ConfigError("max_read_retries must be >= 0")
        if self.wear_reference_pe <= 0 or self.retention_scale_ns <= 0 \
                or self.read_disturb_scale <= 0:
            raise ConfigError("wear/retention/disturb scales must be > 0")
        if not 0.0 < self.max_probability <= 1.0:
            raise ConfigError("max_probability must be in (0, 1]")


class MediaErrorModel:
    """Deterministic per-operation failure draws for one flash array."""

    def __init__(self, config: MediaErrorConfig, seed: int) -> None:
        self.config = config
        self.seed = seed
        self._counters: Dict[Tuple[str, int], int] = {}

    # -- deterministic uniform draws ------------------------------------
    def _draw(self, kind: str, block_id: int) -> float:
        """Next uniform [0, 1) draw for (kind, block) — order-robust."""
        key = (kind, block_id)
        counter = self._counters.get(key, 0)
        self._counters[key] = counter + 1
        digest = hashlib.sha256(
            f"{self.seed}/{kind}/{block_id}/{counter}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / _DRAW_DENOM

    # -- probability composition ----------------------------------------
    def _wear_multiplier(self, erase_count: int) -> float:
        cfg = self.config
        return 1.0 + (erase_count / cfg.wear_reference_pe) ** cfg.wear_exponent

    def _retention_multiplier(self, age_ns: int) -> float:
        if age_ns <= 0:
            return 1.0
        return 1.0 + age_ns / self.config.retention_scale_ns

    def _disturb_multiplier(self, reads_since_erase: int) -> float:
        cfg = self.config
        excess = reads_since_erase - cfg.read_disturb_threshold
        if excess <= 0:
            return 1.0
        return 1.0 + excess / cfg.read_disturb_scale

    def _cap(self, probability: float) -> float:
        return min(probability, self.config.max_probability)

    def program_fail_probability(self, erase_count: int) -> float:
        """Composed program-status failure probability."""
        return self._cap(self.config.program_fail_base *
                         self._wear_multiplier(erase_count))

    def erase_fail_probability(self, erase_count: int) -> float:
        """Composed erase-status failure probability."""
        return self._cap(self.config.erase_fail_base *
                         self._wear_multiplier(erase_count))

    def read_uecc_probability(self, erase_count: int, age_ns: int,
                              reads_since_erase: int) -> float:
        """Composed per-attempt uncorrectable-read probability."""
        return self._cap(self.config.read_uecc_base *
                         self._wear_multiplier(erase_count) *
                         self._retention_multiplier(age_ns) *
                         self._disturb_multiplier(reads_since_erase))

    # -- the three outcome queries --------------------------------------
    def program_fails(self, block_id: int, erase_count: int) -> bool:
        """Draw one program-status check."""
        if not self.config.enabled or self.config.program_fail_base <= 0:
            return False
        return self._draw(PROGRAM, block_id) < \
            self.program_fail_probability(erase_count)

    def erase_fails(self, block_id: int, erase_count: int) -> bool:
        """Draw one erase-status check."""
        if not self.config.enabled or self.config.erase_fail_base <= 0:
            return False
        return self._draw(ERASE, block_id) < \
            self.erase_fail_probability(erase_count)

    def read_attempts(self, block_id: int, erase_count: int, age_ns: int,
                      reads_since_erase: int) -> int:
        """Read-retry ladder: sensing attempts consumed by one page read.

        Returns the 1-based attempt number that succeeded, or ``0`` when
        every level (1 + max_read_retries attempts) failed — an
        uncorrectable read the caller must surface.
        """
        if not self.config.enabled or self.config.read_uecc_base <= 0:
            return 1
        probability = self.read_uecc_probability(erase_count, age_ns,
                                                 reads_since_erase)
        attempts = 1 + self.config.max_read_retries
        for attempt in range(1, attempts + 1):
            if self._draw(READ, block_id) >= probability:
                return attempt
        return 0


def quiet_model() -> MediaErrorModel:
    """A model that never fails anything (perfect flash, explicit)."""
    return MediaErrorModel(MediaErrorConfig(enabled=False), seed=0)
