"""Per-block NAND state: page write status, stored payloads, OOB, wear.

Flash physics enforced here:

* pages within a block must be programmed strictly in order;
* a written page cannot be reprogrammed until the whole block is erased;
* each erase consumes one P/E cycle from the block's endurance budget.

Payloads are opaque Python objects (the FTL stores per-unit tags rather
than real bytes), and each page carries an out-of-band (OOB) record the
controller uses for power-loss recovery — the paper stores the target
address and version there (§III-G).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.common.errors import FlashError


class PageState:
    """Lifecycle of one physical page."""

    FREE = 0
    WRITTEN = 1


class Block:
    """State of one erase block."""

    __slots__ = ("block_id", "pages_per_block", "erase_count", "write_pointer",
                 "reads_since_erase", "first_program_ns", "grown_bad",
                 "_data", "_oob")

    def __init__(self, block_id: int, pages_per_block: int) -> None:
        self.block_id = block_id
        self.pages_per_block = pages_per_block
        self.erase_count = 0
        self.write_pointer = 0  # next programmable page index
        self.reads_since_erase = 0  # read-disturb accumulator
        self.first_program_ns = -1  # retention clock (-1 = nothing stored)
        self.grown_bad = False  # retired by the FTL; never reused
        self._data: List[Any] = [None] * pages_per_block
        self._oob: List[Any] = [None] * pages_per_block

    # -- queries ----------------------------------------------------------
    def page_state(self, page_index: int) -> int:
        """FREE or WRITTEN for the page at ``page_index``."""
        self._check_index(page_index)
        return PageState.WRITTEN if page_index < self.write_pointer else PageState.FREE

    @property
    def is_full(self) -> bool:
        """True when every page has been programmed."""
        return self.write_pointer >= self.pages_per_block

    @property
    def written_pages(self) -> int:
        """Number of programmed pages."""
        return self.write_pointer

    def data(self, page_index: int) -> Any:
        """Stored payload of a written page."""
        if self.page_state(page_index) != PageState.WRITTEN:
            raise FlashError(
                f"block {self.block_id}: reading unwritten page {page_index}")
        return self._data[page_index]

    def oob(self, page_index: int) -> Any:
        """OOB record of a written page."""
        if self.page_state(page_index) != PageState.WRITTEN:
            raise FlashError(
                f"block {self.block_id}: reading OOB of unwritten page {page_index}")
        return self._oob[page_index]

    # -- mutations ----------------------------------------------------------
    def program(self, page_index: int, data: Any, oob: Any = None) -> None:
        """Program one page; must be the next page in sequence."""
        self._check_index(page_index)
        if page_index != self.write_pointer:
            raise FlashError(
                f"block {self.block_id}: out-of-order program of page "
                f"{page_index} (expected {self.write_pointer})")
        self._data[page_index] = data
        self._oob[page_index] = oob
        self.write_pointer += 1

    def corrupt(self, page_index: int, data: Any, oob: Any) -> None:
        """Overwrite a *written* page's payload in place.

        Power-loss modelling only: a program interrupted by a power cut
        leaves the page partially programmed (torn).  The page stays
        WRITTEN — its charge state is simply wrong.
        """
        if self.page_state(page_index) != PageState.WRITTEN:
            raise FlashError(
                f"block {self.block_id}: cannot corrupt unwritten page "
                f"{page_index}")
        self._data[page_index] = data
        self._oob[page_index] = oob

    def erase(self, max_pe_cycles: Optional[int] = None) -> None:
        """Erase the block, consuming one P/E cycle."""
        if max_pe_cycles is not None and self.erase_count >= max_pe_cycles:
            raise FlashError(
                f"block {self.block_id}: exceeded endurance of "
                f"{max_pe_cycles} P/E cycles")
        self.erase_count += 1
        self.write_pointer = 0
        self.reads_since_erase = 0
        self.first_program_ns = -1
        for i in range(self.pages_per_block):
            self._data[i] = None
            self._oob[i] = None

    def _check_index(self, page_index: int) -> None:
        if not 0 <= page_index < self.pages_per_block:
            raise FlashError(
                f"block {self.block_id}: page index {page_index} out of range "
                f"[0, {self.pages_per_block})")
