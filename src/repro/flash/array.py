"""The timed NAND flash array.

:class:`FlashArray` owns every block plus the contention model: one
:class:`~repro.sim.resources.Resource` per LUN (a plane executes one array
operation at a time) and one per channel (data transfers serialize on the
shared bus).  Operations are generator helpers meant to be delegated to
from a simulation process with ``yield from``::

    data, oob = yield from array.read_page(ppa)
    yield from array.program_page(ppa, data, oob)
    yield from array.erase_block(block_id)

Accounting: every operation increments the shared
:class:`~repro.sim.stats.StatRegistry` counters ``flash.read``,
``flash.program`` and ``flash.erase`` (bytes counted for read/program).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.common.errors import (
    FlashError,
    MediaEraseError,
    MediaProgramError,
    MediaReadError,
)
from repro.flash.block import Block
from repro.flash.geometry import FlashGeometry
from repro.flash.media import MediaErrorModel, quiet_model
from repro.flash.timing import FlashTiming
from repro.sim.core import Simulator
from repro.sim.resources import Resource
from repro.sim.stats import StatRegistry


class FlashArray:
    """All NAND blocks plus LUN/channel scheduling."""

    def __init__(self, sim: Simulator, geometry: FlashGeometry,
                 timing: FlashTiming, stats: Optional[StatRegistry] = None,
                 media: Optional[MediaErrorModel] = None) -> None:
        self.sim = sim
        self.geometry = geometry
        self.timing = timing
        self.stats = stats if stats is not None else StatRegistry()
        self.media = media if media is not None else quiet_model()
        self.max_pe_cycles: Optional[int] = None
        self.blocks: List[Block] = [
            Block(block_id, geometry.pages_per_block)
            for block_id in range(geometry.total_blocks)
        ]
        self._luns = [Resource(sim, 1, name=f"lun{i}")
                      for i in range(geometry.num_luns)]
        self._channels = [Resource(sim, 1, name=f"chan{i}")
                          for i in range(geometry.channels)]
        self._inflight_programs: Dict[int, Tuple[Block, int]] = {}
        """Pages whose program pulse has not completed: ppa -> (block,
        page index).  A power cut mid-pulse leaves these pages torn."""
        self.ckpt_inflight = 0
        """Flash operations currently *holding* a LUN on behalf of
        checkpoint machinery (journal readback reads, checkpoint data
        rewrites, device-side CoW copies).  Plain ints outside the stats
        registry so blamed and unblamed runs snapshot identically."""
        self._ckpt_busy_ns = 0
        self._ckpt_since = 0
        # Every timed operation bumps one of these; resolve the counter
        # objects once instead of a registry lookup per flash op.
        self._read_counter = self.stats.counter("flash.read")
        self._program_counter = self.stats.counter("flash.program")
        self._erase_counter = self.stats.counter("flash.erase")

    # -- checkpoint-activity clock (no simulated time) ----------------------
    def ckpt_enter(self) -> None:
        """A checkpoint-machinery flash op acquired a LUN."""
        if self.ckpt_inflight == 0:
            self._ckpt_since = self.sim.now
        self.ckpt_inflight += 1

    def ckpt_exit(self) -> None:
        """A checkpoint-machinery flash op released its LUN."""
        self.ckpt_inflight -= 1
        if self.ckpt_inflight == 0:
            self._ckpt_busy_ns += self.sim.now - self._ckpt_since

    def ckpt_busy_ns(self) -> int:
        """Total simulated ns with >= 1 LUN held by checkpoint work.

        Blame windows diff this clock around a flash wait: the part of
        the wait that overlapped checkpoint flash occupancy is charged
        to ``ckpt_interference`` instead of the plain service category.
        Queue time does not count — only held LUNs — so a request slowed
        purely by foreground traffic is never blamed on a checkpoint
        that happened to be pending somewhere.
        """
        busy = self._ckpt_busy_ns
        if self.ckpt_inflight:
            busy += self.sim.now - self._ckpt_since
        return busy

    # -- synchronous state access (no simulated time) -----------------------
    def block(self, block_id: int) -> Block:
        """The :class:`Block` object with the given global id."""
        self.geometry.check_block(block_id)
        return self.blocks[block_id]

    def page_data(self, ppa: int) -> Any:
        """Stored payload of a written page (no timing)."""
        block = self.block(self.geometry.block_of_page(ppa))
        return block.data(self.geometry.page_in_block(ppa))

    def page_oob(self, ppa: int) -> Any:
        """OOB record of a written page (no timing)."""
        block = self.block(self.geometry.block_of_page(ppa))
        return block.oob(self.geometry.page_in_block(ppa))

    def total_erase_count(self) -> int:
        """Sum of erase counts over all blocks."""
        return sum(block.erase_count for block in self.blocks)

    def max_erase_count(self) -> int:
        """Highest per-block erase count (wear hot spot)."""
        return max(block.erase_count for block in self.blocks)

    def wear_stats(self) -> Dict[str, float]:
        """Per-block erase-count distribution: min / max / mean."""
        counts = [block.erase_count for block in self.blocks]
        return {"min": float(min(counts)), "max": float(max(counts)),
                "mean": sum(counts) / len(counts)}

    def _retention_age_ns(self, block: Block) -> int:
        if block.first_program_ns < 0:
            return 0
        return self.sim.now - block.first_program_ns

    # -- timed operations ----------------------------------------------------
    def read_page(self, ppa: int,
                  ckpt: bool = False) -> Generator[Any, Any, Tuple[Any, Any]]:
        """Timed page read; returns ``(data, oob)``.

        Sequence: LUN busy for the array read (plus any read-retry
        levels), then the channel busy while the page streams out.  An
        uncorrectable read raises :class:`MediaReadError` after the
        retry ladder is exhausted; re-issuing the read draws fresh retry
        levels (transient UECC), which is how the layers above recover.
        ``ckpt`` runs the LUN-hold period on the checkpoint clock.
        """
        geometry = self.geometry
        block = self.block(geometry.block_of_page(ppa))
        page_index = geometry.page_in_block(ppa)
        lun_index = geometry.lun_of_page(ppa)
        lun = self._luns[lun_index]
        channel = self._channels[geometry.channel_of_page(ppa)]

        tracer = self.sim.tracer
        span = tracer.begin("flash", "read_page", track=lun_index, ppa=ppa,
                            bytes=geometry.page_size) \
            if tracer.enabled else None
        yield lun.acquire()
        if ckpt:
            self.ckpt_enter()
        try:
            yield self.timing.read_ns
            block.reads_since_erase += 1
            attempt = self.media.read_attempts(
                block.block_id, block.erase_count,
                self._retention_age_ns(block), block.reads_since_erase)
            retries = (attempt - 1) if attempt \
                else self.media.config.max_read_retries
            if retries:
                self.stats.counter("media.read_retry").add(retries)
                yield self.timing.read_retry_ns * retries
            if attempt == 0:
                self.stats.counter("media.read_uecc").add(1)
                recorder = self.sim.flightrec
                if recorder is not None:
                    recorder.record(
                        self.sim.now, "flash", "read_uecc",
                        span.span_id if span is not None else None,
                        {"block": block.block_id, "ppa": ppa,
                         "retries": retries})
                if span is not None:
                    tracer.end(span, uecc=True)
                    span = None
                raise MediaReadError(
                    f"block {block.block_id}: uncorrectable read at page "
                    f"{ppa} after {1 + retries} attempts")
            yield channel.acquire()
            try:
                yield self.timing.transfer_ns(geometry.page_size)
            finally:
                channel.release()
        finally:
            if ckpt:
                self.ckpt_exit()
            lun.release()
        if span is not None:
            tracer.end(span)
        self._read_counter.add(1, num_bytes=geometry.page_size)
        # Content is sampled after the timed phases so a concurrent GC
        # migration that finished earlier is observed consistently.
        data = block.data(page_index)
        oob = block.oob(page_index)
        return data, oob

    def program_page(self, ppa: int, data: Any, oob: Any = None,
                     ckpt: bool = False) -> Generator[Any, Any, None]:
        """Timed page program: channel transfer in, then array program.

        A program-status failure raises :class:`MediaProgramError` after
        the pulse.  The page is consumed — it stays WRITTEN with no
        readable content and a nulled OOB (the SPOR scan skips it) — so
        the FTL must re-issue the unit to a fresh page.
        ``ckpt`` runs the LUN-hold period on the checkpoint clock.
        """
        geometry = self.geometry
        block = self.block(geometry.block_of_page(ppa))
        page_index = geometry.page_in_block(ppa)
        lun_index = geometry.lun_of_page(ppa)
        lun = self._luns[lun_index]
        channel = self._channels[geometry.channel_of_page(ppa)]

        tracer = self.sim.tracer
        span = tracer.begin("flash", "program_page", track=lun_index,
                            ppa=ppa, bytes=geometry.page_size) \
            if tracer.enabled else None
        yield lun.acquire()
        if ckpt:
            self.ckpt_enter()
        try:
            yield channel.acquire()
            try:
                yield self.timing.transfer_ns(geometry.page_size)
            finally:
                channel.release()
            # Commit the page content before the long program pulse so a
            # reader that wins the LUN immediately afterwards sees it.
            block.program(page_index, data, oob)
            if block.first_program_ns < 0:
                block.first_program_ns = self.sim.now
            self._inflight_programs[ppa] = (block, page_index)
            yield self.timing.program_ns
            self._inflight_programs.pop(ppa, None)
        finally:
            if ckpt:
                self.ckpt_exit()
            lun.release()
        self._program_counter.add(1, num_bytes=geometry.page_size)
        if self.media.program_fails(block.block_id, block.erase_count):
            # The page did not verify: null it so nothing reads it back.
            nunits = len(oob) if isinstance(oob, list) else 0
            block.corrupt(page_index, None,
                          [None] * nunits if nunits else None)
            self.stats.counter("media.program_fail").add(1)
            if span is not None:
                tracer.end(span, media_fail=True)
            raise MediaProgramError(
                f"block {block.block_id}: program-status failure at page "
                f"{ppa}")
        if span is not None:
            tracer.end(span)

    def mapping_read(self, lun: int) -> Generator[Any, Any, None]:
        """Timed read of one mapping-table page (DFTL map-cache miss).

        Contends for the LUN and channel like any page read but carries no
        user content — the mapping store is modelled logically.
        """
        if not 0 <= lun < self.geometry.num_luns:
            raise FlashError(f"lun {lun} out of range")
        channel = self._channels[self.geometry.channel_of_lun(lun)]
        yield self._luns[lun].acquire()
        try:
            yield self.timing.read_ns
            yield channel.acquire()
            try:
                yield self.timing.transfer_ns(self.geometry.page_size)
            finally:
                channel.release()
        finally:
            self._luns[lun].release()
        self._read_counter.add(1, num_bytes=self.geometry.page_size)
        self.stats.counter("flash.read.map").add(1)

    def erase_block(self, block_id: int) -> Generator[Any, Any, None]:
        """Timed block erase.

        An erase-status failure raises :class:`MediaEraseError`: the
        P/E cycle is consumed but the block keeps its stale contents
        (recovery's sequence ordering makes stale OOB entries lose), and
        the FTL is expected to retire the block.
        """
        geometry = self.geometry
        block = self.block(block_id)
        lun_index = geometry.lun_of_block(block_id)
        lun = self._luns[lun_index]
        tracer = self.sim.tracer
        span = tracer.begin("flash", "erase_block", track=lun_index,
                            block=block_id) \
            if tracer.enabled else None
        failed = self.media.erase_fails(block_id, block.erase_count)
        yield lun.acquire()
        try:
            if failed:
                block.erase_count += 1  # the cycle is spent regardless
            else:
                block.erase(self.max_pe_cycles)
            yield self.timing.erase_ns
        finally:
            lun.release()
        if failed:
            self.stats.counter("media.erase_fail").add(1)
            if span is not None:
                tracer.end(span, media_fail=True)
            raise MediaEraseError(
                f"block {block_id}: erase-status failure")
        if span is not None:
            tracer.end(span)
        self._erase_counter.add(1)

    # -- power-loss modelling ------------------------------------------------
    def power_cut(self, rng: Any) -> List[int]:
        """Tear every in-flight program at unit granularity.

        For each page whose program pulse had not completed, a random
        prefix of its units survives (possibly none, possibly all); the
        rest of the page reads back as garbage (data dropped, OOB nulled).
        Returns the torn page addresses.
        """
        torn: List[int] = []
        for ppa, (block, page_index) in sorted(self._inflight_programs.items()):
            data = block.data(page_index)
            oob = block.oob(page_index)
            nunits = len(oob) if isinstance(oob, list) else 0
            if not nunits:
                continue
            keep = rng.randint(0, nunits)
            if keep == nunits:
                continue
            if isinstance(data, dict):
                new_data: Any = {u: v for u, v in data.items() if u < keep}
            else:
                new_data = data if keep else None
            new_oob = [oob[u] if u < keep else None for u in range(nunits)]
            block.corrupt(page_index, new_data, new_oob)
            torn.append(ppa)
        self._inflight_programs.clear()
        return torn

    # -- instantaneous variants (used by recovery tooling) -------------------
    def program_page_now(self, ppa: int, data: Any, oob: Any = None) -> None:
        """Program without consuming simulated time (setup/recovery only)."""
        geometry = self.geometry
        block = self.block(geometry.block_of_page(ppa))
        block.program(geometry.page_in_block(ppa), data, oob)
        self._program_counter.add(1, num_bytes=geometry.page_size)

    def scan_oob(self) -> List[Tuple[int, Any]]:
        """Every written page's ``(ppa, oob)`` — the SPOR recovery scan."""
        results: List[Tuple[int, Any]] = []
        pages_per_block = self.geometry.pages_per_block
        for block in self.blocks:
            base = block.block_id * pages_per_block
            for page_index in range(block.written_pages):
                results.append((base + page_index, block.oob(page_index)))
        return results

    def check_not_written(self, ppa: int) -> None:
        """Raise :class:`FlashError` when ``ppa`` has already been programmed."""
        geometry = self.geometry
        block = self.block(geometry.block_of_page(ppa))
        if geometry.page_in_block(ppa) < block.write_pointer:
            raise FlashError(f"page {ppa} already written")
