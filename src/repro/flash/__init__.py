"""NAND flash array model: geometry, timing, block state, timed operations."""

from repro.flash.array import FlashArray
from repro.flash.block import Block, PageState
from repro.flash.geometry import FlashGeometry
from repro.flash.media import MediaErrorConfig, MediaErrorModel, quiet_model
from repro.flash.timing import FlashTiming

__all__ = ["FlashArray", "Block", "PageState", "FlashGeometry", "FlashTiming",
           "MediaErrorConfig", "MediaErrorModel", "quiet_model"]
