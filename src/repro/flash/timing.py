"""NAND flash timing parameters.

Values default to mid-range MLC NAND, matching the class of device the
paper simulates with SimpleSSD.  All latencies are in nanoseconds; the
channel is modelled as a shared link with a fixed per-transfer setup cost
plus a bandwidth-proportional transfer time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.units import MS, US, transfer_time_ns


@dataclass(frozen=True)
class FlashTiming:
    """Latency model for array operations and channel transfers."""

    read_ns: int = 60 * US
    """Array read (tR): cell array to the plane's page register."""

    program_ns: int = 800 * US
    """Array program (tPROG): page register to the cells."""

    erase_ns: int = int(3.5 * MS)
    """Block erase (tBERS)."""

    channel_bandwidth: int = 800 * 1000 * 1000
    """ONFI channel bandwidth, bytes per second."""

    channel_setup_ns: int = 200
    """Fixed command/address cycle cost per channel transaction."""

    read_retry_ns: int = 70 * US
    """Extra array time per read-retry level (re-sense at a shifted
    voltage; slightly slower than a first read)."""

    def __post_init__(self) -> None:
        for field_name in ("read_ns", "program_ns", "erase_ns",
                           "channel_bandwidth", "channel_setup_ns",
                           "read_retry_ns"):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be positive")

    def transfer_ns(self, num_bytes: int) -> int:
        """Channel occupancy to move ``num_bytes`` (setup + payload)."""
        return self.channel_setup_ns + transfer_time_ns(num_bytes, self.channel_bandwidth)
