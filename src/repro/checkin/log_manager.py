"""ISCE log manager: journal-commit tracking and recovery metadata.

The paper's log manager (§III-A) acknowledges journal-log writes to the
host and periodically persists the metadata needed to recover the device
after the last checkpoint.  Here it tracks which journal sector ranges
have been committed since the last checkpoint so the recovery path can
replay them, and it schedules metadata persistence through the FTL.
"""

from __future__ import annotations

from typing import Any, Generator, List, Tuple

from repro.ftl.ftl import Ftl
from repro.sim.core import Simulator


class LogManager:
    """Tracks committed journal ranges inside the device."""

    def __init__(self, sim: Simulator, ftl: Ftl,
                 metadata_update_interval: int = 64) -> None:
        self.sim = sim
        self.ftl = ftl
        self.metadata_update_interval = metadata_update_interval
        self._committed_ranges: List[Tuple[int, int]] = []
        self._commits_since_update = 0

    @property
    def committed_ranges(self) -> List[Tuple[int, int]]:
        """Journal ``(lba, nsectors)`` ranges committed since last checkpoint."""
        return list(self._committed_ranges)

    def note_journal_write(self, lba: int,
                           nsectors: int) -> Generator[Any, Any, None]:
        """Record a committed journal write; persist metadata periodically."""
        self._committed_ranges.append((lba, nsectors))
        self._commits_since_update += 1
        self.ftl.stats.counter("isce.journal_commits").add(
            1, num_bytes=nsectors * 512)
        if self._commits_since_update >= self.metadata_update_interval:
            self._commits_since_update = 0
            yield from self.ftl.persist_metadata()

    def checkpoint_created(self) -> None:
        """Reset the replay window after a successful checkpoint."""
        self._committed_ranges.clear()
        self._commits_since_update = 0
