"""The journal-log format contract shared by host engine and Check-In SSD.

Check-In works because the storage engine and the FTL agree on how journal
logs are laid out (the "storage-engine-aware FTL" of §II-D).  This module
is that agreement: log size classes, log types, and the payload structure
of merged and packed sectors.

Algorithm 2 is parameterised by MAPPING_SIZE — the FTL mapping unit the
engine aligns to (512 B in the main configuration, swept up to 4096 B in
the Figure 13 sensitivity study).  Values larger than the unit are
compressed and padded to whole units (type FULL); smaller values are
rounded to quarter-unit classes (128/256/384/512 for a 512 B unit) and
become PARTIAL, later packed together into MERGED units.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.common.errors import EngineError
from repro.common.units import SECTOR_SIZE, round_up

ALIGN_STEP = SECTOR_SIZE // 4
"""Sub-unit alignment quantum for the default 512 B mapping unit."""

ALIGN_SIZES: Tuple[int, ...] = (128, 256, 384, 512)
"""The Algorithm 2 size classes for the default 512 B mapping unit."""


class LogType(enum.Enum):
    """Type tag a journal log carries after alignment (Algorithm 2)."""

    FULL = "full"        # occupies whole mapping units exclusively -> remappable
    PARTIAL = "partial"  # sub-unit, awaiting merge
    MERGED = "merged"    # sub-unit, packed with others in one unit


def _check_mapping_size(mapping_size: int) -> None:
    if mapping_size < SECTOR_SIZE or mapping_size % SECTOR_SIZE:
        raise EngineError(
            f"mapping size must be a positive multiple of 512, got {mapping_size}")


def align_sub_sector(size: int, mapping_size: int = SECTOR_SIZE) -> int:
    """Round a sub-unit value size up to its quarter-unit class.

    This is the ``next_size`` loop of Algorithm 2 lines 8-12: classes are
    ``mapping_size/4 .. mapping_size`` in quarter steps.
    """
    _check_mapping_size(mapping_size)
    if not 0 < size <= mapping_size:
        raise EngineError(
            f"sub-unit alignment needs 0 < size <= {mapping_size}, got {size}")
    return round_up(size, mapping_size // 4)


def align_full(size: int, compress_ratio: float = 1.0,
               mapping_size: int = SECTOR_SIZE) -> int:
    """Size of a value larger than the unit after compression and padding.

    Algorithm 2 lines 3-6: compress, then pad to a whole number of mapping
    units.  ``compress_ratio`` models the compressor (1.0 = verbatim); the
    result never rounds below one unit.
    """
    _check_mapping_size(mapping_size)
    if size <= mapping_size:
        raise EngineError(f"align_full needs size > {mapping_size}, got {size}")
    if not 0.0 < compress_ratio <= 1.0:
        raise EngineError(f"compress_ratio must be in (0, 1], got {compress_ratio}")
    compressed = max(1, int(size * compress_ratio))
    return round_up(compressed, mapping_size)


@dataclass
class MergedPayload:
    """Contents of one MERGED journal unit.

    Maps byte offset within the unit to the value tag stored there.  Both
    the engine (reading a journaled value back) and the ISCE (scattering
    values to their target sectors at checkpoint) decode it.  Parts are
    always 128-byte-class aligned (Algorithm 2's fixed size classes),
    whatever the unit capacity.
    """

    capacity: int = SECTOR_SIZE
    parts: Dict[int, Any] = field(default_factory=dict)
    used_bytes: int = 0

    def add(self, size: int, tag: Any) -> int:
        """Pack a value of ``size`` aligned bytes; returns its offset."""
        if size <= 0 or size % ALIGN_STEP != 0:
            raise EngineError(
                f"merged part size must be a {ALIGN_STEP} B multiple, "
                f"got {size}")
        if self.used_bytes + size > self.capacity:
            raise EngineError("merged unit overflow")
        offset = self.used_bytes
        self.parts[offset] = tag
        self.used_bytes += size
        return offset

    def fits(self, size: int) -> bool:
        """True when a ``size``-byte part still fits in this unit."""
        return self.used_bytes + size <= self.capacity

    def part_at(self, offset: int) -> Optional[Any]:
        """Tag stored at ``offset`` or None."""
        return self.parts.get(offset)


@dataclass
class PackedSector:
    """Contents of one sector of a *packed* (unaligned) journal stream.

    Conventional journaling appends header+value byte streams with no
    regard for sector boundaries, so one sector may hold fragments of
    several logs at arbitrary byte offsets.  Only the sector where a value
    *starts* records its tag; continuation sectors carry nothing
    addressable — which is exactly why packed logs cannot be remapped.
    """

    parts: Dict[int, Any] = field(default_factory=dict)

    def add(self, offset: int, tag: Any) -> None:
        """Record that a value starts at byte ``offset`` of this sector."""
        if not 0 <= offset < SECTOR_SIZE:
            raise EngineError(f"packed offset {offset} outside sector")
        if offset in self.parts:
            raise EngineError(f"two values start at offset {offset}")
        self.parts[offset] = tag

    def part_at(self, offset: int) -> Optional[Any]:
        """Tag of the value starting at ``offset`` or None."""
        return self.parts.get(offset)


def extract_part(sector_tag: Any, offset: int) -> Any:
    """Resolve a value tag from a sector payload.

    A plain (non-merged) sector stores the value tag directly and only
    offset 0 is meaningful; merged/packed sectors resolve through their
    per-offset parts.
    """
    if isinstance(sector_tag, (MergedPayload, PackedSector)):
        return sector_tag.part_at(offset)
    return sector_tag if offset == 0 else None


def extract_from_span(tags: Optional[Any], offset: int) -> Any:
    """Resolve a value tag from a multi-sector read span.

    ``offset`` is the byte offset of the value relative to the *first*
    sector of the span.  A packed record whose header straddles a sector
    boundary spans from the header's sector, so the value may start in a
    later sector (``offset >= 512``).  A merged unit keeps its whole
    payload on the first sector with unit-relative offsets, so it is
    resolved there directly.
    """
    if not tags:
        return None
    first = tags[0]
    if isinstance(first, MergedPayload):
        return first.part_at(offset)
    index, sub = divmod(offset, SECTOR_SIZE)
    if index >= len(tags):
        return None
    return extract_part(tags[index], sub)
