"""Check-In device-side components: ISCE, log format contract, Algorithm 1."""

from repro.checkin.checkpoint import CheckpointProcessor
from repro.checkin.deallocator import Deallocator
from repro.checkin.format import (
    ALIGN_SIZES,
    ALIGN_STEP,
    LogType,
    MergedPayload,
    PackedSector,
    align_full,
    align_sub_sector,
    extract_part,
)
from repro.checkin.isce import InStorageCheckpointEngine
from repro.checkin.log_manager import LogManager

__all__ = [
    "CheckpointProcessor",
    "Deallocator",
    "ALIGN_SIZES",
    "ALIGN_STEP",
    "LogType",
    "MergedPayload",
    "PackedSector",
    "align_full",
    "align_sub_sector",
    "extract_part",
    "InStorageCheckpointEngine",
    "LogManager",
]
