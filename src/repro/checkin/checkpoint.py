"""The in-storage checkpoint processor — Algorithm 1 of the paper.

Given the CoW descriptors decoded from a checkpoint command, the processor
creates the checkpoint by, per descriptor:

* **remapping** when the journal log is aligned to the FTL mapping unit on
  both ends: the physical units holding the log are aliased to the
  data-area LPNs — zero flash operations;
* **copying** otherwise: the source sectors are read (once — a per-command
  buffer in controller memory de-duplicates reads of merged sectors) and
  the values are written to their target locations through the normal
  out-of-place write path, which charges any read-modify-write overheads
  to the checkpoint.

``allow_remap=False`` models the ISC-A/ISC-B configurations whose FTL was
not modified: everything takes the copy path.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

from repro.checkin.format import extract_from_span
from repro.common.units import SECTOR_SIZE
from repro.ftl.ftl import Ftl
from repro.sim.core import Simulator, all_of
from repro.sim.process import spawn
from repro.ssd.commands import CowEntry


class CheckpointProcessor:
    """Executes CoW descriptor batches against one FTL."""

    PACE_HEADROOM = 2.0
    """Copy-path throttle: internal copies are paced to ``1/headroom`` of
    the array's aggregate program bandwidth so concurrent host queries
    are not starved behind a burst of checkpoint programs (the firmware
    fairness the deallocator section implies)."""

    def __init__(self, sim: Simulator, ftl: Ftl, allow_remap: bool = True) -> None:
        self.sim = sim
        self.ftl = ftl
        self.allow_remap = allow_remap
        self.stats = ftl.stats
        self._pace_until = 0
        self.host_pressure = None
        """Optional callable -> bool: True when host commands are waiting.
        Copies are paced only under pressure; an otherwise idle device
        (e.g. a locked checkpoint) copies at full array bandwidth."""
        self.device_writer = None
        """Optional controller-provided write path (generator taking
        ``(lba, nsectors, tags, stream, cause)``) that routes copy-path
        writes through the device's DRAM coalescing buffer."""
        self.device_reader = None
        """Optional controller-provided read path that overlays the DRAM
        coalescing buffer, so buffered journal tails are visible."""

    def _pace_delay(self, units: int) -> int:
        """Token-bucket delay keeping copies at a fraction of drain rate."""
        if self.host_pressure is not None and not self.host_pressure():
            self._pace_until = self.sim.now
            return 0
        drain_per_unit = (self.ftl.array.timing.program_ns /
                          (self.ftl.units_per_page *
                           self.ftl.geometry.num_luns))
        cost = int(units * drain_per_unit * self.PACE_HEADROOM)
        start = max(self.sim.now, self._pace_until)
        self._pace_until = start + cost
        return max(0, self._pace_until - self.sim.now)

    # ------------------------------------------------------------------
    def is_remappable(self, entry: CowEntry) -> bool:
        """True when the descriptor can be satisfied by pure remapping.

        Requires whole-mapping-unit alignment of source and destination,
        a whole-unit length, no sub-sector offset, and a mapped source.
        """
        if not self.allow_remap:
            return False
        spu = self.ftl.sectors_per_unit
        if entry.src_offset != 0:
            return False
        if entry.length_bytes is not None and \
                entry.length_bytes != entry.nsectors * SECTOR_SIZE:
            return False
        if entry.read_span != entry.nsectors:
            return False
        if entry.src_lba % spu or entry.dst_lba % spu or entry.nsectors % spu:
            return False
        first = self.ftl.lpn_of_lba(entry.src_lba)
        units = entry.nsectors // spu
        return all(self.ftl.mapping.is_mapped(first + i) for i in range(units))

    # ------------------------------------------------------------------
    def process(self, entries: Tuple[CowEntry, ...]
                ) -> Generator[Any, Any, Tuple[int, int]]:
        """Create the checkpoint; returns ``(remapped_units, copied_units)``.

        Remaps are batched into one mapping-table pass; copies are grouped
        so consecutive reads and consecutive writes hit flash in streams
        (the command-decoding optimisation of §III-C).
        """
        remap_pairs: List[Tuple[int, int]] = []
        copy_entries: List[CowEntry] = []
        for entry in entries:
            if self.is_remappable(entry):
                spu = self.ftl.sectors_per_unit
                src_first = self.ftl.lpn_of_lba(entry.src_lba)
                dst_first = self.ftl.lpn_of_lba(entry.dst_lba)
                for i in range(entry.nsectors // spu):
                    remap_pairs.append((src_first + i, dst_first + i))
            else:
                copy_entries.append(entry)

        if remap_pairs:
            yield from self.ftl.remap(remap_pairs, cause="ckpt")
            self.stats.counter("isce.remapped_units").add(len(remap_pairs))

        copied_units = 0
        if copy_entries:
            copied_units = yield from self._copy_batch(copy_entries)
            self.stats.counter("isce.copied_units").add(copied_units)
        return len(remap_pairs), copied_units

    # ------------------------------------------------------------------
    def _copy_batch(self, entries: List[CowEntry]) -> Generator[Any, Any, int]:
        """Copy-path descriptors: read sources once, scatter to targets."""
        # Phase 1: read every distinct source sector (merged sectors are
        # shared by several descriptors; buffer them in controller DRAM).
        buffered: Dict[int, Any] = {}
        for entry in entries:
            for sector in range(entry.src_lba, entry.src_lba + entry.read_span):
                buffered.setdefault(sector, None)
        sectors = sorted(buffered)
        runs = _contiguous_runs(sectors)

        def read_run(run_start: int, run_len: int):
            if self.device_reader is not None:
                tags = yield from self.device_reader(run_start, run_len)
            else:
                tags = yield from self.ftl.read(run_start, run_len)
            for i in range(run_len):
                buffered[run_start + i] = tags[i]

        readers = [spawn(self.sim, read_run(start, length),
                         name=f"cow-read@{start}")
                   for start, length in runs]
        if readers:
            yield all_of(self.sim, readers)

        # Phase 2: write every destination range through the normal path —
        # ascending target order so neighbouring records coalesce, with a
        # small worker pool so back-pressure waits overlap.
        copied_units = 0
        entries = sorted(entries, key=lambda e: e.dst_lba)
        queue = list(reversed(entries))

        def write_one(entry: CowEntry):
            if entry.src_offset == 0 and entry.length_bytes is None \
                    and entry.read_span == entry.nsectors:
                dst_tags = [buffered[entry.src_lba + i]
                            for i in range(entry.nsectors)]
            else:
                # Merged or packed value: extract it from its shared source
                # span and lay it at the start of the destination sector(s).
                span = [buffered[entry.src_lba + i]
                        for i in range(entry.read_span)]
                value_tag = extract_from_span(span, entry.src_offset)
                dst_tags = [value_tag] + [None] * (entry.nsectors - 1)
            if self.device_writer is not None:
                yield from self.device_writer(entry.dst_lba, entry.nsectors,
                                              dst_tags, "ckpt", "ckpt")
            else:
                yield from self.ftl.write(entry.dst_lba, entry.nsectors,
                                          tags=dst_tags, stream="ckpt",
                                          cause="ckpt")
            delay = self._pace_delay(len(self.ftl.lpn_span(entry.dst_lba,
                                                           entry.nsectors)))
            if delay:
                yield delay

        def worker():
            while queue:
                entry = queue.pop()
                yield from write_one(entry)

        writers = [spawn(self.sim, worker(), name=f"cow-write{i}")
                   for i in range(min(8, len(entries)))]
        if writers:
            yield all_of(self.sim, writers)
        for entry in entries:
            copied_units += len(self.ftl.lpn_span(entry.dst_lba, entry.nsectors))
        return copied_units


def _contiguous_runs(sorted_sectors: List[int]) -> List[Tuple[int, int]]:
    """Collapse a sorted sector list into (start, length) runs."""
    runs: List[Tuple[int, int]] = []
    if not sorted_sectors:
        return runs
    start = previous = sorted_sectors[0]
    for sector in sorted_sectors[1:]:
        if sector == previous + 1:
            previous = sector
            continue
        runs.append((start, previous - start + 1))
        start = previous = sector
    runs.append((start, previous - start + 1))
    return runs
