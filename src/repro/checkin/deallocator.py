"""ISCE deallocator: journal cleanup and idle-time garbage collection.

After a checkpoint is durable, the host sends ``DELETE_LOGS`` and the
deallocator frees the journal's mapping-table entries.  Because remapped
units are now referenced by data-area LPNs, trimming the journal does not
invalidate them — only genuinely superseded logs become garbage.

The deallocator also decides whether to run GC now: the paper defers GC to
device-idle periods instead of paying for it during checkpointing
(§III-F), which is a large part of the tail-latency win.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.ftl.ftl import Ftl
from repro.sim.core import Simulator


class Deallocator:
    """Journal trim plus the idle-GC policy."""

    def __init__(self, sim: Simulator, ftl: Ftl) -> None:
        self.sim = sim
        self.ftl = ftl

    def delete_logs(self, lba: int, nsectors: int) -> Generator[Any, Any, int]:
        """Deallocate a checkpointed journal range; returns freed units."""
        freed = yield from self.ftl.trim(lba, nsectors)
        self.ftl.stats.counter("isce.deleted_log_units").add(freed)
        return freed

    def should_collect(self, device_idle: bool) -> bool:
        """GC policy: always when space-critical, otherwise only when idle."""
        if self.ftl.gc.needs_urgent_collection():
            return True
        return device_idle and self.ftl.gc.wants_background_collection()

    def collect_idle(self) -> Generator[Any, Any, bool]:
        """One background GC pass; returns True when a block was reclaimed."""
        reclaimed = yield from self.ftl.gc.collect_once()
        if reclaimed:
            self.ftl.stats.counter("isce.idle_gc").add(1)
        return reclaimed
