"""The in-storage checkpointing engine (ISCE) facade.

Mirrors Figure 5: the Check-In SSD controller embeds an ISCE composed of a
log manager, a checkpoint processor and a deallocator.  The controller
routes vendor commands here:

* ``COW`` / ``COW_MULTI`` / ``CHECKPOINT`` → :class:`CheckpointProcessor`
* ``DELETE_LOGS``                          → :class:`Deallocator`

The ISCE runs on the device's embedded processor, so command decode time
is charged per descriptor before any flash work starts.
"""

from __future__ import annotations

from typing import Any, Generator, Tuple

from repro.checkin.checkpoint import CheckpointProcessor
from repro.checkin.deallocator import Deallocator
from repro.checkin.log_manager import LogManager
from repro.ftl.ftl import Ftl
from repro.sim.core import Simulator
from repro.ssd.commands import CowEntry


class InStorageCheckpointEngine:
    """Device-resident checkpointing engine."""

    DECODE_NS_PER_ENTRY = 120
    """Embedded-CPU cost to decode one CoW descriptor."""

    def __init__(self, sim: Simulator, ftl: Ftl, allow_remap: bool = True) -> None:
        self.sim = sim
        self.ftl = ftl
        self.program_loaded = False
        """True once the host downloaded the offload execution code
        (§III-C: "sent to the Check-In SSD only once before the first
        execution")."""
        self.log_manager = LogManager(sim, ftl)
        self.processor = CheckpointProcessor(sim, ftl, allow_remap=allow_remap)
        self.deallocator = Deallocator(sim, ftl)

    @property
    def allow_remap(self) -> bool:
        """Whether this device's FTL supports the remapping checkpoint."""
        return self.processor.allow_remap

    def execute_cow(self, entries: Tuple[CowEntry, ...]
                    ) -> Generator[Any, Any, Tuple[int, int]]:
        """Run a CoW batch; returns ``(remapped_units, copied_units)``."""
        tracer = self.sim.tracer
        span = tracer.begin("isce", "cow", entries=len(entries)) \
            if tracer.enabled else None
        yield len(entries) * self.DECODE_NS_PER_ENTRY
        result = yield from self.processor.process(entries)
        if span is not None:
            tracer.end(span, remapped=result[0], copied=result[1])
        recorder = self.sim.flightrec
        if recorder is not None:
            recorder.record(self.sim.now, "isce", "cow_batch",
                            span.span_id if span is not None else None,
                            {"entries": len(entries),
                             "remapped": result[0], "copied": result[1]})
        return result

    def checkpoint_complete(self) -> Generator[Any, Any, None]:
        """Called after the whole checkpoint: persist mapping metadata."""
        tracer = self.sim.tracer
        span = tracer.begin("isce", "mapping_persist") \
            if tracer.enabled else None
        self.log_manager.checkpoint_created()
        yield from self.ftl.persist_metadata(force=True)
        if span is not None:
            tracer.end(span)

    def delete_logs(self, lba: int, nsectors: int) -> Generator[Any, Any, int]:
        """Deallocate checkpointed journal logs."""
        tracer = self.sim.tracer
        span = tracer.begin("isce", "delete_logs", lba=lba,
                            nsectors=nsectors) \
            if tracer.enabled else None
        freed = yield from self.deallocator.delete_logs(lba, nsectors)
        if span is not None:
            tracer.end(span, freed_units=freed)
        return freed
