"""SSD device model: commands, cache, host interface, controller, facade."""

from repro.ssd.cache import DramReadCache
from repro.ssd.commands import (
    Command,
    Completion,
    CowEntry,
    Op,
    Status,
    read_command,
    write_command,
)
from repro.ssd.controller import ControllerConfig, SsdController
from repro.ssd.interface import HostInterface, InterfaceConfig
from repro.ssd.ssd import Ssd, SsdSpec

__all__ = [
    "DramReadCache",
    "Command",
    "Completion",
    "CowEntry",
    "Op",
    "Status",
    "read_command",
    "write_command",
    "ControllerConfig",
    "SsdController",
    "HostInterface",
    "InterfaceConfig",
    "Ssd",
    "SsdSpec",
]
