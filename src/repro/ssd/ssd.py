"""The SSD device facade: flash + FTL + controller + (optional) ISCE.

:class:`Ssd` is what the host storage engine talks to.  Construction wires
the whole device from one :class:`SsdSpec`; ``enable_isce`` selects a
Check-In SSD (vendor commands supported) versus a conventional device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from repro.flash.array import FlashArray
from repro.flash.geometry import FlashGeometry
from repro.flash.timing import FlashTiming
from repro.ftl.ftl import Ftl, FtlConfig
from repro.sim.core import Event, Simulator
from repro.sim.stats import StatRegistry
from repro.ssd.commands import Command, Completion, Op
from repro.ssd.controller import ControllerConfig, SsdController
from repro.ssd.interface import HostInterface, InterfaceConfig


@dataclass(frozen=True)
class SsdSpec:
    """Everything needed to build one device."""

    geometry: FlashGeometry = field(default_factory=FlashGeometry)
    timing: FlashTiming = field(default_factory=FlashTiming)
    ftl: FtlConfig = field(default_factory=FtlConfig)
    interface: InterfaceConfig = field(default_factory=InterfaceConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    enable_isce: bool = False
    allow_remap: bool = True

    @property
    def capacity_bytes(self) -> int:
        """Raw flash capacity of the spec."""
        return self.geometry.capacity_bytes


class Ssd:
    """A complete simulated device."""

    def __init__(self, sim: Simulator, spec: Optional[SsdSpec] = None) -> None:
        self.sim = sim
        self.spec = spec if spec is not None else SsdSpec()
        self.array = FlashArray(sim, self.spec.geometry, self.spec.timing)
        self.ftl = Ftl(sim, self.array, self.spec.ftl)
        self.interface = HostInterface(sim, self.spec.interface)
        from repro.checkin.isce import InStorageCheckpointEngine
        self.isce: Optional[InStorageCheckpointEngine] = None
        if self.spec.enable_isce:
            self.isce = InStorageCheckpointEngine(
                sim, self.ftl, allow_remap=self.spec.allow_remap)
        self.controller = SsdController(sim, self.ftl, self.interface,
                                        self.spec.controller, isce=self.isce)
        if self.isce is not None:
            # Device-internal copies share the controller's DRAM coalescer
            # and yield to host traffic only when some is actually waiting.
            self.isce.processor.device_writer = self.controller.device_write
            self.isce.processor.device_reader = self.controller.device_read
            self.isce.processor.host_pressure = (
                lambda: self.controller.outstanding_user > 0
                or self.interface.queued > 0)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> StatRegistry:
        """The device-wide statistics registry."""
        return self.ftl.stats

    @property
    def supports_in_storage_checkpoint(self) -> bool:
        """True when vendor CoW/checkpoint commands are available."""
        return self.isce is not None

    def submit(self, command: Command) -> Event:
        """Submit a command; event resolves with a Completion."""
        return self.controller.submit(command)

    def execute(self, command: Command) -> Generator[Any, Any, Completion]:
        """Submit and wait — convenience for single-command callers."""
        completion = yield self.submit(command)
        return completion

    # -- convenience wrappers used by tests and examples -----------------
    def read(self, lba: int, nsectors: int) -> Generator[Any, Any, List[Any]]:
        """Read tags for a sector range."""
        completion = yield self.submit(Command(op=Op.READ, lba=lba,
                                               nsectors=nsectors))
        return completion.tags

    def write(self, lba: int, nsectors: int, tags=None, fua: bool = False,
              stream: str = "data",
              cause: str = "host") -> Generator[Any, Any, Completion]:
        """Write a sector range."""
        completion = yield self.submit(Command(
            op=Op.WRITE, lba=lba, nsectors=nsectors, tags=tags, fua=fua,
            stream=stream, cause=cause))
        return completion

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start background services (idle GC daemon)."""
        self.controller.start_background_gc()

    def shutdown(self) -> None:
        """Stop background services so the event loop can drain."""
        self.controller.shutdown()

    def quiesce(self) -> Generator[Any, Any, None]:
        """Wait until all admitted commands and page programs finish."""
        while self.controller.outstanding or self.interface.queued:
            yield 10_000
        yield from self.ftl.drain()
