"""The SSD device facade: flash + FTL + controller + (optional) ISCE.

:class:`Ssd` is what the host storage engine talks to.  Construction wires
the whole device from one :class:`SsdSpec`; ``enable_isce`` selects a
Check-In SSD (vendor commands supported) versus a conventional device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

from repro.flash.array import FlashArray
from repro.flash.geometry import FlashGeometry
from repro.flash.media import MediaErrorConfig, MediaErrorModel
from repro.flash.timing import FlashTiming
from repro.ftl.ftl import Ftl, FtlConfig
from repro.sim.core import Event, Simulator
from repro.sim.stats import StatRegistry
from repro.common.errors import ConfigError
from repro.ssd.commands import Command, Completion, Op
from repro.ssd.controller import ControllerConfig, SsdController
from repro.ssd.interface import HostInterface, InterfaceConfig, NamespaceLayout


@dataclass(frozen=True)
class SsdSpec:
    """Everything needed to build one device."""

    geometry: FlashGeometry = field(default_factory=FlashGeometry)
    timing: FlashTiming = field(default_factory=FlashTiming)
    ftl: FtlConfig = field(default_factory=FtlConfig)
    interface: InterfaceConfig = field(default_factory=InterfaceConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    enable_isce: bool = False
    allow_remap: bool = True
    media: Optional[MediaErrorConfig] = None
    """NAND media-error model; None = perfect flash (legacy behaviour)."""
    media_seed: int = 0
    """Seed for the media model's deterministic failure draws."""

    @property
    def capacity_bytes(self) -> int:
        """Raw flash capacity of the spec."""
        return self.geometry.capacity_bytes


class Ssd:
    """A complete simulated device."""

    def __init__(self, sim: Simulator, spec: Optional[SsdSpec] = None) -> None:
        self.sim = sim
        self.spec = spec if spec is not None else SsdSpec()
        media_model = None
        if self.spec.media is not None:
            media_model = MediaErrorModel(self.spec.media,
                                          self.spec.media_seed)
        self.array = FlashArray(sim, self.spec.geometry, self.spec.timing,
                                media=media_model)
        self.ftl = Ftl(sim, self.array, self.spec.ftl)
        self.interface = HostInterface(sim, self.spec.interface)
        from repro.checkin.isce import InStorageCheckpointEngine
        self.isce: Optional[InStorageCheckpointEngine] = None
        if self.spec.enable_isce:
            self.isce = InStorageCheckpointEngine(
                sim, self.ftl, allow_remap=self.spec.allow_remap)
        self.controller = SsdController(sim, self.ftl, self.interface,
                                        self.spec.controller, isce=self.isce)
        if self.isce is not None:
            # Device-internal copies share the controller's DRAM coalescer
            # and yield to host traffic only when some is actually waiting.
            self.isce.processor.device_writer = self.controller.device_write
            self.isce.processor.device_reader = self.controller.device_read
            self.isce.processor.host_pressure = (
                lambda: self.controller.outstanding_user > 0
                or self.interface.queued > 0)

        self.namespaces: Optional[NamespaceLayout] = None

    # ------------------------------------------------------------------
    # namespaces
    # ------------------------------------------------------------------
    def configure_namespaces(self, layout: NamespaceLayout) -> None:
        """Shard the device into NVMe-style namespaces.

        Must run before any traffic.  Ranges must be aligned to the FTL
        mapping unit so no unit straddles a namespace boundary; the
        controller then range-checks every command and the FTL segregates
        write streams per namespace.
        """
        spu = self.ftl.sectors_per_unit
        for entry in layout:
            if entry.lba_start % spu or entry.nsectors % spu:
                raise ConfigError(
                    f"namespace {entry.label} is not aligned to the "
                    f"{spu}-sector mapping unit")
            if entry.lba_end > self.spec.geometry.capacity_bytes // 512:
                raise ConfigError(
                    f"namespace {entry.label} exceeds the device LBA space")
        self.namespaces = layout
        self.controller.configure_namespaces(layout)
        self.ftl.set_namespaces([
            (entry.nsid, entry.lba_start // spu, entry.nsectors // spu)
            for entry in layout])

    def namespace(self, nsid: int) -> "NamespaceHandle":
        """A per-tenant handle that stamps ``nsid`` on every command."""
        if self.namespaces is None:
            raise ConfigError("device has no namespaces configured")
        self.namespaces.get(nsid)  # validate existence
        return NamespaceHandle(self, nsid)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> StatRegistry:
        """The device-wide statistics registry."""
        return self.ftl.stats

    @property
    def supports_in_storage_checkpoint(self) -> bool:
        """True when vendor CoW/checkpoint commands are available."""
        return self.isce is not None

    @property
    def degraded(self) -> bool:
        """True once the device dropped to read-only degraded mode."""
        return self.ftl.read_only

    @property
    def degraded_reason(self) -> str:
        """Why the device degraded ('' while healthy)."""
        return self.ftl.degraded_reason

    def submit(self, command: Command) -> Event:
        """Submit a command; event resolves with a Completion."""
        return self.controller.submit(command)

    def execute(self, command: Command) -> Generator[Any, Any, Completion]:
        """Submit and wait — convenience for single-command callers."""
        completion = yield self.submit(command)
        return completion

    # -- convenience wrappers used by tests and examples -----------------
    def read(self, lba: int, nsectors: int) -> Generator[Any, Any, List[Any]]:
        """Read tags for a sector range."""
        completion = yield self.submit(Command(op=Op.READ, lba=lba,
                                               nsectors=nsectors))
        return completion.tags

    def write(self, lba: int, nsectors: int, tags=None, fua: bool = False,
              stream: str = "data",
              cause: str = "host") -> Generator[Any, Any, Completion]:
        """Write a sector range."""
        completion = yield self.submit(Command(
            op=Op.WRITE, lba=lba, nsectors=nsectors, tags=tags, fua=fua,
            stream=stream, cause=cause))
        return completion

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start background services (idle GC daemon)."""
        self.controller.start_background_gc()

    def shutdown(self) -> None:
        """Stop background services so the event loop can drain."""
        self.controller.shutdown()

    def quiesce(self) -> Generator[Any, Any, None]:
        """Wait until all admitted commands and page programs finish."""
        while self.controller.outstanding or self.interface.queued:
            yield 10_000
        yield from self.ftl.drain()


class NamespaceHandle:
    """One tenant's view of a shared namespaced device.

    Wraps an :class:`Ssd` and stamps the tenant's namespace id on every
    submitted command, so the controller can verify the addressed range
    against the submitter's identity (not just the range's owner).  All
    other attributes delegate to the underlying device — a handle is a
    drop-in ``ssd`` for :class:`repro.engine.engine.StorageEngine`.
    """

    def __init__(self, device: Ssd, nsid: int) -> None:
        self.device = device
        self.nsid = nsid

    def submit(self, command: Command) -> Event:
        """Stamp the namespace id and submit to the shared controller."""
        if command.nsid is None and command.op not in (Op.FLUSH,
                                                       Op.LOAD_PROGRAM):
            command.nsid = self.nsid
        return self.device.submit(command)

    def execute(self, command: Command) -> Generator[Any, Any, Completion]:
        """Submit through this namespace and wait."""
        completion = yield self.submit(command)
        return completion

    def read(self, lba: int, nsectors: int) -> Generator[Any, Any, List[Any]]:
        """Read tags for a sector range inside this namespace."""
        completion = yield self.submit(Command(op=Op.READ, lba=lba,
                                               nsectors=nsectors))
        return completion.tags

    def write(self, lba: int, nsectors: int, tags=None, fua: bool = False,
              stream: str = "data",
              cause: str = "host") -> Generator[Any, Any, Completion]:
        """Write a sector range inside this namespace."""
        completion = yield self.submit(Command(
            op=Op.WRITE, lba=lba, nsectors=nsectors, tags=tags, fua=fua,
            stream=stream, cause=cause))
        return completion

    def __getattr__(self, name: str) -> Any:
        return getattr(self.device, name)
