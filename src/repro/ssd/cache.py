"""Device DRAM read cache.

The SSD's data cache (Table I lists a DRAM data cache) serves repeated
reads — most importantly the journal logs a *conventional* checkpoint reads
back right after writing them.  The cache indexes whole mapping units by
LPN; a read hits only when every touched unit is resident.

Eviction is LRU.  Writes allocate into the cache (the just-written journal
log is the hottest possible data during checkpointing).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional, Tuple

from repro.common.errors import ConfigError
from repro.telemetry.names import safe_ratio

UnitTags = Tuple[Any, ...]


class DramReadCache:
    """LRU cache of mapping-unit payloads keyed by LPN."""

    def __init__(self, capacity_units: int) -> None:
        if capacity_units < 0:
            raise ConfigError("cache capacity must be >= 0")
        self.capacity_units = capacity_units
        self._entries: "OrderedDict[int, UnitTags]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        """False for a zero-capacity (disabled) cache."""
        return self.capacity_units > 0

    def get(self, lpn: int) -> Optional[UnitTags]:
        """Unit payload for ``lpn`` or None; updates recency and hit stats."""
        if not self.enabled:
            self.misses += 1
            return None
        entry = self._entries.get(lpn)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(lpn)
        self.hits += 1
        return entry

    def peek(self, lpn: int) -> Optional[UnitTags]:
        """Like :meth:`get` but with no stats or recency side effects."""
        return self._entries.get(lpn)

    def put(self, lpn: int, unit_tags: UnitTags) -> None:
        """Insert/refresh a unit, evicting the least recently used."""
        if not self.enabled:
            return
        self._entries[lpn] = unit_tags
        self._entries.move_to_end(lpn)
        while len(self._entries) > self.capacity_units:
            self._entries.popitem(last=False)

    def invalidate(self, lpn: int) -> None:
        """Drop one unit (after trim or remap redirection)."""
        self._entries.pop(lpn, None)

    def clear(self) -> None:
        """Drop every entry (power cut: the DRAM cache is volatile)."""
        self._entries.clear()

    def invalidate_range(self, first_lpn: int, last_lpn: int) -> None:
        """Drop every cached unit in [first_lpn, last_lpn]."""
        if last_lpn - first_lpn > len(self._entries):
            for lpn in [k for k in self._entries if first_lpn <= k <= last_lpn]:
                del self._entries[lpn]
        else:
            for lpn in range(first_lpn, last_lpn + 1):
                self._entries.pop(lpn, None)

    def hit_ratio(self) -> float:
        """Fraction of lookups served from DRAM."""
        return safe_ratio(self.hits, self.hits + self.misses)
