"""Block-interface command set, including the vendor-specific extensions.

The paper keeps the standard NVMe block interface and adds vendor-specific
commands (§III-C): a single CoW command (ISC-A), a multi-CoW command
(ISC-B/C), and a checkpoint request command that carries the metadata so
the device can decode it and run many CoW operations from one submission
(Check-In).  ``DELETE_LOGS`` is the journal deallocation command sent once
a checkpoint is durable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.common.errors import CommandError


class Status(enum.Enum):
    """Typed completion status returned to the host (NVMe-style).

    Media problems surface here as data, not exceptions: the submitting
    process always receives a :class:`Completion` and decides what to do,
    instead of dying on a propagated device-internal error.
    """

    OK = "ok"
    RETRIED_OK = "retried_ok"      # succeeded after controller retries
    MEDIA_ERROR = "media_error"    # retry budget exhausted
    READ_ONLY = "read_only"        # device is in degraded (read-only) mode


class Op(enum.Enum):
    """Command opcodes understood by the simulated device."""

    READ = "read"
    WRITE = "write"
    FLUSH = "flush"
    TRIM = "trim"
    COW = "cow"                  # vendor: one copy-on-write descriptor
    COW_MULTI = "cow_multi"      # vendor: batched copy-on-write descriptors
    CHECKPOINT = "checkpoint"    # vendor: metadata-driven multi-CoW
    DELETE_LOGS = "delete_logs"  # vendor: deallocate checkpointed journal
    LOAD_PROGRAM = "load_program"  # vendor: one-time offload-code download


@dataclass(frozen=True)
class CowEntry:
    """One copy-on-write descriptor: journal location → data location.

    ``src_offset``/``length_bytes`` support the merged-partial case of
    sector-aligned journaling: several sub-sector values share one source
    sector, each destined for its own target sector.
    """

    src_lba: int
    dst_lba: int
    nsectors: int = 1
    """Destination (data-area) sectors to produce."""

    src_nsectors: Optional[int] = None
    """Journal sectors to read; defaults to ``nsectors``."""

    src_offset: int = 0
    length_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.src_lba < 0 or self.dst_lba < 0:
            raise CommandError("negative LBA in CoW entry")
        if self.nsectors < 1:
            raise CommandError("CoW entry must cover at least one sector")
        if self.src_nsectors is not None and self.src_nsectors < 1:
            raise CommandError("src_nsectors must be >= 1 when given")
        if self.src_offset < 0:
            raise CommandError("negative source offset")

    @property
    def read_span(self) -> int:
        """Source sectors the device must fetch for this entry."""
        return self.src_nsectors if self.src_nsectors is not None else self.nsectors


class Command:
    """A host command plus its payload descriptors.

    A plain ``__slots__`` class (not a dataclass): one instance is built
    per host operation, so construction cost and per-instance ``__dict__``
    overhead sit directly on the hot path.

    ``nsid`` is the NVMe-style namespace id.  ``None`` means unspecified:
    on a device with namespaces configured the controller derives it from
    the LBA range (and rejects ranges that straddle namespaces); when
    set, the controller additionally verifies the addressed range belongs
    to exactly this namespace.

    ``span`` is the submitter's trace span (or None): the controller
    parents its own device-side span under it, threading the trace
    context across the host interface without changing any timing.

    ``blame`` is the submitter's device-side attribution dict (or None):
    when a request carries a blame ledger the submitter assigns an empty
    dict before submit and folds it back into the ledger on completion
    (see :mod:`repro.obs.blame`).  Like ``span`` it never changes timing.
    """

    __slots__ = ("op", "lba", "nsectors", "tags", "fua", "stream", "cause",
                 "entries", "nsid", "span", "blame")

    def __init__(self, op: Op, lba: int = 0, nsectors: int = 0,
                 tags: Optional[Sequence[Any]] = None, fua: bool = False,
                 stream: str = "data", cause: str = "host",
                 entries: Tuple[CowEntry, ...] = (),
                 nsid: Optional[int] = None, span: Any = None) -> None:
        self.op = op
        self.lba = lba
        self.nsectors = nsectors
        self.tags = tags
        self.fua = fua
        self.stream = stream
        self.cause = cause
        self.entries = entries
        self.nsid = nsid
        self.span = span
        self.blame = None
        if nsid is not None and nsid < 0:
            raise CommandError(f"negative namespace id {nsid}")
        if op in (Op.READ, Op.WRITE, Op.TRIM):
            if nsectors < 1:
                raise CommandError(f"{op.value} needs nsectors >= 1")
            if lba < 0:
                raise CommandError("negative lba")
        if op is Op.WRITE and tags is not None and len(tags) != nsectors:
            raise CommandError(
                f"write carries {len(tags)} tags for {nsectors} sectors")
        if op in (Op.COW, Op.COW_MULTI, Op.CHECKPOINT) and not entries:
            raise CommandError(f"{op.value} requires CoW entries")
        if op is Op.COW and len(entries) != 1:
            raise CommandError("single COW carries exactly one entry")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Command(op={self.op!r}, lba={self.lba}, "
                f"nsectors={self.nsectors}, stream={self.stream!r}, "
                f"cause={self.cause!r}, entries={len(self.entries)})")

    @property
    def data_bytes(self) -> int:
        """Payload moved over the host interface for this command."""
        if self.op in (Op.READ, Op.WRITE):
            return self.nsectors * 512
        if self.op in (Op.COW, Op.COW_MULTI, Op.CHECKPOINT):
            # Descriptors only: 16 B per entry, no data payload.
            return 16 * len(self.entries)
        if self.op is Op.LOAD_PROGRAM:
            return self.nsectors * 512  # the offload execution code image
        return 0


class Completion:
    """Result handed back to the submitter.

    A plain ``__slots__`` class for the same reason as :class:`Command`:
    one per host operation, mutated in place by the controller.

    ``retries`` counts controller-level re-dispatches this command needed
    (media errors); ``error`` carries the human-readable failure detail
    when ``status`` is not a success.
    """

    __slots__ = ("command", "submitted_at", "completed_at", "tags",
                 "remapped_units", "copied_units", "status", "retries",
                 "error")

    def __init__(self, command: Command, submitted_at: int,
                 completed_at: int, tags: Optional[List[Any]] = None,
                 remapped_units: int = 0, copied_units: int = 0,
                 status: Status = Status.OK, retries: int = 0,
                 error: str = "") -> None:
        self.command = command
        self.submitted_at = submitted_at
        self.completed_at = completed_at
        self.tags = tags
        self.remapped_units = remapped_units
        self.copied_units = copied_units
        self.status = status
        self.retries = retries
        self.error = error

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Completion(op={self.command.op!r}, "
                f"status={self.status!r}, latency_ns={self.latency_ns})")

    @property
    def ok(self) -> bool:
        """True when the command ultimately succeeded."""
        return self.status in (Status.OK, Status.RETRIED_OK)

    @property
    def latency_ns(self) -> int:
        """End-to-end device latency for this command."""
        return self.completed_at - self.submitted_at


def read_command(lba: int, nsectors: int) -> Command:
    """Convenience constructor for a read."""
    return Command(op=Op.READ, lba=lba, nsectors=nsectors)


def write_command(lba: int, nsectors: int, tags: Optional[Sequence[Any]] = None,
                  fua: bool = False, stream: str = "data",
                  cause: str = "host") -> Command:
    """Convenience constructor for a write."""
    return Command(op=Op.WRITE, lba=lba, nsectors=nsectors, tags=tags,
                   fua=fua, stream=stream, cause=cause)
