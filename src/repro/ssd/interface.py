"""Host interface model: NVMe-style submission queue plus PCIe link.

Two contention points matter for the paper's results:

* the **queue depth** bounds how many commands are outstanding — the
  single-CoW configuration (ISC-A) suffers exactly because thousands of
  tiny commands fight for slots (§III-C);
* the **PCIe link** carries data payloads; conventional checkpointing
  moves every journal log device→host and back, while CoW commands move
  16-byte descriptors only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.common.errors import ConfigError
from repro.common.units import transfer_time_ns
from repro.sim.core import Simulator
from repro.sim.resources import Resource


@dataclass(frozen=True)
class InterfaceConfig:
    """Host-interface timing and queue parameters."""

    queue_depth: int = 64
    """Outstanding-command limit of the submission queue."""

    command_overhead_ns: int = 5_000
    """Fixed per-command cost: doorbells, DMA descriptors, completion."""

    pcie_bandwidth: int = 3_200_000_000
    """Effective PCIe payload bandwidth, bytes/second (PCIe 3.0 x4-ish)."""

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        if self.command_overhead_ns < 0:
            raise ConfigError("command_overhead_ns must be >= 0")
        if self.pcie_bandwidth <= 0:
            raise ConfigError("pcie_bandwidth must be positive")


class HostInterface:
    """Queue-slot admission plus timed link transfers."""

    def __init__(self, sim: Simulator, config: InterfaceConfig) -> None:
        self.sim = sim
        self.config = config
        self.queue = Resource(sim, config.queue_depth, name="sq")
        self._link = Resource(sim, 1, name="pcie")

    @property
    def outstanding(self) -> int:
        """Commands currently holding a queue slot."""
        return self.queue.in_use

    @property
    def queued(self) -> int:
        """Commands waiting for a slot."""
        return self.queue.queue_length

    def acquire_slot(self) -> Any:
        """Event that fires when a submission-queue slot is granted."""
        return self.queue.acquire()

    def release_slot(self) -> None:
        """Return the slot at command completion."""
        self.queue.release()

    def transfer(self, num_bytes: int) -> Generator[Any, Any, None]:
        """Move ``num_bytes`` over the shared link (0 bytes is free)."""
        if num_bytes <= 0:
            return
        yield self._link.acquire()
        try:
            yield transfer_time_ns(num_bytes, self.config.pcie_bandwidth)
        finally:
            self._link.release()

    def command_overhead(self) -> int:
        """Per-command fixed latency (submission + completion path)."""
        return self.config.command_overhead_ns
