"""Host interface model: NVMe-style submission queue plus PCIe link.

Two contention points matter for the paper's results:

* the **queue depth** bounds how many commands are outstanding — the
  single-CoW configuration (ISC-A) suffers exactly because thousands of
  tiny commands fight for slots (§III-C);
* the **PCIe link** carries data payloads; conventional checkpointing
  moves every journal log device→host and back, while CoW commands move
  16-byte descriptors only.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterator, Optional, Sequence, Tuple

from repro.common.errors import ConfigError, NamespaceError
from repro.common.units import transfer_time_ns
from repro.sim.core import Simulator
from repro.sim.resources import Resource


@dataclass(frozen=True)
class NamespaceRange:
    """One NVMe-style namespace: a contiguous slice of the LBA space.

    Tenants address the device in absolute LBAs; isolation comes from the
    controller refusing any command whose sector (or CoW source/target)
    range leaves the namespace it belongs to.
    """

    nsid: int
    lba_start: int
    nsectors: int
    name: str = ""

    def __post_init__(self) -> None:
        if self.nsid < 0:
            raise ConfigError(f"negative namespace id {self.nsid}")
        if self.lba_start < 0 or self.nsectors < 1:
            raise ConfigError(
                f"namespace {self.nsid} needs lba_start >= 0 and nsectors >= 1")

    @property
    def lba_end(self) -> int:
        """One past the last sector of the namespace."""
        return self.lba_start + self.nsectors

    @property
    def label(self) -> str:
        """Human-readable identity for reports."""
        return self.name or f"ns{self.nsid}"


class NamespaceLayout:
    """The full partition of a device's LBA space into namespaces."""

    def __init__(self, ranges: Sequence[NamespaceRange]) -> None:
        if not ranges:
            raise ConfigError("namespace layout needs at least one range")
        ordered = sorted(ranges, key=lambda r: r.lba_start)
        seen: Dict[int, NamespaceRange] = {}
        for earlier, later in zip(ordered, ordered[1:]):
            if earlier.lba_end > later.lba_start:
                raise ConfigError(
                    f"namespaces {earlier.nsid} and {later.nsid} overlap")
        for entry in ordered:
            if entry.nsid in seen:
                raise ConfigError(f"duplicate namespace id {entry.nsid}")
            seen[entry.nsid] = entry
        self.ranges: Tuple[NamespaceRange, ...] = tuple(ordered)
        self._by_nsid = seen
        self._starts = [entry.lba_start for entry in ordered]

    def __len__(self) -> int:
        return len(self.ranges)

    def __iter__(self) -> Iterator[NamespaceRange]:
        return iter(self.ranges)

    def get(self, nsid: int) -> NamespaceRange:
        """The range registered under ``nsid``."""
        try:
            return self._by_nsid[nsid]
        except KeyError:
            raise NamespaceError(f"unknown namespace id {nsid}") from None

    def nsid_of(self, lba: int) -> Optional[int]:
        """Namespace containing sector ``lba`` (None when unowned)."""
        index = bisect.bisect_right(self._starts, lba) - 1
        if index < 0:
            return None
        entry = self.ranges[index]
        return entry.nsid if lba < entry.lba_end else None

    def resolve(self, lba: int, nsectors: int) -> int:
        """The single namespace owning ``[lba, lba + nsectors)``.

        Raises :class:`NamespaceError` when the range is outside every
        namespace or straddles a boundary — the controller-side
        enforcement of tenant isolation.
        """
        nsid = self.nsid_of(lba)
        if nsid is None:
            raise NamespaceError(
                f"lba {lba} belongs to no configured namespace")
        entry = self._by_nsid[nsid]
        if lba + nsectors > entry.lba_end:
            raise NamespaceError(
                f"range [{lba}, {lba + nsectors}) escapes namespace "
                f"{entry.label} (ends at {entry.lba_end})")
        return nsid


@dataclass(frozen=True)
class InterfaceConfig:
    """Host-interface timing and queue parameters."""

    queue_depth: int = 64
    """Outstanding-command limit of the submission queue."""

    command_overhead_ns: int = 5_000
    """Fixed per-command cost: doorbells, DMA descriptors, completion."""

    pcie_bandwidth: int = 3_200_000_000
    """Effective PCIe payload bandwidth, bytes/second (PCIe 3.0 x4-ish)."""

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ConfigError("queue_depth must be >= 1")
        if self.command_overhead_ns < 0:
            raise ConfigError("command_overhead_ns must be >= 0")
        if self.pcie_bandwidth <= 0:
            raise ConfigError("pcie_bandwidth must be positive")


class HostInterface:
    """Queue-slot admission plus timed link transfers."""

    def __init__(self, sim: Simulator, config: InterfaceConfig) -> None:
        self.sim = sim
        self.config = config
        self.queue = Resource(sim, config.queue_depth, name="sq")
        self._link = Resource(sim, 1, name="pcie")
        self._outstanding_ns: Dict[int, int] = {}

    @property
    def outstanding(self) -> int:
        """Commands currently holding a queue slot."""
        return self.queue.in_use

    @property
    def queued(self) -> int:
        """Commands waiting for a slot."""
        return self.queue.queue_length

    # -- per-namespace accounting ---------------------------------------
    def note_admitted(self, nsid: Optional[int]) -> None:
        """Record one admitted command for ``nsid`` (None = unowned)."""
        if nsid is not None:
            self._outstanding_ns[nsid] = self._outstanding_ns.get(nsid, 0) + 1

    def note_completed(self, nsid: Optional[int]) -> None:
        """Record one completed command for ``nsid``."""
        if nsid is not None:
            remaining = self._outstanding_ns.get(nsid, 0) - 1
            if remaining <= 0:
                self._outstanding_ns.pop(nsid, None)
            else:
                self._outstanding_ns[nsid] = remaining

    def outstanding_in(self, nsid: int) -> int:
        """Admitted-but-incomplete commands belonging to one namespace."""
        return self._outstanding_ns.get(nsid, 0)

    def acquire_slot(self) -> Any:
        """Event that fires when a submission-queue slot is granted."""
        return self.queue.acquire()

    def release_slot(self) -> None:
        """Return the slot at command completion."""
        self.queue.release()

    def transfer(self, num_bytes: int) -> Generator[Any, Any, None]:
        """Move ``num_bytes`` over the shared link (0 bytes is free)."""
        if num_bytes <= 0:
            return
        yield self._link.acquire()
        try:
            yield transfer_time_ns(num_bytes, self.config.pcie_bandwidth)
        finally:
            self._link.release()

    def command_overhead(self) -> int:
        """Per-command fixed latency (submission + completion path)."""
        return self.config.command_overhead_ns
