"""Device write coalescer: the DRAM write cache of the data-cache tier.

Sub-unit host writes land here first (capacitor-backed, so they are
durable on acknowledgement).  Sequential appends — the journal stream —
merge into the same mapping unit until it is fully covered, at which point
the unit flushes to the FTL as one full-unit write with no
read-modify-write.  This is why a conventional SSD absorbs a sequential
512-byte WAL gracefully even with 4 KiB page mapping, while the *random*
sub-unit writes of a conventional checkpoint still pay RMW: scattered
units rarely fill before they are evicted.

Reads and recovery must overlay this buffer over flash state; trims drop
overlapping entries.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigError


@dataclass
class CoalescedUnit:
    """One mapping unit being assembled in device DRAM."""

    lpn: int
    tags: List[Any]
    covered: List[bool]
    cause: str
    stream: str

    @property
    def full(self) -> bool:
        """True once every sector of the unit has been written."""
        return all(self.covered)

    @property
    def covered_runs(self) -> List[Tuple[int, int]]:
        """Covered (offset, length) runs, for partial evictions."""
        runs: List[Tuple[int, int]] = []
        start: Optional[int] = None
        for index, flag in enumerate(self.covered):
            if flag and start is None:
                start = index
            elif not flag and start is not None:
                runs.append((start, index - start))
                start = None
        if start is not None:
            runs.append((start, len(self.covered) - start))
        return runs


class WriteCoalescer:
    """LRU buffer of partially written mapping units."""

    def __init__(self, sectors_per_unit: int, capacity_units: int) -> None:
        if sectors_per_unit < 1:
            raise ConfigError("sectors_per_unit must be >= 1")
        if capacity_units < 0:
            raise ConfigError("capacity must be >= 0")
        self.sectors_per_unit = sectors_per_unit
        self.capacity_units = capacity_units
        self._entries: "OrderedDict[int, CoalescedUnit]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        """False for a zero-capacity (write-through) configuration."""
        return self.capacity_units > 0

    # ------------------------------------------------------------------
    def merge(self, lba: int, nsectors: int, tags: Optional[Sequence[Any]],
              cause: str, stream: str) -> List[CoalescedUnit]:
        """Absorb a write; returns units that became full (to flush now).

        The caller must write the returned units to the FTL and then
        :meth:`evict_pressure` to honour the capacity bound.
        """
        spu = self.sectors_per_unit
        ready: List[CoalescedUnit] = []
        first_lpn = lba // spu
        last_lpn = (lba + nsectors - 1) // spu
        for lpn in range(first_lpn, last_lpn + 1):
            entry = self._entries.get(lpn)
            if entry is None:
                entry = CoalescedUnit(lpn=lpn, tags=[None] * spu,
                                      covered=[False] * spu,
                                      cause=cause, stream=stream)
                self._entries[lpn] = entry
            else:
                entry.cause = cause
                entry.stream = stream
            self._entries.move_to_end(lpn)
            unit_first = lpn * spu
            start = max(lba, unit_first)
            end = min(lba + nsectors, unit_first + spu)
            for sector in range(start, end):
                offset = sector - unit_first
                entry.tags[offset] = tags[sector - lba] if tags is not None \
                    else None
                entry.covered[offset] = True
            if entry.full:
                ready.append(entry)
                del self._entries[lpn]
        return ready

    def evict_pressure(self) -> List[CoalescedUnit]:
        """Entries evicted to honour the capacity bound (LRU order)."""
        evicted: List[CoalescedUnit] = []
        while len(self._entries) > self.capacity_units:
            _lpn, entry = self._entries.popitem(last=False)
            evicted.append(entry)
        return evicted

    def drain_all(self) -> List[CoalescedUnit]:
        """Remove and return every buffered unit (FLUSH command)."""
        entries = list(self._entries.values())
        self._entries.clear()
        return entries

    def drain_range(self, lba: int, nsectors: int) -> List[CoalescedUnit]:
        """Remove and return units overlapping a sector range."""
        spu = self.sectors_per_unit
        first_lpn = lba // spu
        last_lpn = (lba + nsectors - 1) // spu
        drained: List[CoalescedUnit] = []
        for lpn in self._candidates(first_lpn, last_lpn):
            drained.append(self._entries.pop(lpn))
        return drained

    def discard_range(self, lba: int, nsectors: int) -> int:
        """Drop the trimmed sectors of overlapping units; returns units freed.

        Partially overlapping units lose only the trimmed sectors'
        ``covered`` flags and tags — keeping them would let
        :meth:`overlay` resurrect trimmed data into later reads.  An
        entry is removed once nothing of it remains covered.
        """
        spu = self.sectors_per_unit
        dropped = 0
        first_lpn = lba // spu
        last_lpn = (lba + nsectors - 1) // spu
        for lpn in self._candidates(first_lpn, last_lpn):
            entry = self._entries[lpn]
            unit_first = lpn * spu
            start = max(lba, unit_first)
            end = min(lba + nsectors, unit_first + spu)
            for sector in range(start, end):
                offset = sector - unit_first
                entry.covered[offset] = False
                entry.tags[offset] = None
            if not any(entry.covered):
                del self._entries[lpn]
                dropped += 1
        return dropped

    def _candidates(self, first_lpn: int, last_lpn: int) -> List[int]:
        if last_lpn - first_lpn > len(self._entries):
            return [lpn for lpn in self._entries
                    if first_lpn <= lpn <= last_lpn]
        return [lpn for lpn in range(first_lpn, last_lpn + 1)
                if lpn in self._entries]

    # ------------------------------------------------------------------
    def peek(self, lpn: int) -> Optional[CoalescedUnit]:
        """Buffered unit for ``lpn`` (no LRU side effects) or None."""
        return self._entries.get(lpn)

    def overlay(self, lba: int, nsectors: int, tags: List[Any]) -> List[Any]:
        """Patch a read result with buffered (newer) sector contents."""
        spu = self.sectors_per_unit
        for index in range(nsectors):
            sector = lba + index
            entry = self._entries.get(sector // spu)
            if entry is None:
                continue
            offset = sector % spu
            if entry.covered[offset]:
                tags[index] = entry.tags[offset]
        return tags

    def items(self) -> Iterator[Tuple[int, CoalescedUnit]]:
        """Iterate buffered units (recovery scan)."""
        return iter(list(self._entries.items()))
