"""SSD controller: command dispatch on the embedded processors.

The controller owns the host-visible behaviour of the device:

* admission through the NVMe-style submission queue;
* PCIe payload transfers (writes in, reads out — CoW commands move
  descriptors only, which is the offloading win of Figure 4);
* firmware CPU time on a small pool of embedded cores;
* the DRAM read cache;
* dispatch to the FTL, and to the ISCE for vendor commands;
* an idle-time background GC daemon (the deallocator policy of §III-F).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from repro.common.errors import (
    CommandError,
    ConfigError,
    DeviceFullError,
    MediaError,
    NamespaceError,
)
from repro.common.units import US
from repro.ftl.ftl import Ftl
from repro.obs.blame import add_ns
from repro.sim.core import Event, Simulator
from repro.sim.process import spawn
from repro.sim.resources import Resource
from repro.sim.stats import TimeWeightedGauge
from repro.ssd.cache import DramReadCache
from repro.ssd.coalescer import CoalescedUnit, WriteCoalescer
from repro.ssd.commands import Command, Completion, Op, Status
from repro.ssd.interface import HostInterface, NamespaceLayout

if TYPE_CHECKING:  # avoid a package-level import cycle with repro.checkin
    from repro.checkin.isce import InStorageCheckpointEngine


@dataclass(frozen=True)
class ControllerConfig:
    """Embedded-processor and cache parameters."""

    cpu_cores: int = 2
    """Embedded cores available to firmware command handling."""

    cpu_command_ns: int = 1_500
    """Firmware cost per command (parse, map-cache lookups, completion)."""

    cpu_sector_ns: int = 50
    """Incremental firmware cost per sector of payload."""

    read_cache_units: int = 4096
    """DRAM read-cache capacity in mapping units."""

    write_coalesce_bytes: int = 1024 * 1024
    """DRAM write-coalescing buffer capacity in bytes (0 = write
    through).  Capacitor-backed: writes are durable once merged here."""

    idle_gc_interval_ns: int = 500 * US
    """How often the background daemon checks for idle-time GC."""

    media_retry_limit: int = 3
    """Whole-command re-dispatches after a media error before the
    command completes with ``Status.MEDIA_ERROR``."""

    media_retry_backoff_ns: int = 100_000
    """Backoff before re-dispatching, multiplied by the attempt number
    (linear backoff in simulated time)."""

    def __post_init__(self) -> None:
        if self.cpu_cores < 1:
            raise ConfigError("cpu_cores must be >= 1")
        if self.idle_gc_interval_ns <= 0:
            raise ConfigError("idle_gc_interval_ns must be positive")
        if self.media_retry_limit < 0:
            raise ConfigError("media_retry_limit must be >= 0")
        if self.media_retry_backoff_ns < 0:
            raise ConfigError("media_retry_backoff_ns must be >= 0")


MUTATING_OPS = (Op.WRITE, Op.TRIM, Op.COW, Op.COW_MULTI, Op.CHECKPOINT,
                Op.DELETE_LOGS)
"""Opcodes rejected with ``Status.READ_ONLY`` on a degraded device.
FLUSH stays accepted (it degenerates to a no-op: buffered content is
already capacitor-protected and nothing new may reach flash)."""


class SsdController:
    """Per-command processing pipeline."""

    def __init__(self, sim: Simulator, ftl: Ftl, interface: HostInterface,
                 config: Optional[ControllerConfig] = None,
                 isce: Optional["InStorageCheckpointEngine"] = None) -> None:
        self.sim = sim
        self.ftl = ftl
        self.interface = interface
        self.config = config if config is not None else ControllerConfig()
        self.isce = isce
        self.cache = DramReadCache(self.config.read_cache_units)
        coalesce_units = (self.config.write_coalesce_bytes
                          // ftl.config.mapping_unit)
        self.write_buffer = WriteCoalescer(ftl.sectors_per_unit,
                                           coalesce_units)
        self.stats = ftl.stats
        self._cpu = Resource(sim, self.config.cpu_cores, name="ssd-cpu")
        self._outstanding = 0
        self._outstanding_user = 0
        self._outstanding_ckpt = 0
        """Admitted checkpoint-machinery commands (CoW/remap/delete-logs
        plus anything with a ``ckpt`` cause).  A user command that waits
        for a queue slot while this is non-zero is stalled *because* a
        checkpoint occupies the device — blame's ``ckpt_interference``.
        Flash-level occupancy is tracked separately, on the array's
        checkpoint clock (``FlashArray.ckpt_busy_ns``), because the
        programs a checkpoint write triggers outlive its command."""
        self.queue_depth = TimeWeightedGauge(sim)
        """Admitted-command depth over time; window it per checkpoint
        interval with :meth:`TimeWeightedGauge.snapshot_window`."""
        self._gc_daemon = None
        self.namespaces: Optional[NamespaceLayout] = None
        self._ns_queue_depth: Dict[int, TimeWeightedGauge] = {}
        self._in_transit: Dict[int, CoalescedUnit] = {}
        """Units popped from the durable coalescer whose FTL staging write
        has not completed yet, keyed by LPN.  Still capacitor-covered:
        the host was acked at merge time, so a power cut in this
        pop-to-stage window must not lose them."""

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Commands admitted and not yet completed."""
        return self._outstanding

    @property
    def outstanding_user(self) -> int:
        """Admitted READ/WRITE/FLUSH/TRIM commands (host query traffic)."""
        return self._outstanding_user

    @property
    def idle(self) -> bool:
        """True when no command is admitted or waiting."""
        return self._outstanding == 0 and self.interface.queued == 0

    def configure_namespaces(self, layout: NamespaceLayout) -> None:
        """Partition the LBA space; every later command is range-checked.

        Must be called before any traffic; each namespace gets its own
        admitted-depth gauge so tenant interference is observable.
        """
        if self._outstanding or self.interface.queued:
            raise ConfigError("cannot reconfigure namespaces under traffic")
        self.namespaces = layout
        self._ns_queue_depth = {
            entry.nsid: TimeWeightedGauge(self.sim) for entry in layout}

    def namespace_queue_depth(self, nsid: int) -> TimeWeightedGauge:
        """Admitted-command depth gauge of one namespace."""
        return self._ns_queue_depth[nsid]

    def _check_namespace(self, command: Command) -> Optional[int]:
        """Resolve and enforce the namespace of ``command``.

        Returns the owning nsid (None for device-wide commands or when no
        namespaces are configured).  Raises :class:`NamespaceError` when a
        sector range escapes its namespace, when a CoW batch would move or
        remap data across namespaces, or when the stamped ``command.nsid``
        does not own the addressed range.
        """
        layout = self.namespaces
        if layout is None:
            return command.nsid
        resolved: Optional[int] = None
        if command.op in (Op.READ, Op.WRITE, Op.TRIM, Op.DELETE_LOGS):
            resolved = layout.resolve(command.lba, command.nsectors)
        elif command.op in (Op.COW, Op.COW_MULTI, Op.CHECKPOINT):
            owners = set()
            for entry in command.entries:
                owners.add(layout.resolve(entry.src_lba, entry.read_span))
                owners.add(layout.resolve(entry.dst_lba, entry.nsectors))
            if len(owners) != 1:
                raise NamespaceError(
                    f"{command.op.value} crosses namespaces {sorted(owners)}")
            resolved = owners.pop()
        else:
            # FLUSH / LOAD_PROGRAM are device-wide by definition.
            return None
        if command.nsid is not None and command.nsid != resolved:
            raise NamespaceError(
                f"{command.op.value} stamped nsid {command.nsid} but range "
                f"belongs to namespace {resolved}")
        command.nsid = resolved
        return resolved

    def submit(self, command: Command) -> Event:
        """Submit a command; the returned event carries a Completion.

        Namespace containment is enforced here, synchronously, before the
        command costs any simulated time: a tenant can never even enqueue
        I/O against another tenant's range.
        """
        self._check_namespace(command)
        done = self.sim.event()
        spawn(self.sim, self._handle(command, done),
              name=f"cmd-{command.op.value}")
        return done

    def _handle(self, command: Command,
                done: Event) -> Generator[Any, Any, None]:
        submitted_at = self.sim.now
        is_user = command.op in (Op.READ, Op.WRITE, Op.FLUSH, Op.TRIM)
        is_ckpt = (command.op in (Op.COW, Op.COW_MULTI, Op.CHECKPOINT,
                                  Op.DELETE_LOGS)
                   or command.cause.startswith("ckpt"))
        blame = command.blame
        tracer = self.sim.tracer
        span = tracer.begin("ssd", command.op.value, parent=command.span,
                            lba=command.lba, nsectors=command.nsectors,
                            bytes=command.data_bytes,
                            qd=self._outstanding) \
            if tracer.enabled else None
        yield self.interface.acquire_slot()
        if span is not None:
            span.attrs["queue_ns"] = self.sim.now - submitted_at
        if blame is not None:
            add_ns(blame,
                   "ckpt_interference" if self._outstanding_ckpt
                   else "ctrl_queue",
                   self.sim.now - submitted_at)
        self._outstanding += 1
        if is_ckpt:
            self._outstanding_ckpt += 1
        self.queue_depth.adjust(1)
        ns_gauge = (self._ns_queue_depth.get(command.nsid)
                    if command.nsid is not None else None)
        if ns_gauge is not None:
            ns_gauge.adjust(1)
            self.interface.note_admitted(command.nsid)
        if is_user:
            self._outstanding_user += 1
        try:
            t_stage = self.sim.now if blame is not None else 0
            yield self.interface.command_overhead()
            if command.op in (Op.WRITE, Op.COW, Op.COW_MULTI, Op.CHECKPOINT,
                              Op.LOAD_PROGRAM):
                yield from self.interface.transfer(command.data_bytes)
            if blame is not None:
                add_ns(blame, "ctrl_bus", self.sim.now - t_stage)
                t_stage = self.sim.now
            yield self._cpu.acquire()
            try:
                yield (self.config.cpu_command_ns +
                       command.nsectors * self.config.cpu_sector_ns)
            finally:
                self._cpu.release()
            if blame is not None:
                add_ns(blame, "ctrl_cpu", self.sim.now - t_stage)

            completion = Completion(command=command, submitted_at=submitted_at,
                                    completed_at=0)
            if self.ftl.read_only and command.op in MUTATING_OPS:
                completion.status = Status.READ_ONLY
                completion.error = self.ftl.degraded_reason
                self.stats.counter("cmd.read_only_rejected").add(1)
            else:
                yield from self._dispatch_with_retry(command, completion, span)

            if command.op is Op.READ and completion.ok:
                t_stage = self.sim.now if blame is not None else 0
                yield from self.interface.transfer(command.data_bytes)
                if blame is not None:
                    add_ns(blame, "ctrl_bus", self.sim.now - t_stage)
            completion.completed_at = self.sim.now
            done.succeed(completion)
        except BaseException as exc:  # noqa: BLE001 - surfaced to submitter
            if not done.triggered:
                done.fail(exc)
            else:
                raise
        finally:
            self._outstanding -= 1
            if is_ckpt:
                self._outstanding_ckpt -= 1
            self.queue_depth.adjust(-1)
            if ns_gauge is not None:
                ns_gauge.adjust(-1)
                self.interface.note_completed(command.nsid)
            if is_user:
                self._outstanding_user -= 1
            self.interface.release_slot()
            if span is not None and span.end_ns is None:
                tracer.end(span)

    # ------------------------------------------------------------------
    # media-error containment
    # ------------------------------------------------------------------
    def _dispatch_with_retry(self, command: Command, completion: Completion,
                             span: Any) -> Generator[Any, Any, None]:
        """Dispatch with a bounded retry-with-backoff budget.

        Every opcode's dispatch is idempotent at this layer (out-of-place
        writes, content-identical re-reads, re-runnable remaps), so a
        media error simply re-runs the whole dispatch after a linear
        backoff.  Exhaustion completes the command with
        ``Status.MEDIA_ERROR`` — the submitter always gets a completion,
        never a propagated device-internal exception.
        """
        tracer = self.sim.tracer
        blame = command.blame
        attempts = 0
        while True:
            before = dict(blame) if blame is not None else None
            t_try = self.sim.now if blame is not None else 0
            try:
                yield from self._dispatch(command, completion)
            except MediaError as exc:
                if blame is not None:
                    # The whole failed attempt is retry-ladder time: drop
                    # whatever the dispatch charged mid-flight and charge
                    # the attempt window to media_retry instead.
                    blame.clear()
                    blame.update(before)
                    add_ns(blame, "media_retry", self.sim.now - t_try)
                attempts += 1
                self.stats.counter("cmd.media_retries").add(1)
                retry_span = None
                if tracer.enabled:
                    retry_span = tracer.begin(
                        "media", "cmd_retry", parent=span,
                        op=command.op.value, attempt=attempts)
                    tracer.end(retry_span)
                recorder = self.sim.flightrec
                if recorder is not None:
                    recorder.record(
                        self.sim.now, "media", "cmd_retry",
                        retry_span.span_id if retry_span is not None
                        else None,
                        {"op": command.op.value, "attempt": attempts})
                if attempts > self.config.media_retry_limit:
                    completion.status = Status.MEDIA_ERROR
                    completion.retries = attempts - 1
                    completion.error = str(exc)
                    self.stats.counter("cmd.media_errors").add(1)
                    error_span = None
                    if tracer.enabled:
                        error_span = tracer.begin(
                            "media", "cmd_error", parent=span,
                            op=command.op.value)
                        tracer.end(error_span)
                    if recorder is not None:
                        recorder.record(
                            self.sim.now, "media", "cmd_error",
                            error_span.span_id if error_span is not None
                            else None,
                            {"op": command.op.value,
                             "attempts": attempts})
                    return
                if blame is not None:
                    t_try = self.sim.now
                yield self.config.media_retry_backoff_ns * attempts
                if blame is not None:
                    add_ns(blame, "media_retry", self.sim.now - t_try)
                continue
            except DeviceFullError as exc:
                # Out of usable space mid-dispatch: degrade rather than
                # kill the submitting process.
                self.ftl.enter_degraded(str(exc))
                completion.status = Status.READ_ONLY
                completion.error = str(exc)
                return
            if attempts:
                completion.status = Status.RETRIED_OK
                completion.retries = attempts
            return

    # ------------------------------------------------------------------
    # dispatch per opcode
    # ------------------------------------------------------------------
    def _dispatch(self, command: Command,
                  completion: Completion) -> Generator[Any, Any, None]:
        op = command.op
        if op is Op.READ:
            completion.tags = yield from self._do_read(command)
        elif op is Op.WRITE:
            yield from self._do_write(command)
        elif op is Op.FLUSH:
            yield from self._do_flush()
        elif op is Op.TRIM:
            self.write_buffer.discard_range(command.lba, command.nsectors)
            yield from self.ftl.trim(command.lba, command.nsectors,
                                     blame=command.blame)
            self._invalidate_cache_range(command.lba, command.nsectors)
        elif op in (Op.COW, Op.COW_MULTI, Op.CHECKPOINT):
            yield from self._do_cow(command, completion)
        elif op is Op.DELETE_LOGS:
            yield from self._do_delete_logs(command)
        elif op is Op.LOAD_PROGRAM:
            if self.isce is None:
                raise CommandError("load_program: device has no ISCE")
            self.stats.counter("host.load_program_cmds").add(
                1, num_bytes=command.data_bytes)
            # Install the offloaded execution code (one-time, §III-C).
            yield self.config.cpu_command_ns * 4
            self.isce.program_loaded = True
        else:  # pragma: no cover - enum is closed
            raise CommandError(f"unsupported opcode {op}")

    def _do_read(self, command: Command) -> Generator[Any, Any, List[Any]]:
        blame = command.blame
        self.stats.counter("host.read_cmds").add(1, num_bytes=command.data_bytes)
        spu = self.ftl.sectors_per_unit
        lpns = self.ftl.lpn_span(command.lba, command.nsectors)
        buffered_hit = any(self.write_buffer.peek(lpn) is not None
                           for lpn in lpns)
        cached = {lpn: self.cache.get(lpn) for lpn in lpns}
        if all(entry is not None for entry in cached.values()):
            self.stats.counter("host.read_cache_hits").add(1)
            yield self.ftl.config.staged_read_ns
            if blame is not None:
                add_ns(blame, "flash_read", self.ftl.config.staged_read_ns)
            tags = []
            for sector in range(command.lba, command.lba + command.nsectors):
                unit = cached[sector // spu]
                tags.append(unit[sector % spu])
            return self.write_buffer.overlay(command.lba, command.nsectors,
                                             tags)
        if buffered_hit and self._fully_buffered(command.lba, command.nsectors):
            # Served entirely from the coalescing buffer: no flash access.
            self.stats.counter("host.read_buffer_hits").add(1)
            yield self.ftl.config.staged_read_ns
            if blame is not None:
                add_ns(blame, "flash_read", self.ftl.config.staged_read_ns)
            tags = [None] * command.nsectors
            return self.write_buffer.overlay(command.lba, command.nsectors,
                                             tags)
        tags = yield from self.ftl.read(command.lba, command.nsectors,
                                        blame=blame,
                                        ckpt=command.cause.startswith("ckpt"))
        if not buffered_hit:
            self._fill_cache(command.lba, command.nsectors, tags)
        return self.write_buffer.overlay(command.lba, command.nsectors, tags)

    def _fully_buffered(self, lba: int, nsectors: int) -> bool:
        for sector in range(lba, lba + nsectors):
            entry = self.write_buffer.peek(sector // self.ftl.sectors_per_unit)
            if entry is None or not entry.covered[
                    sector % self.ftl.sectors_per_unit]:
                return False
        return True

    def _do_write(self, command: Command) -> Generator[Any, Any, None]:
        self.stats.counter("host.write_cmds").add(1, num_bytes=command.data_bytes)
        self.stats.counter(f"host.write_cmds.{command.cause}").add(
            1, num_bytes=command.data_bytes)
        self._invalidate_cache_range(command.lba, command.nsectors)
        yield from self.device_write(command.lba, command.nsectors,
                                     command.tags, command.stream,
                                     command.cause, blame=command.blame)
        if not self.write_buffer.enabled:
            self._fill_cache(command.lba, command.nsectors, command.tags)
        if self.isce is not None and command.stream == "journal":
            yield from self.isce.log_manager.note_journal_write(
                command.lba, command.nsectors)

    def device_read(self, lba: int, nsectors: int) -> Generator[Any, Any, List[Any]]:
        """Internal read path: FTL content overlaid with the coalescer.

        Used by the ISCE so checkpoint sources that are still buffered in
        device DRAM are seen without forcing a drain (and without host
        command accounting).  Always checkpoint-machinery work, so the
        flash reads run on the array's checkpoint clock.
        """
        tags = yield from self.ftl.read(lba, nsectors, ckpt=True)
        return self.write_buffer.overlay(lba, nsectors, tags)

    def device_write(self, lba: int, nsectors: int, tags, stream: str,
                     cause: str, blame=None) -> Generator[Any, Any, None]:
        """Internal write path (no host-command accounting).

        Used by the ISCE's copy path so device-side checkpoint copies
        enjoy the same DRAM coalescing as host writes — scattered
        sub-unit copies merge with their neighbours before programming.
        """
        if not self.write_buffer.enabled:
            yield from self.ftl.write(lba, nsectors, tags=tags,
                                      stream=stream, cause=cause,
                                      blame=blame)
            return
        self._invalidate_cache_range(lba, nsectors)
        tracer = self.sim.tracer
        ready = self.write_buffer.merge(lba, nsectors, tags, cause, stream)
        for unit in ready:
            self._in_transit[unit.lpn] = unit
        merge_ns = self.ftl.config.map_update_ns * max(1, len(ready))
        yield merge_ns
        if blame is not None:
            add_ns(blame, "coalescer", merge_ns)
        spu = self.ftl.sectors_per_unit
        span = tracer.begin("coalescer", "flush_full", units=len(ready),
                            bytes=len(ready) * self.ftl.config.mapping_unit) \
            if ready and tracer.enabled else None
        for unit in ready:
            yield from self.ftl.write(unit.lpn * spu, spu, tags=unit.tags,
                                      stream=unit.stream, cause=unit.cause,
                                      blame=blame)
            self._release_transit(unit)
        if span is not None:
            tracer.end(span)
        evicted = self.write_buffer.evict_pressure()
        span = tracer.begin("coalescer", "evict", units=len(evicted)) \
            if evicted and tracer.enabled else None
        for unit in evicted:
            self._in_transit[unit.lpn] = unit
            yield from self._write_partial_unit(unit, blame)
            self._release_transit(unit)
        if span is not None:
            tracer.end(span)

    def _write_partial_unit(self, unit: CoalescedUnit,
                            blame=None) -> Generator[Any, Any, None]:
        """Flush a partially covered coalesced unit (RMW if it was mapped)."""
        spu = self.ftl.sectors_per_unit
        base = unit.lpn * spu
        for offset, length in unit.covered_runs:
            yield from self.ftl.write(base + offset, length,
                                      tags=unit.tags[offset:offset + length],
                                      stream=unit.stream, cause=unit.cause,
                                      blame=blame)

    def _drain_buffered(self, units: List[CoalescedUnit]
                        ) -> Generator[Any, Any, None]:
        tracer = self.sim.tracer
        span = tracer.begin("coalescer", "drain", units=len(units)) \
            if units and tracer.enabled else None
        for unit in units:
            self._in_transit[unit.lpn] = unit
        for unit in units:
            if unit.full:
                spu = self.ftl.sectors_per_unit
                yield from self.ftl.write(unit.lpn * spu, spu, tags=unit.tags,
                                          stream=unit.stream, cause=unit.cause)
            else:
                yield from self._write_partial_unit(unit)
            self._release_transit(unit)
        if span is not None:
            tracer.end(span)

    def _release_transit(self, unit: CoalescedUnit) -> None:
        """The unit is staged in the FTL (durable again): drop its
        capacitor shadow unless a newer generation replaced it."""
        if self._in_transit.get(unit.lpn) is unit:
            del self._in_transit[unit.lpn]

    def durable_overlay(self, lba: int, nsectors: int,
                        tags: List[Any]) -> List[Any]:
        """Patch ``tags`` with all capacitor-protected buffered content.

        Applies the in-transit units first (older than the coalescer: a
        sector rewritten after its unit went in transit lives in a fresh
        coalescer entry), then the coalescer itself.  Recovery uses this
        to observe every durable-but-unstaged sector after a power cut.
        """
        spu = self.ftl.sectors_per_unit
        for index, sector in enumerate(range(lba, lba + nsectors)):
            unit = self._in_transit.get(sector // spu)
            if unit is not None and unit.covered[sector % spu]:
                tags[index] = unit.tags[sector % spu]
        return self.write_buffer.overlay(lba, nsectors, tags)

    def _do_flush(self) -> Generator[Any, Any, None]:
        self.stats.counter("host.flush_cmds").add(1)
        if self.ftl.read_only:
            # Degraded mode: nothing new may reach flash.  Buffered
            # content is capacitor-protected already, so the flush's
            # durability promise holds without touching the array.
            return
        yield from self._drain_buffered(self.write_buffer.drain_all())
        for stream in ("journal", "data", "ckpt"):
            yield from self.ftl.flush_stream(stream)
        yield from self.ftl.persist_metadata(force=True)

    def _do_cow(self, command: Command,
                completion: Completion) -> Generator[Any, Any, None]:
        if self.isce is None:
            raise CommandError(
                f"{command.op.value}: device has no in-storage checkpoint engine")
        self.stats.counter(f"host.{command.op.value}_cmds").add(
            1, num_bytes=command.data_bytes)
        # Buffered *source* units are read through the ISCE's
        # coalescer-overlay path, so no drain is needed.  Buffered
        # *destination* content is superseded by the checkpoint: discard
        # it (a remap would even be overwritten by stale data on a later
        # read).
        for entry in command.entries:
            self.write_buffer.discard_range(entry.dst_lba, entry.nsectors)
        remapped, copied = yield from self.isce.execute_cow(command.entries)
        completion.remapped_units = remapped
        completion.copied_units = copied
        for entry in command.entries:
            self._invalidate_cache_range(entry.dst_lba, entry.nsectors)
        if command.op is Op.CHECKPOINT:
            yield from self.isce.checkpoint_complete()

    def _do_delete_logs(self, command: Command) -> Generator[Any, Any, None]:
        if self.isce is None:
            raise CommandError("delete_logs: device has no ISCE")
        self.stats.counter("host.delete_logs_cmds").add(1)
        self.write_buffer.discard_range(command.lba, command.nsectors)
        yield from self.isce.delete_logs(command.lba, command.nsectors)
        self._invalidate_cache_range(command.lba, command.nsectors)

    # ------------------------------------------------------------------
    # read cache helpers
    # ------------------------------------------------------------------
    def _fill_cache(self, lba: int, nsectors: int,
                    tags: Optional[List[Any]]) -> None:
        if tags is None or not self.cache.enabled:
            return
        spu = self.ftl.sectors_per_unit
        for lpn in self.ftl.lpn_span(lba, nsectors):
            unit_first = lpn * spu
            if unit_first < lba or unit_first + spu > lba + nsectors:
                continue  # only whole units are cacheable
            start = unit_first - lba
            self.cache.put(lpn, tuple(tags[start:start + spu]))

    def _invalidate_cache_range(self, lba: int, nsectors: int) -> None:
        lpns = self.ftl.lpn_span(lba, nsectors)
        self.cache.invalidate_range(lpns[0], lpns[-1])

    # ------------------------------------------------------------------
    # background GC daemon
    # ------------------------------------------------------------------
    def start_background_gc(self) -> None:
        """Launch the idle-time GC daemon (stop with :meth:`shutdown`)."""
        if self._gc_daemon is None:
            self._gc_daemon = spawn(self.sim, self._gc_loop(), name="gc-daemon")

    def shutdown(self) -> None:
        """Stop the background daemon (end of run)."""
        if self._gc_daemon is not None and self._gc_daemon.alive:
            self._gc_daemon.interrupt("shutdown")
        self._gc_daemon = None

    def _gc_loop(self) -> Generator[Any, Any, None]:
        from repro.sim.process import Interrupt
        try:
            while True:
                yield self.config.idle_gc_interval_ns
                if not self.idle:
                    continue
                try:
                    if self.isce is not None:
                        if self.isce.deallocator.should_collect(device_idle=True):
                            yield from self.isce.deallocator.collect_idle()
                    elif self.ftl.gc.wants_background_collection():
                        yield from self.ftl.gc.collect_once()
                    if self.ftl.array.media.config.enabled \
                            and not self.ftl.read_only:
                        # Read-disturb reclaim piggybacks on idle time.
                        yield from self.ftl.gc.collect_read_disturbed()
                except MediaError:
                    continue  # transient; the next tick retries
                except DeviceFullError as exc:
                    self.ftl.enter_degraded(str(exc))
        except Interrupt:
            return
