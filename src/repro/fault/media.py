"""Media-error fault campaigns: NAND failures under live KV traffic.

Two campaigns complement the crash-point sweep:

* :func:`media_sweep` runs the scripted update/checkpoint workload under
  a grid of seeded media-error rates (program/erase/read failures), then
  pulls the plug, recovers, and asserts that **no acked update and no
  completed checkpoint was lost** — media errors may cost retries,
  relocations and even degraded mode, but never durability.  It also
  asserts every client process *finished* (failed commands surface as
  typed completions, not dead or hung processes).

* :func:`spare_exhaustion_run` drives a tiny device with an extreme
  erase/program failure rate past its spare-block budget and asserts the
  run ends in **reported read-only degraded mode** (visible in
  :class:`~repro.system.metrics.RunMetrics`) instead of an unhandled
  exception.

Everything is derived from the root seed (the media model draws are
keyed on it too), so a campaign is exactly reproducible.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.errors import RecoveryError, SimulationError
from repro.common.units import MIB
from repro.engine.recovery import check_durability
from repro.fault.crash import power_cut, recover_device
from repro.fault.harness import _scripted_client, _state_digest
from repro.fault.invariants import (
    check_ftl_invariants,
    check_namespace_isolation,
)
from repro.flash.media import MediaErrorConfig
from repro.common.rng import SeededRng
from repro.sim.process import spawn
from repro.system.config import SystemConfig, TenantSpec, tiny_config
from repro.system.system import KvSystem, RunResult


def media_error_config(rate: float) -> MediaErrorConfig:
    """The standard rate mix for a sweep point.

    ``rate`` is the program-status failure probability on a pristine
    block; erase failures and per-attempt UECC run at half that, which
    exercises every handling path (relocation, retirement, read retry)
    in one run.
    """
    return MediaErrorConfig(
        enabled=True,
        program_fail_base=rate,
        erase_fail_base=rate / 2,
        read_uecc_base=rate / 2,
    )


def _media_config(mode: str, seed: int, num_keys: int, rate: float,
                  tenants: int = 1) -> SystemConfig:
    media = media_error_config(rate)
    if tenants <= 1:
        return tiny_config(mode=mode, seed=seed, num_keys=num_keys,
                           track_op_log=True, snapshot_metadata=True,
                           media=media)
    return tiny_config(mode=mode, seed=seed, num_keys=num_keys,
                       track_op_log=True, snapshot_metadata=True,
                       media=media,
                       journal_area_bytes=1 * MIB,
                       tenants=tuple(TenantSpec()
                                     for _ in range(tenants)))


@dataclass
class MediaPointResult:
    """Outcome of one (rate, mode, tenants) campaign point."""

    mode: str
    rate: float
    tenants: int
    acked_keys: int = 0
    program_fails: int = 0
    erase_fails: int = 0
    uecc_events: int = 0
    relocations: int = 0
    bad_blocks: int = 0
    degraded: bool = False
    client_errors: List[str] = field(default_factory=list)
    checkpoint_violations: List[str] = field(default_factory=list)
    invariant_violations: List[str] = field(default_factory=list)
    durability_error: str = ""
    recovered_digest: str = ""

    @property
    def ok(self) -> bool:
        """True when nothing acked was lost and every process finished."""
        return (not self.client_errors
                and not self.checkpoint_violations
                and not self.invariant_violations
                and not self.durability_error)


@dataclass
class MediaSweepResult:
    """All points of one media-error campaign."""

    mode: str
    seed: int
    results: List[MediaPointResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every point survived with durability intact."""
        return all(result.ok for result in self.results)

    def failures(self) -> List[MediaPointResult]:
        """Points that lost data or broke an invariant."""
        return [result for result in self.results if not result.ok]

    def digest(self) -> str:
        """Stable fingerprint of the campaign (determinism checks)."""
        digest = hashlib.sha256()
        for result in self.results:
            digest.update(
                f"{result.rate}:{result.recovered_digest}".encode())
        return digest.hexdigest()[:16]


def media_sweep(mode: str, rates: Tuple[float, ...] = (1e-3, 1e-2),
                seed: int = 7, ops: int = 120, num_keys: int = 64,
                ckpt_every: int = 40, tenants: int = 1) -> MediaSweepResult:
    """Run the scripted workload under each media-error rate and verify.

    Each point: run ``ops`` scripted updates (with periodic checkpoints)
    per tenant on a device drawing seeded media failures, then power-cut,
    recover, and check ``acked <= recovered <= current`` plus every FTL
    structural invariant — including bad-block quarantine.
    """
    from repro.fault.harness import _start

    sweep = MediaSweepResult(mode=mode, seed=seed)
    for rate in rates:
        config = _media_config(mode, seed, num_keys, rate, tenants)
        system, ackeds, procs, ckpt_violations = _start(config, ops,
                                                        ckpt_every)
        point = MediaPointResult(mode=mode, rate=rate, tenants=tenants)
        while not all(proc.triggered for proc in procs):
            if not system.sim.step():
                raise SimulationError(
                    f"media sweep drained early at rate {rate}")
        for proc in procs:
            # The whole robustness claim: a mid-run media error surfaces
            # as a typed failure or a rejected op, never a dead process.
            if not proc.ok:
                point.client_errors.append(
                    f"{proc.name}: {proc.exception!r}")
        point.checkpoint_violations = list(ckpt_violations)

        snapshot = system.ssd.stats.snapshot()
        point.program_fails = snapshot.get("media.program_fail", 0)
        point.erase_fails = snapshot.get("media.erase_fail", 0)
        point.uecc_events = snapshot.get("media.read_uecc", 0)
        point.relocations = snapshot.get("media.relocations", 0)
        point.bad_blocks = len(system.ssd.ftl.grown_bad)
        point.degraded = system.ssd.degraded

        acked_at_cut = [dict(acked) for acked in ackeds]
        currents = [{record.key: record.version
                     for record in tenant.engine.kvmap.records()}
                    for tenant in system.tenants]
        point.acked_keys = sum(len(acked) for acked in acked_at_cut)

        power_cut(system, SeededRng(seed).fork(f"media/{mode}/{rate}"))
        recover_device(system)
        point.invariant_violations = check_ftl_invariants(system.ssd.ftl)
        if config.tenants is not None:
            point.invariant_violations.extend(
                check_namespace_isolation(system.ssd.ftl))
        digests: List[str] = []
        for tenant, acked, current in zip(system.tenants, acked_at_cut,
                                          currents):
            try:
                recovered = check_durability(tenant.engine, acked, current)
                digests.append(_state_digest(recovered.versions))
            except RecoveryError as exc:
                point.durability_error = f"{tenant.name}: {exc}"
                break
        else:
            point.recovered_digest = "+".join(digests)
        sweep.results.append(point)
    return sweep


def spare_exhaustion_run(seed: int = 11, mode: str = "baseline"
                         ) -> RunResult:
    """Drive a device past its spare-block budget; must end degraded.

    Extreme erase/program failure rates retire blocks until the grown-bad
    count exceeds a deliberately tiny spare budget.  The run must finish
    cleanly — updates rejected, reads still served — and report read-only
    degraded mode through :class:`~repro.system.metrics.RunMetrics`.

    The run is telemetry-sampled: the returned result's ``telemetry``
    carries the SMART health frames around the failure and the
    ``degraded_entry`` watchdog event marking the instant the device
    dropped to read-only — the fault harness asserts against both.
    """
    from repro.telemetry import TelemetryConfig
    config = tiny_config(
        mode=mode, seed=seed,
        # Small enough that GC must erase (and therefore fail and retire)
        # blocks under the update churn, within a seconds-scale run.
        total_queries=8_000,
        num_keys=128,
        blocks_per_plane=10,
        journal_area_bytes=1 * MIB,
        spare_block_budget=1,
        media=MediaErrorConfig(
            enabled=True,
            program_fail_base=0.02,
            erase_fail_base=0.5,
            read_uecc_base=0.0,
        ),
        telemetry=TelemetryConfig(interval_ns=200_000))
    return KvSystem(config).run()
