"""FTL structural invariants.

The mapping table keeps three mutually redundant structures — the forward
map, the reverse (refcount) map and the per-block valid-unit counters —
and the flash array holds the ground truth about which pages exist.  Any
divergence between them is a latent durability bug long before it loses
data, so the fault harness checks them after every checkpoint and after
every simulated crash recovery.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set

from repro.common.errors import FtlError
from repro.ftl.ftl import Ftl


def check_ftl_invariants(ftl: Ftl) -> List[str]:
    """Return a description of every violated invariant (empty = healthy).

    Checked invariants:

    1. the reverse map is exactly the inversion of the forward map;
    2. per-block valid-unit counters match the reverse map;
    3. every mapped physical unit lives on a programmed flash page or in
       the capacitor-backed staging buffer (never on an erased block).
    """
    violations: List[str] = []
    mapping = ftl.mapping

    # 1. reverse map == inverted forward map
    expected_refs: Dict[int, Set[int]] = defaultdict(set)
    for lpn, upa in mapping.items():
        expected_refs[upa].add(lpn)
    actual_refs = {upa: set(refs) for upa, refs in mapping.reverse_items()}
    for upa, refs in expected_refs.items():
        got = actual_refs.get(upa, set())
        if got != refs:
            violations.append(
                f"refcount mismatch for upa {upa}: forward map says "
                f"{sorted(refs)}, reverse map says {sorted(got)}")
    for upa in set(actual_refs) - set(expected_refs):
        violations.append(
            f"stale reverse entry: upa {upa} has referrers "
            f"{sorted(actual_refs[upa])} but no forward mapping")

    # 2. per-block valid counters
    expected_valid: Dict[int, int] = defaultdict(int)
    for upa in expected_refs:
        expected_valid[mapping.block_of_unit(upa)] += 1
    actual_valid = mapping.valid_counts()
    for block in set(expected_valid) | set(actual_valid):
        want = expected_valid.get(block, 0)
        got = actual_valid.get(block, 0)
        if want != got:
            violations.append(
                f"valid-count mismatch for block {block}: "
                f"{got} counted, {want} actual")

    # 3. every mapped unit is durably backed
    geometry = ftl.geometry
    for upa in expected_refs:
        if ftl.is_staged(upa):
            continue
        ppa = mapping.page_of_unit(upa)
        block = ftl.array.block(geometry.block_of_page(ppa))
        if geometry.page_in_block(ppa) >= block.write_pointer:
            violations.append(
                f"upa {upa} (lpns {sorted(expected_refs[upa])}) maps to "
                f"unwritten page {ppa} of block {block.block_id} and is "
                "not staged")

    # 4. grown-bad blocks are fully quarantined: nothing maps to them and
    # the allocator can never hand them out again.
    allocator = ftl.allocator
    for block in ftl.grown_bad:
        if mapping.valid_units(block):
            violations.append(
                f"grown-bad block {block} still holds "
                f"{mapping.valid_units(block)} mapped unit(s)")
        if block in allocator.full_blocks:
            violations.append(
                f"grown-bad block {block} is still tracked as full")
        lun = geometry.lun_of_block(block)
        if block in allocator._free_per_lun[lun]:
            violations.append(
                f"grown-bad block {block} re-entered the free pool")
        if not ftl.array.block(block).grown_bad:
            violations.append(
                f"grown-bad block {block} lost its array-level mark")
    return violations


def check_namespace_isolation(ftl: Ftl) -> List[str]:
    """Namespace-purity invariants of a sharded device (empty = healthy).

    Checked invariants:

    1. no physical unit is mapped (shared) by LPNs of two namespaces —
       remap/GC relocation never created cross-tenant aliasing;
    2. every mapped LPN lies inside some namespace range;
    3. every durable remap in the op log stayed within one namespace.
    """
    violations: List[str] = []
    if not ftl.namespaced:
        return ["device has no namespaces configured"]
    owners: Dict[int, Set[int]] = defaultdict(set)
    for lpn, upa in ftl.mapping.items():
        nsid = ftl.nsid_of_lpn(lpn)
        if nsid is None:
            violations.append(
                f"lpn {lpn} is mapped but belongs to no namespace")
            continue
        owners[upa].add(nsid)
    for upa, nsids in owners.items():
        if len(nsids) > 1:
            violations.append(
                f"physical unit {upa} is shared across namespaces "
                f"{sorted(nsids)}")
    if ftl.op_log:
        for seq, op, src, dst in ftl.op_log:
            if op != "remap":
                continue
            src_ns = ftl.nsid_of_lpn(src)
            dst_ns = ftl.nsid_of_lpn(dst)
            if src_ns is None or src_ns != dst_ns:
                violations.append(
                    f"remap #{seq} crossed namespaces: lpn {src} "
                    f"(ns {src_ns}) -> lpn {dst} (ns {dst_ns})")
    return violations


def assert_ftl_invariants(ftl: Ftl) -> None:
    """Raise :class:`FtlError` when any structural invariant is violated."""
    violations = check_ftl_invariants(ftl)
    if violations:
        raise FtlError(
            f"{len(violations)} FTL invariant violation(s): "
            + "; ".join(violations[:5]))
