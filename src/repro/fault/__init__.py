"""Crash-consistency fault injection and invariant checking.

The harness pulls the plug on a running :class:`~repro.system.KvSystem`
at an arbitrary event boundary, discards everything a power cut destroys
(in-flight flash programs tear at unit granularity, DRAM structures
vanish, the capacitor-backed buffers survive), re-runs the recovery
procedures of §III-G against the post-crash image, and asserts that the
recovered KV state matches what was durably committed.
"""

from repro.fault.crash import CrashReport, power_cut, recover_device
from repro.fault.harness import CrashPointResult, SweepResult, fault_sweep
from repro.fault.invariants import assert_ftl_invariants, check_ftl_invariants
from repro.fault.media import (
    MediaPointResult,
    MediaSweepResult,
    media_error_config,
    media_sweep,
    spare_exhaustion_run,
)

__all__ = [
    "CrashReport",
    "power_cut",
    "recover_device",
    "CrashPointResult",
    "SweepResult",
    "fault_sweep",
    "assert_ftl_invariants",
    "check_ftl_invariants",
    "MediaPointResult",
    "MediaSweepResult",
    "media_error_config",
    "media_sweep",
    "spare_exhaustion_run",
]
