"""Deterministic crash-point sweep over a scripted KV workload.

One sweep (a) runs a scripted update/checkpoint workload to completion to
learn its event-step count ``T``, then (b) replays the identical workload
``crash_points`` times on fresh systems, each time pulling the plug after
a seeded-random number of steps in ``[1, T]``, recovering the device and
asserting:

* the SPOR scan rebuilds exactly the pre-crash mapping table (nothing the
  capacitor promised to hold was lost, nothing is invented);
* every FTL structural invariant holds after recovery — and after every
  checkpoint that completed before the crash;
* the recovered KV store satisfies ``acked <= recovered <= current``:
  no acknowledged commit is lost and no version is invented.

Everything is derived from one root seed, so a sweep is exactly
reproducible: same seed, same crash points, same recovered state digests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Tuple

from repro.common.errors import RecoveryError, SimulationError
from repro.common.rng import SeededRng
from repro.common.units import MIB
from repro.engine.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionTicket,
)
from repro.engine.engine import StorageEngine
from repro.engine.recovery import check_durability
from repro.fault.crash import CrashReport, power_cut, recover_device
from repro.fault.invariants import (
    check_ftl_invariants,
    check_namespace_isolation,
)
from repro.sim.process import spawn
from repro.system.config import SystemConfig, TenantSpec, tiny_config
from repro.system.system import KvSystem
from repro.trace.tracer import Tracer
from repro.workload.arrivals import ArrivalSpec, arrival_times


@dataclass
class CrashPointResult:
    """Outcome of one crash/recover/verify cycle."""

    index: int
    crash_step: int
    sim_time_ns: int
    acked_keys: int
    report: CrashReport
    mapping_mismatches: int = 0
    checkpoint_violations: List[str] = field(default_factory=list)
    invariant_violations: List[str] = field(default_factory=list)
    durability_error: str = ""
    recovered_digest: str = ""
    recovery_wall_ns: int = 0
    """Host wall-clock time of the SPOR recovery scan (simulated time is
    frozen after a power cut, so recovery cost is measured on the host's
    monotonic clock via :meth:`repro.trace.tracer.Tracer.wallclock`)."""

    @property
    def ok(self) -> bool:
        """True when recovery was exact and every invariant held."""
        return (self.mapping_mismatches == 0
                and not self.checkpoint_violations
                and not self.invariant_violations
                and not self.durability_error)


@dataclass
class SweepResult:
    """All crash points of one (mode, seed) sweep."""

    mode: str
    seed: int
    total_steps: int
    results: List[CrashPointResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every crash point recovered cleanly."""
        return all(result.ok for result in self.results)

    def failures(self) -> List[CrashPointResult]:
        """The crash points that violated an invariant or lost data."""
        return [result for result in self.results if not result.ok]

    def digest(self) -> str:
        """Stable fingerprint of the sweep (determinism checks)."""
        digest = hashlib.sha256()
        for result in self.results:
            digest.update(
                f"{result.crash_step}:{result.recovered_digest}".encode())
        return digest.hexdigest()[:16]

    def mean_recovery_wall_ns(self) -> float:
        """Average SPOR recovery wall time per crash point."""
        if not self.results:
            return 0.0
        return sum(r.recovery_wall_ns for r in self.results) / \
            len(self.results)

    def max_recovery_wall_ns(self) -> int:
        """Slowest SPOR recovery across the sweep."""
        return max((r.recovery_wall_ns for r in self.results), default=0)


def _sweep_config(mode: str, seed: int, num_keys: int,
                  tenants: int = 1) -> SystemConfig:
    if tenants <= 1:
        return tiny_config(mode=mode, seed=seed, num_keys=num_keys,
                           track_op_log=True, snapshot_metadata=True)
    # Shrink the per-tenant journal so several namespaces fit the tiny
    # test device while still wrapping (and checkpointing) under load.
    return tiny_config(mode=mode, seed=seed, num_keys=num_keys,
                       track_op_log=True, snapshot_metadata=True,
                       journal_area_bytes=1 * MIB,
                       tenants=tuple(TenantSpec()
                                     for _ in range(tenants)))


def _scripted_client(engine: StorageEngine, num_keys: int,
                     acked: Dict[int, int], ops: int,
                     ckpt_every: int) -> Generator[Any, Any, None]:
    for i in range(ops):
        key = (i * 7) % num_keys
        version = yield from engine.put(key)
        if version is not None:
            # A None version means the engine degraded and rejected the
            # update — nothing was acked, so nothing is owed durability.
            acked[key] = version
        if ckpt_every and (i + 1) % ckpt_every == 0:
            yield from engine.checkpoint()


def _start(config: SystemConfig, ops: int, ckpt_every: int
           ) -> Tuple[KvSystem, List[Dict[int, int]], List[Any], List[str]]:
    """Build a loaded, started system running the scripted workload.

    Returns one acked-versions dict and one client process per tenant (a
    single pair on the classic single-tenant path).
    """
    system = KvSystem(config)
    system.load()
    ckpt_violations: List[str] = []
    ackeds: List[Dict[int, int]] = []
    procs: List[Any] = []
    for tenant in system.tenants:
        tenant.engine.start()
        tenant.engine.on_checkpoint.append(
            lambda engine, _report: ckpt_violations.extend(
                check_ftl_invariants(engine.ssd.ftl)))
        acked: Dict[int, int] = {}
        ackeds.append(acked)
        name = "fault-client" if config.tenants is None \
            else f"fault-client{tenant.index}"
        procs.append(spawn(
            system.sim,
            _scripted_client(tenant.engine, tenant.view.num_keys, acked,
                             ops, ckpt_every),
            name=name))
    return system, ackeds, procs, ckpt_violations


def _state_digest(versions: Dict[int, int]) -> str:
    payload = ",".join(f"{key}:{version}"
                       for key, version in sorted(versions.items()))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def iter_crash_points(seed: int, total_steps: int, crash_points: int,
                      namespace: str
                      ) -> Generator[Tuple[int, int, SeededRng], None, None]:
    """Enumerate seeded crash instants: yields ``(index, step, rng)``.

    The reusable core of every crash campaign: one root seed forked
    through ``namespace`` yields per-point RNGs, each choosing a crash
    step uniformly in ``[1, total_steps]``.  The yielded ``rng`` is the
    point's private lineage — fork it again (e.g. ``rng.fork("tear")``)
    for any further randomness so points stay independent.  Both sweeps
    below and the replication kill-the-primary campaign derive their
    crash points here, so identical (seed, namespace, total_steps)
    always reproduce identical instants.
    """
    rng = SeededRng(seed).fork(namespace)
    for index in range(crash_points):
        point_rng = rng.fork(f"point{index}")
        yield index, point_rng.randint(1, total_steps), point_rng


def fault_sweep(mode: str, crash_points: int = 20, seed: int = 7,
                ops: int = 120, num_keys: int = 64,
                ckpt_every: int = 40, tenants: int = 1) -> SweepResult:
    """Sweep ``crash_points`` seeded crash instants over one configuration.

    ``mode`` is one of the engine modes ('baseline' is the conventional
    system; 'isc_c' and 'checkin' exercise the remapping FTL).  With
    ``tenants > 1`` the workload runs against a namespaced device — every
    tenant executes the scripted workload concurrently, and SPOR recovery
    must restore each tenant's durable state independently while keeping
    the namespaces physically disjoint.  Returns a :class:`SweepResult`;
    inspect ``.ok`` / ``.failures()``.
    """
    config = _sweep_config(mode, seed, num_keys, tenants)

    # Reference run: learn the workload's event-step count T.
    system, ackeds, procs, ckpt_violations = _start(config, ops, ckpt_every)
    total_steps = 0
    while not all(proc.triggered for proc in procs):
        if not system.sim.step():
            raise SimulationError("fault sweep reference run drained early")
        total_steps += 1
    for proc in procs:
        if not proc.ok:
            raise proc.exception
    if ckpt_violations:
        raise SimulationError(
            f"invariants already broken in reference run: {ckpt_violations[:3]}")

    sweep = SweepResult(mode=mode, seed=seed, total_steps=total_steps)
    wall = Tracer.wallclock()  # recovery runs outside simulated time
    for index, crash_step, point_rng in iter_crash_points(
            seed, total_steps, crash_points, f"fault/{mode}"):
        system, ackeds, procs, ckpt_violations = _start(config, ops,
                                                        ckpt_every)
        for _ in range(crash_step):
            if all(proc.triggered for proc in procs):
                break
            if not system.sim.step():
                raise SimulationError("fault sweep crash run drained early")

        acked_at_crash = [dict(acked) for acked in ackeds]
        currents = [{record.key: record.version
                     for record in tenant.engine.kvmap.records()}
                    for tenant in system.tenants]
        pre_crash_mapping = system.ssd.ftl.mapping.snapshot()

        report = power_cut(system, point_rng.fork("tear"))
        recovery_span = wall.begin("recovery", "spor_scan",
                                   crash_step=crash_step)
        rebuilt = recover_device(system)
        wall.end(recovery_span)

        result = CrashPointResult(
            index=index, crash_step=crash_step, sim_time_ns=system.sim.now,
            acked_keys=sum(len(acked) for acked in acked_at_crash),
            report=report,
            checkpoint_violations=list(ckpt_violations),
            recovery_wall_ns=recovery_span.duration_ns)
        result.mapping_mismatches = sum(
            1 for lpn in set(pre_crash_mapping) | set(rebuilt)
            if pre_crash_mapping.get(lpn) != rebuilt.get(lpn))
        result.invariant_violations = check_ftl_invariants(system.ssd.ftl)
        if config.tenants is not None:
            result.invariant_violations.extend(
                check_namespace_isolation(system.ssd.ftl))
        digests: List[str] = []
        for tenant, acked, current in zip(system.tenants, acked_at_crash,
                                          currents):
            try:
                recovered = check_durability(tenant.engine, acked, current)
                digests.append(_state_digest(recovered.versions))
            except RecoveryError as exc:
                result.durability_error = \
                    f"{tenant.name}: {exc}" if config.tenants is not None \
                    else str(exc)
                break
        else:
            result.recovered_digest = "+".join(digests)
        sweep.results.append(result)
    return sweep


# ---------------------------------------------------------------------------
# Open-loop crash sweep: admission control under power loss.
#
# The classic sweep above drives the engine closed-loop; this variant
# pushes a bursty open-loop arrival stream through a deliberately tiny
# front door (AdmissionController), so some arrivals are shed *before*
# ever touching the engine, then pulls the plug mid-stream.  The two
# durability claims under test:
#
# * an op that was shed was never acked — shed and acked index sets are
#   disjoint at every crash instant;
# * an op that WAS acked survives recovery — the standard
#   ``acked <= recovered <= current`` durability check, with ``acked``
#   containing only admitted-and-completed writes.
# ---------------------------------------------------------------------------


@dataclass
class OpenLoopCrashPoint:
    """One open-loop crash/recover/verify cycle."""

    index: int
    crash_step: int
    sim_time_ns: int
    submitted: int
    completed: int
    shed: int
    pending: int
    """Ops past the front door but unfinished at the crash instant
    (``inflight + waiting`` on the controller)."""

    acked_keys: int
    report: CrashReport
    shed_acked_overlap: int = 0
    """Ops both shed and acked — must be zero (the no-zombie claim)."""

    reconciled: bool = True
    """``submitted == completed + shed + pending`` at the crash instant
    — the typed-completion ledger balances even mid-flight."""

    mapping_mismatches: int = 0
    invariant_violations: List[str] = field(default_factory=list)
    durability_error: str = ""
    recovered_digest: str = ""

    @property
    def ok(self) -> bool:
        """True when recovery was exact and the admission ledger clean."""
        return (self.shed_acked_overlap == 0
                and self.reconciled
                and self.mapping_mismatches == 0
                and not self.invariant_violations
                and not self.durability_error)


@dataclass
class OpenLoopSweepResult:
    """All crash points of one open-loop (mode, seed) sweep."""

    mode: str
    seed: int
    total_steps: int
    results: List[OpenLoopCrashPoint] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def failures(self) -> List[OpenLoopCrashPoint]:
        return [result for result in self.results if not result.ok]

    def total_shed(self) -> int:
        """Sheds summed across crash points — the sweep only exercises
        the shed/acked disjointness claim when this is positive."""
        return sum(result.shed for result in self.results)

    def digest(self) -> str:
        """Stable fingerprint of the sweep (determinism checks)."""
        digest = hashlib.sha256()
        for result in self.results:
            digest.update(f"{result.crash_step}:{result.shed}:"
                          f"{result.recovered_digest}".encode())
        return digest.hexdigest()[:16]


def _open_loop_put(engine: StorageEngine, admission: AdmissionController,
                   ticket: AdmissionTicket, key: int, index: int,
                   acked: Dict[int, int], acked_indices: set
                   ) -> Generator[Any, Any, None]:
    if ticket.queued:
        yield ticket.event
    version = yield from engine.put(key)
    admission.release()
    if version is not None:
        acked[key] = version
        acked_indices.add(index)


def _open_loop_dispatcher(system: KvSystem, engine: StorageEngine,
                          admission: AdmissionController,
                          times: List[int], num_keys: int,
                          acked: Dict[int, int], acked_indices: set,
                          shed_indices: set, workers: List[Any]
                          ) -> Generator[Any, Any, None]:
    base = system.sim.now
    for index, instant in enumerate(times):
        target = base + instant
        if target > system.sim.now:
            yield target - system.sim.now
        ticket = admission.try_admit(is_read=False)
        if ticket.shed:
            shed_indices.add(index)
            continue
        workers.append(spawn(
            system.sim,
            _open_loop_put(engine, admission, ticket,
                           (index * 7) % num_keys, index, acked,
                           acked_indices),
            name=f"ol-put{index}"))


def _open_loop_checkpointer(engine: StorageEngine, count: int,
                            gap_ns: int) -> Generator[Any, Any, None]:
    for _ in range(count):
        yield gap_ns
        yield from engine.checkpoint()


def _start_open_loop(config: SystemConfig, spec: ArrivalSpec, ops: int,
                     admission_config: AdmissionConfig) -> Dict[str, Any]:
    """Build a started system running the open-loop crash workload."""
    system = KvSystem(config)
    system.load()
    tenant = system.tenants[0]
    tenant.engine.start()
    ckpt_violations: List[str] = []
    tenant.engine.on_checkpoint.append(
        lambda engine, _report: ckpt_violations.extend(
            check_ftl_invariants(engine.ssd.ftl)))
    admission = AdmissionController(system.sim, admission_config,
                                    label="open-crash")
    times = arrival_times(
        spec, SeededRng(config.seed).fork("open-crash/arrivals"), ops)
    span = times[-1] if times else 0
    acked: Dict[int, int] = {}
    acked_indices: set = set()
    shed_indices: set = set()
    workers: List[Any] = []
    dispatcher = spawn(
        system.sim,
        _open_loop_dispatcher(system, tenant.engine, admission, times,
                              tenant.view.num_keys, acked, acked_indices,
                              shed_indices, workers),
        name="ol-dispatch")
    checkpointer = spawn(
        system.sim,
        _open_loop_checkpointer(tenant.engine, 3, max(1, span // 4)),
        name="ol-ckpt")
    return dict(system=system, tenant=tenant, admission=admission,
                acked=acked, acked_indices=acked_indices,
                shed_indices=shed_indices, workers=workers,
                dispatcher=dispatcher, checkpointer=checkpointer,
                ckpt_violations=ckpt_violations)


def _open_loop_drained(run: Dict[str, Any]) -> bool:
    return (run["dispatcher"].triggered and run["checkpointer"].triggered
            and all(worker.triggered for worker in run["workers"]))


def open_loop_crash_sweep(mode: str, crash_points: int = 12, seed: int = 7,
                          ops: int = 160, num_keys: int = 64,
                          rate_ops_per_sec: float = 150_000.0,
                          max_inflight: int = 2, max_waiting: int = 3
                          ) -> OpenLoopSweepResult:
    """Power-cut a bursty open-loop stream behind a tiny front door.

    The burst arrival process against ``max_inflight=2 / max_waiting=3``
    guarantees sheds (asserted via :meth:`OpenLoopSweepResult.total_shed`
    by the battery), and the seeded crash instants land before, inside
    and after checkpoints.  Every crash point asserts the shed/acked
    sets are disjoint, the admission ledger reconciles mid-flight, and
    acked writes survive SPOR recovery.
    """
    config = tiny_config(mode=mode, seed=seed, num_keys=num_keys,
                         track_op_log=True, snapshot_metadata=True)
    spec = ArrivalSpec(rate_ops_per_sec=rate_ops_per_sec, process="bursts")
    admission_config = AdmissionConfig(policy="queue",
                                       max_inflight=max_inflight,
                                       max_waiting=max_waiting)

    # Reference run: learn the workload's event-step count T.
    run = _start_open_loop(config, spec, ops, admission_config)
    total_steps = 0
    while not _open_loop_drained(run):
        if not run["system"].sim.step():
            raise SimulationError(
                "open-loop crash sweep reference run drained early")
        total_steps += 1
    for proc in [run["dispatcher"], run["checkpointer"]] + run["workers"]:
        if not proc.ok:
            raise proc.exception
    if run["ckpt_violations"]:
        raise SimulationError(
            f"invariants already broken in reference run: "
            f"{run['ckpt_violations'][:3]}")

    sweep = OpenLoopSweepResult(mode=mode, seed=seed,
                                total_steps=total_steps)
    for index, crash_step, point_rng in iter_crash_points(
            seed, total_steps, crash_points, f"open-crash/{mode}"):
        run = _start_open_loop(config, spec, ops, admission_config)
        system = run["system"]
        for _ in range(crash_step):
            if _open_loop_drained(run):
                break
            if not system.sim.step():
                raise SimulationError(
                    "open-loop crash sweep crash run drained early")

        admission = run["admission"]
        acked_at_crash = dict(run["acked"])
        current = {record.key: record.version
                   for record in run["tenant"].engine.kvmap.records()}
        pre_crash_mapping = system.ssd.ftl.mapping.snapshot()
        shed_total = sum(admission.shed.values())
        pending = admission.inflight + admission.waiting

        report = power_cut(system, point_rng.fork("tear"))
        rebuilt = recover_device(system)

        result = OpenLoopCrashPoint(
            index=index, crash_step=crash_step, sim_time_ns=system.sim.now,
            submitted=admission.submitted, completed=admission.completed,
            shed=shed_total, pending=pending,
            acked_keys=len(acked_at_crash), report=report,
            shed_acked_overlap=len(
                run["shed_indices"] & run["acked_indices"]),
            reconciled=(admission.submitted
                        == admission.completed + shed_total + pending))
        result.mapping_mismatches = sum(
            1 for lpn in set(pre_crash_mapping) | set(rebuilt)
            if pre_crash_mapping.get(lpn) != rebuilt.get(lpn))
        result.invariant_violations = check_ftl_invariants(system.ssd.ftl)
        try:
            recovered = check_durability(run["tenant"].engine,
                                         acked_at_crash, current)
            result.recovered_digest = _state_digest(recovered.versions)
        except RecoveryError as exc:
            result.durability_error = str(exc)
        sweep.results.append(result)
    return sweep
