"""Deterministic crash-point sweep over a scripted KV workload.

One sweep (a) runs a scripted update/checkpoint workload to completion to
learn its event-step count ``T``, then (b) replays the identical workload
``crash_points`` times on fresh systems, each time pulling the plug after
a seeded-random number of steps in ``[1, T]``, recovering the device and
asserting:

* the SPOR scan rebuilds exactly the pre-crash mapping table (nothing the
  capacitor promised to hold was lost, nothing is invented);
* every FTL structural invariant holds after recovery — and after every
  checkpoint that completed before the crash;
* the recovered KV store satisfies ``acked <= recovered <= current``:
  no acknowledged commit is lost and no version is invented.

Everything is derived from one root seed, so a sweep is exactly
reproducible: same seed, same crash points, same recovered state digests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Tuple

from repro.common.errors import RecoveryError, SimulationError
from repro.common.rng import SeededRng
from repro.common.units import MIB
from repro.engine.engine import StorageEngine
from repro.engine.recovery import check_durability
from repro.fault.crash import CrashReport, power_cut, recover_device
from repro.fault.invariants import (
    check_ftl_invariants,
    check_namespace_isolation,
)
from repro.sim.process import spawn
from repro.system.config import SystemConfig, TenantSpec, tiny_config
from repro.system.system import KvSystem
from repro.trace.tracer import Tracer


@dataclass
class CrashPointResult:
    """Outcome of one crash/recover/verify cycle."""

    index: int
    crash_step: int
    sim_time_ns: int
    acked_keys: int
    report: CrashReport
    mapping_mismatches: int = 0
    checkpoint_violations: List[str] = field(default_factory=list)
    invariant_violations: List[str] = field(default_factory=list)
    durability_error: str = ""
    recovered_digest: str = ""
    recovery_wall_ns: int = 0
    """Host wall-clock time of the SPOR recovery scan (simulated time is
    frozen after a power cut, so recovery cost is measured on the host's
    monotonic clock via :meth:`repro.trace.tracer.Tracer.wallclock`)."""

    @property
    def ok(self) -> bool:
        """True when recovery was exact and every invariant held."""
        return (self.mapping_mismatches == 0
                and not self.checkpoint_violations
                and not self.invariant_violations
                and not self.durability_error)


@dataclass
class SweepResult:
    """All crash points of one (mode, seed) sweep."""

    mode: str
    seed: int
    total_steps: int
    results: List[CrashPointResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every crash point recovered cleanly."""
        return all(result.ok for result in self.results)

    def failures(self) -> List[CrashPointResult]:
        """The crash points that violated an invariant or lost data."""
        return [result for result in self.results if not result.ok]

    def digest(self) -> str:
        """Stable fingerprint of the sweep (determinism checks)."""
        digest = hashlib.sha256()
        for result in self.results:
            digest.update(
                f"{result.crash_step}:{result.recovered_digest}".encode())
        return digest.hexdigest()[:16]

    def mean_recovery_wall_ns(self) -> float:
        """Average SPOR recovery wall time per crash point."""
        if not self.results:
            return 0.0
        return sum(r.recovery_wall_ns for r in self.results) / \
            len(self.results)

    def max_recovery_wall_ns(self) -> int:
        """Slowest SPOR recovery across the sweep."""
        return max((r.recovery_wall_ns for r in self.results), default=0)


def _sweep_config(mode: str, seed: int, num_keys: int,
                  tenants: int = 1) -> SystemConfig:
    if tenants <= 1:
        return tiny_config(mode=mode, seed=seed, num_keys=num_keys,
                           track_op_log=True, snapshot_metadata=True)
    # Shrink the per-tenant journal so several namespaces fit the tiny
    # test device while still wrapping (and checkpointing) under load.
    return tiny_config(mode=mode, seed=seed, num_keys=num_keys,
                       track_op_log=True, snapshot_metadata=True,
                       journal_area_bytes=1 * MIB,
                       tenants=tuple(TenantSpec()
                                     for _ in range(tenants)))


def _scripted_client(engine: StorageEngine, num_keys: int,
                     acked: Dict[int, int], ops: int,
                     ckpt_every: int) -> Generator[Any, Any, None]:
    for i in range(ops):
        key = (i * 7) % num_keys
        version = yield from engine.put(key)
        if version is not None:
            # A None version means the engine degraded and rejected the
            # update — nothing was acked, so nothing is owed durability.
            acked[key] = version
        if ckpt_every and (i + 1) % ckpt_every == 0:
            yield from engine.checkpoint()


def _start(config: SystemConfig, ops: int, ckpt_every: int
           ) -> Tuple[KvSystem, List[Dict[int, int]], List[Any], List[str]]:
    """Build a loaded, started system running the scripted workload.

    Returns one acked-versions dict and one client process per tenant (a
    single pair on the classic single-tenant path).
    """
    system = KvSystem(config)
    system.load()
    ckpt_violations: List[str] = []
    ackeds: List[Dict[int, int]] = []
    procs: List[Any] = []
    for tenant in system.tenants:
        tenant.engine.start()
        tenant.engine.on_checkpoint.append(
            lambda engine, _report: ckpt_violations.extend(
                check_ftl_invariants(engine.ssd.ftl)))
        acked: Dict[int, int] = {}
        ackeds.append(acked)
        name = "fault-client" if config.tenants is None \
            else f"fault-client{tenant.index}"
        procs.append(spawn(
            system.sim,
            _scripted_client(tenant.engine, tenant.view.num_keys, acked,
                             ops, ckpt_every),
            name=name))
    return system, ackeds, procs, ckpt_violations


def _state_digest(versions: Dict[int, int]) -> str:
    payload = ",".join(f"{key}:{version}"
                       for key, version in sorted(versions.items()))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def fault_sweep(mode: str, crash_points: int = 20, seed: int = 7,
                ops: int = 120, num_keys: int = 64,
                ckpt_every: int = 40, tenants: int = 1) -> SweepResult:
    """Sweep ``crash_points`` seeded crash instants over one configuration.

    ``mode`` is one of the engine modes ('baseline' is the conventional
    system; 'isc_c' and 'checkin' exercise the remapping FTL).  With
    ``tenants > 1`` the workload runs against a namespaced device — every
    tenant executes the scripted workload concurrently, and SPOR recovery
    must restore each tenant's durable state independently while keeping
    the namespaces physically disjoint.  Returns a :class:`SweepResult`;
    inspect ``.ok`` / ``.failures()``.
    """
    config = _sweep_config(mode, seed, num_keys, tenants)

    # Reference run: learn the workload's event-step count T.
    system, ackeds, procs, ckpt_violations = _start(config, ops, ckpt_every)
    total_steps = 0
    while not all(proc.triggered for proc in procs):
        if not system.sim.step():
            raise SimulationError("fault sweep reference run drained early")
        total_steps += 1
    for proc in procs:
        if not proc.ok:
            raise proc.exception
    if ckpt_violations:
        raise SimulationError(
            f"invariants already broken in reference run: {ckpt_violations[:3]}")

    sweep = SweepResult(mode=mode, seed=seed, total_steps=total_steps)
    wall = Tracer.wallclock()  # recovery runs outside simulated time
    rng = SeededRng(seed).fork(f"fault/{mode}")
    for index in range(crash_points):
        point_rng = rng.fork(f"point{index}")
        crash_step = point_rng.randint(1, total_steps)
        system, ackeds, procs, ckpt_violations = _start(config, ops,
                                                        ckpt_every)
        for _ in range(crash_step):
            if all(proc.triggered for proc in procs):
                break
            if not system.sim.step():
                raise SimulationError("fault sweep crash run drained early")

        acked_at_crash = [dict(acked) for acked in ackeds]
        currents = [{record.key: record.version
                     for record in tenant.engine.kvmap.records()}
                    for tenant in system.tenants]
        pre_crash_mapping = system.ssd.ftl.mapping.snapshot()

        report = power_cut(system, point_rng.fork("tear"))
        recovery_span = wall.begin("recovery", "spor_scan",
                                   crash_step=crash_step)
        rebuilt = recover_device(system)
        wall.end(recovery_span)

        result = CrashPointResult(
            index=index, crash_step=crash_step, sim_time_ns=system.sim.now,
            acked_keys=sum(len(acked) for acked in acked_at_crash),
            report=report,
            checkpoint_violations=list(ckpt_violations),
            recovery_wall_ns=recovery_span.duration_ns)
        result.mapping_mismatches = sum(
            1 for lpn in set(pre_crash_mapping) | set(rebuilt)
            if pre_crash_mapping.get(lpn) != rebuilt.get(lpn))
        result.invariant_violations = check_ftl_invariants(system.ssd.ftl)
        if config.tenants is not None:
            result.invariant_violations.extend(
                check_namespace_isolation(system.ssd.ftl))
        digests: List[str] = []
        for tenant, acked, current in zip(system.tenants, acked_at_crash,
                                          currents):
            try:
                recovered = check_durability(tenant.engine, acked, current)
                digests.append(_state_digest(recovered.versions))
            except RecoveryError as exc:
                result.durability_error = \
                    f"{tenant.name}: {exc}" if config.tenants is not None \
                    else str(exc)
                break
        else:
            result.recovered_digest = "+".join(digests)
        sweep.results.append(result)
    return sweep
