"""The simulated power cut and the post-crash recovery procedure.

:func:`power_cut` is the destructive half: it stops the event loop,
unwinds every live process, tears the in-flight flash programs at unit
granularity and discards all volatile device state.  What survives is
exactly the paper's durability contract (§III-D, §III-G): programmed
flash pages, the capacitor-backed FTL staging buffer and controller
write coalescer, and the durable remap/trim operation log.

:func:`recover_device` is the forensic half: it re-runs the SPOR scan
(:func:`~repro.engine.recovery.rebuild_mapping_from_oob`) against the
post-crash image and installs the rebuilt mapping table, the way the
device firmware would at next power-on.  No simulated time passes —
after a crash the simulator is dead by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.rng import SeededRng
from repro.engine.recovery import rebuild_mapping_from_oob
from repro.system.system import KvSystem


@dataclass
class CrashReport:
    """What the power cut destroyed."""

    killed_processes: int = 0
    torn_pages: List[int] = field(default_factory=list)
    volatile_discarded: Dict[str, int] = field(default_factory=dict)


def power_cut(system: KvSystem, rng: SeededRng) -> CrashReport:
    """Kill the system at the current event boundary.

    Ordering matters: the event loop dies first (so no process reacts to
    the loss), then the flash array tears its in-flight programs using
    ``rng``, then every volatile DRAM structure is dropped.  The live
    mapping table is left in place so callers can diff it against the
    recovery scan — a real crash would lose it too.
    """
    report = CrashReport()
    recorder = system.sim.flightrec
    if recorder is not None:
        # Recorded *before* the cut so the trigger lands in the ring
        # while simulated time is still meaningful; everything after is
        # forensic (zero-time) teardown.
        recorder.trip(system.sim.now, "crash", {"kind": "power_cut"})
    report.killed_processes = system.sim.power_cut()
    ftl = system.ssd.ftl
    report.torn_pages = ftl.array.power_cut(rng)
    volatile = ftl.volatile_state()
    report.volatile_discarded = {
        "map_cache_pages": volatile["map_cache_pages"],
        "lpn_locks": volatile["lpn_locks"],
        "inflight_blocks": len(volatile["inflight_blocks"]),
        "dirty_map_entries": volatile["dirty_map_entries"],
    }
    ftl.discard_volatile()
    system.ssd.controller.cache.clear()
    return report


def recover_device(system: KvSystem) -> Dict[int, int]:
    """Rebuild and install the mapping table from the post-crash image.

    Returns the rebuilt L2P table.  Requires the system to have been
    configured with ``track_op_log=True``.
    """
    ftl = system.ssd.ftl
    rebuilt = rebuild_mapping_from_oob(ftl)
    ftl.mapping.restore(rebuilt)
    return rebuilt
