"""Command-line interface: run experiments and single configurations.

Usage::

    python -m repro list
    python -m repro run fig8a [--scale quick|full]
    python -m repro bench --mode checkin --workload A --threads 32
    python -m repro table1
    python -m repro fault-sweep --crash-points 50 --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import format_table
from repro.experiments.base import FULL, QUICK
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.system import SystemConfig, run_config


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [[exp_id, (runner.__doc__ or "").strip().splitlines()[0]]
            for exp_id, runner in sorted(EXPERIMENTS.items())]
    print(format_table(["experiment", "description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    scale = FULL if args.scale == "full" else QUICK
    started = time.time()
    result = run_experiment(args.experiment, scale)
    elapsed = time.time() - started
    print(result if isinstance(result, str) else result.table())
    for extra in ("comparison_table", "lifetime_table"):
        if hasattr(result, extra):
            print()
            print(getattr(result, extra)())
    print(f"\n[{args.experiment} at {scale.name} scale: {elapsed:.1f}s]")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    config = SystemConfig(mode=args.mode, workload=args.workload,
                          threads=args.threads, total_queries=args.queries,
                          distribution=args.distribution,
                          verify_reads=False)
    started = time.time()
    result = run_config(config)
    elapsed = time.time() - started
    metrics = result.metrics
    summary = metrics.summary()
    rows = [[key, value] for key, value in summary.items()]
    rows.append(["checkpoints", result.checkpoint_count])
    rows.append(["mean_ckpt_ms", result.mean_checkpoint_ns() / 1e6])
    print(format_table(["metric", "value"], rows,
                       title=f"{args.mode} / workload {args.workload} / "
                             f"{args.threads} threads"))
    print(f"\n[wall: {elapsed:.1f}s, simulated: "
          f"{metrics.duration_ns / 1e9:.3f}s]")
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.experiments.table1 import render_table1
    print(render_table1())
    return 0


FAULT_SWEEP_MODES = ("baseline", "isc_c", "checkin")
"""Configurations the crash sweep exercises: the conventional system and
the two remapping-FTL systems (ISC-A/B share the baseline's device FTL)."""


def _cmd_fault_sweep(args: argparse.Namespace) -> int:
    from repro.fault.harness import fault_sweep
    modes = FAULT_SWEEP_MODES if args.mode == "all" else (args.mode,)
    rows = []
    failed = 0
    started = time.time()
    for mode in modes:
        sweep = fault_sweep(mode=mode, crash_points=args.crash_points,
                            seed=args.seed, ops=args.ops)
        failures = sweep.failures()
        failed += len(failures)
        rows.append([mode, len(sweep.results), sweep.total_steps,
                     len(failures), sweep.digest()])
        for result in failures:
            problems = (result.invariant_violations
                        + result.checkpoint_violations)
            if result.durability_error:
                problems.append(result.durability_error)
            if result.mapping_mismatches:
                problems.append(
                    f"{result.mapping_mismatches} SPOR mapping mismatches")
            print(f"FAIL {mode} crash point {result.index} "
                  f"(step {result.crash_step}): {problems[0]}",
                  file=sys.stderr)
    elapsed = time.time() - started
    print(format_table(
        ["mode", "crash_points", "workload_steps", "failures", "digest"],
        rows, title=f"fault sweep (seed {args.seed})"))
    print(f"\n[{sum(r[1] for r in rows)} crash points: {elapsed:.1f}s]")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI: list / run / bench / table1 subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Check-In (ISCA 2020) reproduction: experiments and runs")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list reproducible figures/tables") \
        .set_defaults(handler=_cmd_list)

    run_parser = commands.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--scale", choices=("quick", "full"),
                            default="quick")
    run_parser.set_defaults(handler=_cmd_run)

    bench_parser = commands.add_parser(
        "bench", help="run one configuration and print its metrics")
    bench_parser.add_argument("--mode", default="checkin",
                              choices=("baseline", "isc_a", "isc_b",
                                       "isc_c", "checkin"))
    bench_parser.add_argument("--workload", default="A",
                              choices=("A", "B", "C", "F", "WO"))
    bench_parser.add_argument("--threads", type=int, default=32)
    bench_parser.add_argument("--queries", type=int, default=20_000)
    bench_parser.add_argument("--distribution", default="zipfian",
                              choices=("uniform", "zipfian",
                                       "scrambled_zipfian"))
    bench_parser.set_defaults(handler=_cmd_bench)

    commands.add_parser("table1", help="print the Table-I configuration") \
        .set_defaults(handler=_cmd_table1)

    fault_parser = commands.add_parser(
        "fault-sweep",
        help="crash-consistency sweep: power-cut at N seeded instants")
    fault_parser.add_argument("--mode", default="all",
                              choices=("all",) + FAULT_SWEEP_MODES)
    fault_parser.add_argument("--crash-points", type=int, default=20)
    fault_parser.add_argument("--seed", type=int, default=7)
    fault_parser.add_argument("--ops", type=int, default=120)
    fault_parser.set_defaults(handler=_cmd_fault_sweep)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; exiting quietly is the Unix way.
        import os
        try:
            os.close(sys.stdout.fileno())
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
