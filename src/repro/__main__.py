"""Command-line interface: run experiments and single configurations.

Usage::

    python -m repro list
    python -m repro run fig8a [--scale quick|full] [--trace [--out t.json]]
    python -m repro bench --mode checkin --workload A --threads 32
    python -m repro trace fig8 --out trace.json
    python -m repro trace --validate trace.json
    python -m repro table1
    python -m repro fault-sweep --crash-points 50 --seed 7
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, List, Optional, Sequence, Tuple

from repro.analysis import format_table
from repro.common.units import MIB, parse_duration_ns
from repro.experiments.base import FULL, QUICK
from repro.experiments.registry import (
    EXPERIMENT_ALIASES,
    EXPERIMENTS,
    run_experiment,
)
from repro.obs import (
    CKPT_FAMILY,
    blame_table,
    clear_blame,
    exemplar_table,
    tail_table,
    validate_blame_file,
    write_blame_jsonl,
)
from repro.system import SystemConfig, TenantSpec, run_config
from repro.telemetry import (
    TelemetryConfig,
    clear_samplers,
    collected_samplers,
    disable_telemetry,
    enable_telemetry,
    events_table,
    health_table,
    summary_table,
    validate_telemetry_file,
    write_telemetry_jsonl,
)
from repro.trace import (
    Tracer,
    clear_runs,
    collected_runs,
    component_table,
    disable_tracing,
    enable_tracing,
    phase_table,
    queue_split_table,
    summarize,
    validate_trace_file,
    write_chrome_trace,
)


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [[exp_id, (runner.__doc__ or "").strip().splitlines()[0]]
            for exp_id, runner in sorted(EXPERIMENTS.items())]
    print(format_table(["experiment", "description"], rows))
    return 0


def _runs_phase_table(runs: Sequence[Tuple[str, Tracer]]) -> str:
    """One row per traced run: checkpoint count and per-phase totals."""
    summaries = [(label, summarize(tracer)) for label, tracer in runs]
    phases = sorted({phase for _label, summary in summaries
                     for phase in summary.phase_totals})
    headers = ["run", "ckpts", "ckpt_ms"] + [f"{p}_ms" for p in phases]
    rows: List[List[Any]] = []
    for label, summary in summaries:
        total_ms = sum(c["duration_ns"] for c in summary.checkpoints) / 1e6
        rows.append([label, summary.checkpoint_count, total_ms]
                    + [summary.phase_totals.get(p, 0) / 1e6 for p in phases])
    return format_table(headers, rows,
                        title="trace: checkpoint phases per run")


def _emit_trace(out: Optional[str]) -> None:
    """Print the trace overview and optionally export the Chrome JSON."""
    runs = collected_runs()
    if not runs:
        print("[trace: no traced runs collected]", file=sys.stderr)
        return
    print()
    print(_runs_phase_table(runs))
    if out:
        count = write_chrome_trace(out, runs)
        problems = validate_trace_file(out)
        status = "valid" if not problems else f"{len(problems)} PROBLEMS"
        print(f"\n[trace: {count} events from {len(runs)} run(s) -> {out} "
              f"({status})]")
    clear_runs()


def _emit_telemetry(out: Optional[str]) -> None:
    """Print sampler overviews; optionally dump the JSONL file(s)."""
    samplers = collected_samplers()
    if not samplers:
        print("[telemetry: no sampled runs collected]", file=sys.stderr)
        return
    rows = [[label, sampler.samples, len(sampler.series),
             len(sampler.events),
             len(sampler.health.frames) if sampler.health else 0]
            for label, sampler in samplers]
    print()
    print(format_table(
        ["run", "samples", "series", "events", "health_frames"],
        rows, title="telemetry: sampled runs"))
    if out:
        import os
        stem, ext = os.path.splitext(out)
        for index, (label, sampler) in enumerate(samplers):
            path = out if len(samplers) == 1 else f"{stem}-{label}{ext}"
            count = write_telemetry_jsonl(path, sampler)
            problems = validate_telemetry_file(path)
            status = "valid" if not problems else \
                f"{len(problems)} PROBLEMS"
            print(f"[telemetry: {count} records -> {path} ({status})]")
    clear_samplers()


def _cmd_run(args: argparse.Namespace) -> int:
    if args.arrivals is not None:
        if args.experiment is not None:
            print("run: give either an experiment id or --arrivals, not both",
                  file=sys.stderr)
            return 2
        return _run_arrivals(args)
    if args.tenants is not None:
        if args.experiment is not None:
            print("run: give either an experiment id or --tenants, not both",
                  file=sys.stderr)
            return 2
        return _run_tenants(args)
    if args.experiment is None:
        print("run: an experiment id, --tenants N or --arrivals RATE "
              "is required", file=sys.stderr)
        return 2
    scale = FULL if args.scale == "full" else QUICK
    if args.trace:
        clear_runs()
        enable_tracing()
    if args.telemetry:
        clear_samplers()
        enable_telemetry(TelemetryConfig(
            interval_ns=parse_duration_ns(args.telemetry_interval)))
    started = time.time()
    try:
        result = run_experiment(args.experiment, scale)
    finally:
        if args.trace:
            disable_tracing()
        if args.telemetry:
            disable_telemetry()
    elapsed = time.time() - started
    print(result if isinstance(result, str) else result.table())
    for extra in ("comparison_table", "lifetime_table"):
        if hasattr(result, extra):
            print()
            print(getattr(result, extra)())
    if args.trace:
        _emit_trace(args.out)
    if args.telemetry:
        _emit_telemetry(args.telemetry_out)
    print(f"\n[{args.experiment} at {scale.name} scale: {elapsed:.1f}s]")
    return 0


def _run_arrivals(args: argparse.Namespace) -> int:
    """``repro run --arrivals RATE``: one open-loop run, reconciled.

    Combines with ``--tenants N`` for per-tenant fan-in: every tenant
    gets its own open-loop dispatcher and front door at the given rate.
    """
    from repro.engine.admission import AdmissionConfig
    from repro.workload.arrivals import ArrivalSpec

    if args.arrivals <= 0:
        print("run: --arrivals must be a positive ops/s rate",
              file=sys.stderr)
        return 2
    arrivals = ArrivalSpec(rate_ops_per_sec=args.arrivals,
                           process=args.arrival_process,
                           schedule=args.arrival_schedule)
    admission = AdmissionConfig(policy=args.admission_policy,
                                max_inflight=args.max_inflight,
                                max_waiting=args.max_waiting)
    kwargs = dict(
        mode=args.mode,
        threads=8,
        num_keys=1_024,
        total_queries=4_000,
        journal_area_bytes=8 * MIB,
        verify_reads=False,
        arrivals=arrivals,
        admission=admission,
    )
    if args.tenants is not None:
        if args.tenants < 1:
            print("run: --tenants must be >= 1", file=sys.stderr)
            return 2
        kwargs["tenants"] = tuple(TenantSpec()
                                  for _ in range(args.tenants))
    config = SystemConfig(**kwargs)
    started = time.time()
    result = run_config(config)
    elapsed = time.time() - started
    rows = []
    reconciled = True
    for tenant in result.tenants:
        report = tenant.admission
        reconciled = reconciled and report.reconciles()
        rows.append([
            tenant.name, report.submitted, tenant.operations,
            report.shed_total, report.shed_rate,
            tenant.metrics.latency_all.p(99.0)[99.0] / 1e3,
            report.max_waiting_seen,
            "yes" if report.reconciles() else "NO"])
    print(format_table(
        ["tenant", "submitted", "completed", "shed", "shed_rate",
         "p99_us", "peak_queue", "reconciled"],
        rows, title=f"open loop @ {args.arrivals:,.0f} ops/s "
                    f"({args.arrival_process}/{args.arrival_schedule}, "
                    f"policy {args.admission_policy}, mode {args.mode})"))
    print(f"\n[every submitted op got a typed completion: "
          f"{'yes' if reconciled else 'NO — ZOMBIE OPS'}; "
          f"wall {elapsed:.1f}s]")
    return 0 if reconciled else 1


def _run_tenants(args: argparse.Namespace) -> int:
    """``repro run --tenants N``: N identical tenants on one device."""
    if args.tenants < 1:
        print("run: --tenants must be >= 1", file=sys.stderr)
        return 2
    config = SystemConfig(
        mode=args.mode,
        tenants=tuple(TenantSpec() for _ in range(args.tenants)),
        threads=8,
        num_keys=1_024,
        total_queries=4_000,
        journal_area_bytes=8 * MIB,
        verify_reads=False,
    )
    started = time.time()
    result = run_config(config)
    elapsed = time.time() - started
    rows = []
    for tenant in result.tenants:
        tails = tenant.metrics.latency_all.p(99.0)
        rows.append([tenant.name, tenant.operations,
                     tenant.metrics.throughput_qps(),
                     tails[99.0] / 1e3,
                     len(tenant.checkpoint_reports)])
    tenant_ops = sum(t.operations for t in result.tenants)
    rows.append(["aggregate", result.metrics.operations,
                 result.metrics.throughput_qps(),
                 result.metrics.latency_all.p(99.0)[99.0] / 1e3,
                 result.checkpoint_count])
    print(format_table(
        ["tenant", "operations", "qps", "p99_us", "checkpoints"],
        rows, title=f"{args.tenants} tenants / mode {args.mode}"))
    consistent = tenant_ops == result.metrics.operations
    print(f"\n[per-tenant ops {'sum to' if consistent else 'DO NOT sum to'} "
          f"the aggregate: {tenant_ops} vs {result.metrics.operations}; "
          f"wall {elapsed:.1f}s]")
    return 0 if consistent else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.validate:
        problems = validate_trace_file(args.validate)
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        print(f"{args.validate}: "
              + ("ok" if not problems else f"{len(problems)} problems"))
        return 1 if problems else 0
    scale = FULL if args.scale == "full" else QUICK
    clear_runs()
    enable_tracing()
    started = time.time()
    try:
        run_experiment(args.experiment, scale)
    finally:
        disable_tracing()
    elapsed = time.time() - started
    _emit_trace(args.out)
    print(f"\n[{args.experiment} traced at {scale.name} scale: "
          f"{elapsed:.1f}s]")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    """One sampled run: summary tables, JSONL export, validation."""
    if args.validate_file:
        problems = validate_telemetry_file(args.validate_file)
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        print(f"{args.validate_file}: "
              + ("ok" if not problems else f"{len(problems)} problems"))
        return 1 if problems else 0
    clear_samplers()
    kwargs = dict(
        mode=args.mode, workload=args.workload, threads=args.threads,
        total_queries=args.queries, verify_reads=False,
        telemetry=TelemetryConfig(
            interval_ns=parse_duration_ns(args.interval)))
    if args.tenants is not None:
        kwargs["tenants"] = tuple(TenantSpec()
                                  for _ in range(args.tenants))
        kwargs["journal_area_bytes"] = 8 * MIB
    config = SystemConfig(**kwargs)
    started = time.time()
    result = run_config(config)
    elapsed = time.time() - started
    sampler = result.telemetry
    if args.summary:
        print(summary_table(sampler))
        print()
        print(events_table(sampler))
        print()
        print(health_table(sampler))
    exit_code = 0
    if args.out:
        count = write_telemetry_jsonl(args.out, sampler)
        problems = validate_telemetry_file(args.out)
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        status = "valid" if not problems else f"{len(problems)} problems"
        print(f"[telemetry: {count} records -> {args.out} ({status})]")
        exit_code = 1 if problems else 0
    print(f"[{sampler.samples} samples / {len(sampler.series)} series / "
          f"{len(sampler.events)} events; wall {elapsed:.1f}s]")
    clear_samplers()
    return exit_code


def _cmd_blame(args: argparse.Namespace) -> int:
    """One blamed run: per-stage attribution, tail profile, exemplars.

    Answers "where did the nanoseconds go" per request: the blame table
    splits every request's end-to-end latency into pipeline stages (the
    ledger sums exactly — conservation is enforced at finalize), the tail
    table conditions the split on >p99 requests, and the exemplar table
    names the worst requests with their trace span ids.
    """
    if args.validate_file:
        problems = validate_blame_file(args.validate_file)
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        print(f"{args.validate_file}: "
              + ("ok" if not problems else f"{len(problems)} problems"))
        return 1 if problems else 0
    clear_blame()
    kwargs = dict(
        mode=args.mode, workload=args.workload, threads=args.threads,
        total_queries=args.queries, verify_reads=False, blame=True,
        lock_queries_during_checkpoint=args.gate)
    if args.ckpt_interval is not None:
        kwargs["checkpoint_interval_ns"] = \
            parse_duration_ns(args.ckpt_interval)
    if args.journal_mib is not None:
        kwargs["journal_area_bytes"] = args.journal_mib * MIB
        kwargs["checkpoint_journal_quota"] = args.journal_mib * MIB // 8
    if args.tenants is not None:
        kwargs["tenants"] = tuple(TenantSpec()
                                  for _ in range(args.tenants))
        kwargs["journal_area_bytes"] = 8 * MIB
    config = SystemConfig(**kwargs)
    started = time.time()
    result = run_config(config)
    elapsed = time.time() - started
    report = result.blame
    print(blame_table(report))
    print()
    print(tail_table(report, p=args.percentile))
    print()
    print(exemplar_table(report))
    exit_code = 0
    if args.out:
        count = write_blame_jsonl(args.out, report, p=args.percentile)
        problems = validate_blame_file(args.out)
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        status = "valid" if not problems else f"{len(problems)} problems"
        print(f"\n[blame: {count} records -> {args.out} ({status})]")
        if problems:
            exit_code = 1
    if args.assert_ckpt_tail:
        profile = report.aggregate().tail_profile(args.percentile)
        dominant = profile.dominant_tail_category()
        ok = dominant in CKPT_FAMILY
        print(f"[dominant tail stage: {dominant or '-'} "
              f"({'checkpoint-family' if ok else 'NOT checkpoint-family'}), "
              f"ckpt tail share {profile.ckpt_tail_share:.1%}]")
        if not ok:
            exit_code = 1
    print(f"[{report.requests} blamed requests / "
          f"{result.checkpoint_count} checkpoints; wall {elapsed:.1f}s]")
    clear_blame()
    return exit_code


def _cmd_incident(args: argparse.Namespace) -> int:
    """Black-box forensics: trip a seeded incident and reconstruct it.

    The default run is the burst-storm-into-gated-checkpoints scenario:
    open-loop bursty arrivals behind a bounded front door, checkpoints
    freezing queries (the Figure-10 gate), flight recorder armed.  The
    escalated SLO watchdog turns the breach into an incident trigger;
    the bundle is dumped, validated, and replayed as one merged causal
    timeline naming the dominant blame stage.
    """
    from repro.common.jsonl import read_json
    from repro.obs import (
        dominant_stage,
        load_incident_file,
        resolve_against_trace,
        timeline_table,
        validate_incident_file,
        write_incident_jsonl,
    )

    if args.validate_file:
        problems = validate_incident_file(args.validate_file)
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        print(f"{args.validate_file}: "
              + ("ok" if not problems else f"{len(problems)} problems"))
        return 1 if problems else 0
    if args.show_file:
        records = load_incident_file(args.show_file)
        print(timeline_table(records))
        stage = dominant_stage(records)
        print(f"[dominant blame stage: {stage or '-'}]")
        return 0

    clear_blame()
    clear_samplers()
    clear_runs()
    started = time.time()

    if args.kill_at is not None:
        records, result = _run_pair_incident(args)
    else:
        records, result = _run_node_incident(args)
    elapsed = time.time() - started

    print(timeline_table(records))
    header = records[0]
    stage = dominant_stage(records)
    print(f"\n[trigger: {header.get('trigger_reason') or 'none'}; "
          f"dominant blame stage: {stage or '-'}]")

    exit_code = 0
    if args.out:
        count = write_incident_jsonl(args.out, records)
        problems = validate_incident_file(args.out)
        for problem in problems:
            print(f"INVALID: {problem}", file=sys.stderr)
        status = "valid" if not problems else f"{len(problems)} problems"
        print(f"[incident: {count} records -> {args.out} ({status})]")
        if problems:
            exit_code = 1
    if args.trace_out:
        count = write_chrome_trace(args.trace_out, collected_runs())
        document, junk = read_json(args.trace_out)
        problems = junk + resolve_against_trace(records, document)
        for problem in problems:
            print(f"UNRESOLVED: {problem}", file=sys.stderr)
        status = "all flight span ids resolve" if not problems \
            else f"{len(problems)} problems"
        print(f"[trace: {count} events -> {args.trace_out} ({status})]")
        if problems:
            exit_code = 1
    if args.assert_trigger and header.get("trigger_reason") is None:
        print("ASSERT: no incident trigger fired", file=sys.stderr)
        exit_code = 1
    if args.assert_stage is not None and stage != args.assert_stage:
        print(f"ASSERT: dominant stage {stage or '-'} != "
              f"{args.assert_stage}", file=sys.stderr)
        exit_code = 1
    flights = header.get("flight_events", 0)
    print(f"[{flights} flight events / {header.get('triggers', 0)} "
          f"trigger(s); wall {elapsed:.1f}s]")
    clear_blame()
    clear_samplers()
    clear_runs()
    return exit_code


def _run_node_incident(args: argparse.Namespace) -> Tuple[Any, Any]:
    """One flight-recorded gated system under a seeded burst storm."""
    from repro.engine.admission import AdmissionConfig
    from repro.obs import incident_records
    from repro.system import KvSystem
    from repro.workload.arrivals import ArrivalSpec

    kwargs = dict(
        mode=args.mode, workload=args.workload, threads=args.threads,
        total_queries=args.queries, seed=args.seed, verify_reads=False,
        blame=True, trace=True, flightrec=True,
        lock_queries_during_checkpoint=args.gate,
        telemetry=TelemetryConfig(
            interval_ns=parse_duration_ns(args.interval)),
        checkpoint_interval_ns=parse_duration_ns(args.ckpt_interval),
        journal_area_bytes=args.journal_mib * MIB,
        checkpoint_journal_quota=args.journal_mib * MIB // 8)
    if args.burst:
        kwargs["arrivals"] = ArrivalSpec(
            rate_ops_per_sec=args.arrival_rate, process="bursts",
            schedule="flash-crowd")
        kwargs["admission"] = AdmissionConfig(
            policy="queue", max_inflight=args.threads,
            max_waiting=args.max_waiting)
    system = KvSystem(SystemConfig(**kwargs))
    for name in args.escalate.split(","):
        if name:
            system.telemetry.watchdogs.escalate(name.strip())
    result = system.run()
    records = incident_records(
        system, window_ns=parse_duration_ns(args.window),
        k=args.exemplars)
    return records, result


def _run_pair_incident(args: argparse.Namespace) -> Tuple[Any, Any]:
    """Cross-node incident: kill the primary mid-ship, then promote."""
    from repro.common.rng import SeededRng
    from repro.obs import pair_incident_records
    from repro.replication.campaign import campaign_config
    from repro.replication.replica import ReplicatedPair

    config = campaign_config(mode=args.mode, seed=args.seed,
                             ops=args.queries, flightrec=True)
    pair = ReplicatedPair(config)
    pair.start()
    pair.run_workload(kill_step=args.kill_at)
    pair.kill_primary(SeededRng(args.seed).fork("incident-cli"))
    report = pair.promote()
    print(f"primary killed at step {args.kill_at}; warm promote RTO "
          f"{report.rto_ns / 1e6:.3f} ms, RPO {report.rpo_ops} ops")
    records = pair_incident_records(
        pair, window_ns=parse_duration_ns(args.window), k=args.exemplars)
    return records, report


def _cmd_bench(args: argparse.Namespace) -> int:
    # Bench runs always carry blame ledgers: the artifact's gated
    # ckpt_blame_p99_share metric comes from them, and blame adds no
    # simulated-time events, so every other metric is unaffected.
    config = SystemConfig(mode=args.mode, workload=args.workload,
                          threads=args.threads, total_queries=args.queries,
                          distribution=args.distribution,
                          verify_reads=False, trace=args.trace, blame=True)
    clear_blame()
    if args.trace:
        clear_runs()
    started = time.time()
    result = run_config(config)
    elapsed = time.time() - started
    metrics = result.metrics
    summary = metrics.summary()
    rows = [[key, value] for key, value in summary.items()]
    rows.append(["checkpoints", result.checkpoint_count])
    rows.append(["mean_ckpt_ms", result.mean_checkpoint_ns() / 1e6])
    print(format_table(["metric", "value"], rows,
                       title=f"{args.mode} / workload {args.workload} / "
                             f"{args.threads} threads"))
    if result.trace_summary is not None:
        for table in (component_table, phase_table, queue_split_table):
            print()
            print(table(result.trace_summary))
        if args.out:
            count = write_chrome_trace(args.out, collected_runs())
            print(f"\n[trace: {count} events -> {args.out}]")
        clear_runs()
    if not args.no_artifact:
        from repro.analysis.benchfile import (
            bench_artifact,
            runstamp,
            write_bench_artifact,
        )
        from repro.experiments.knee import bench_knee_probe
        from repro.experiments.recovery_matrix import bench_rto_probe
        bench_params = {"mode": args.mode, "workload": args.workload,
                        "threads": args.threads, "queries": args.queries,
                        "distribution": args.distribution}
        # The knee probe is its own compact two-mode sweep (simulated
        # time, deterministic) — the artifact gates the open-loop
        # sustainable-load headline alongside the closed-loop metrics.
        knee_started = time.time()
        knee_ops = bench_knee_probe()
        print(f"\n[knee probe: checkin sustains {knee_ops:,.0f} open-loop "
              f"ops/s ({time.time() - knee_started:.1f}s)]")
        # Likewise the warm-failover probe: a compact seeded
        # kill-the-primary campaign whose mean promote RTO gates the
        # replication subsystem's first-read latency after failover.
        rto_started = time.time()
        rto_ns = bench_rto_probe()
        print(f"[rto probe: warm replica promote serves in "
              f"{rto_ns / 1e6:.3f} ms ({time.time() - rto_started:.1f}s)]")
        stamp = runstamp()
        path = args.artifact or f"BENCH_{stamp}.json"
        write_bench_artifact(
            path, bench_artifact(result, bench_params, stamp=stamp,
                                 extra_metrics={
                                     "knee_sustainable_ops": knee_ops,
                                     "rto_warm_replica_ns": rto_ns}))
        print(f"[bench artifact -> {path}]")
    clear_blame()
    print(f"\n[wall: {elapsed:.1f}s, simulated: "
          f"{metrics.duration_ns / 1e9:.3f}s, "
          f"{result.ops_per_sec:,.0f} ops/s]")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """cProfile one run and print the hottest functions.

    The development loop behind the hot-path work: profile, attack the
    top entries, re-profile.  The run itself is identical to ``repro
    bench --no-artifact`` (same config class, ``verify_reads`` off).
    """
    import cProfile
    import pstats

    kwargs = dict(mode=args.mode, workload=args.workload,
                  threads=args.threads, total_queries=args.queries,
                  distribution=args.distribution, verify_reads=False)
    if args.tenants is not None:
        kwargs["tenants"] = tuple(TenantSpec()
                                  for _ in range(args.tenants))
        kwargs["journal_area_bytes"] = 8 * MIB
    config = SystemConfig(**kwargs)
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_config(config)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)
    if args.out:
        from repro.common.jsonl import ensure_parent_dir
        stats.dump_stats(ensure_parent_dir(args.out))
        print(f"[profile data -> {args.out}]")
    print(f"[{result.metrics.operations} operations, "
          f"wall {result.wall_seconds:.2f}s, "
          f"{result.ops_per_sec:,.0f} ops/s]")
    return 0


def _cmd_table1(_args: argparse.Namespace) -> int:
    from repro.experiments.table1 import render_table1
    print(render_table1())
    return 0


FAULT_SWEEP_MODES = ("baseline", "isc_c", "checkin")
"""Configurations the crash sweep exercises: the conventional system and
the two remapping-FTL systems (ISC-A/B share the baseline's device FTL)."""


def _cmd_media_sweep(args: argparse.Namespace) -> int:
    from repro.fault.media import media_sweep, spare_exhaustion_run
    modes = FAULT_SWEEP_MODES if args.mode == "all" else (args.mode,)
    rates = tuple(float(rate) for rate in args.media_rates.split(","))
    rows = []
    failed = 0
    started = time.time()
    for mode in modes:
        sweep = media_sweep(mode=mode, rates=rates, seed=args.seed,
                            ops=args.ops, tenants=args.tenants)
        failures = sweep.failures()
        failed += len(failures)
        for point in sweep.results:
            rows.append([mode, point.rate, point.acked_keys,
                         point.program_fails, point.erase_fails,
                         point.uecc_events, point.relocations,
                         point.bad_blocks,
                         "yes" if point.degraded else "no",
                         "FAIL" if not point.ok else "ok"])
        for point in failures:
            problems = (point.client_errors + point.invariant_violations
                        + point.checkpoint_violations)
            if point.durability_error:
                problems.append(point.durability_error)
            print(f"FAIL {mode} rate {point.rate}: {problems[0]}",
                  file=sys.stderr)
    exhaustion = spare_exhaustion_run(seed=args.seed)
    summary = exhaustion.metrics.summary()
    degraded_ok = summary["degraded"] == 1.0 and summary["bad_blocks"] > 0
    if not degraded_ok:
        failed += 1
        print("FAIL spare-exhaustion run did not end in degraded mode",
              file=sys.stderr)
    elapsed = time.time() - started
    print(format_table(
        ["mode", "rate", "acked", "pgm_fail", "ers_fail", "uecc",
         "reloc", "bad_blk", "degraded", "verdict"],
        rows, title=f"media-error sweep (seed {args.seed})"))
    print(f"\nspare-exhaustion: degraded={summary['degraded']:.0f} "
          f"bad_blocks={summary['bad_blocks']:.0f} "
          f"({exhaustion.metrics.degraded_reason or 'healthy'})")
    print(f"[{len(rows)} sweep points: {elapsed:.1f}s]")
    return 1 if failed else 0


def _cmd_fault_sweep(args: argparse.Namespace) -> int:
    from repro.fault.harness import fault_sweep
    if args.media_errors:
        return _cmd_media_sweep(args)
    modes = FAULT_SWEEP_MODES if args.mode == "all" else (args.mode,)
    rows = []
    failed = 0
    started = time.time()
    for mode in modes:
        sweep = fault_sweep(mode=mode, crash_points=args.crash_points,
                            seed=args.seed, ops=args.ops,
                            tenants=args.tenants)
        failures = sweep.failures()
        failed += len(failures)
        rows.append([mode, len(sweep.results), sweep.total_steps,
                     len(failures), sweep.mean_recovery_wall_ns() / 1e6,
                     sweep.max_recovery_wall_ns() / 1e6, sweep.digest()])
        for result in failures:
            problems = (result.invariant_violations
                        + result.checkpoint_violations)
            if result.durability_error:
                problems.append(result.durability_error)
            if result.mapping_mismatches:
                problems.append(
                    f"{result.mapping_mismatches} SPOR mapping mismatches")
            print(f"FAIL {mode} crash point {result.index} "
                  f"(step {result.crash_step}): {problems[0]}",
                  file=sys.stderr)
    elapsed = time.time() - started
    print(format_table(
        ["mode", "crash_points", "workload_steps", "failures",
         "rec_mean_ms", "rec_max_ms", "digest"],
        rows, title=f"fault sweep (seed {args.seed})"))
    print(f"\n[{sum(r[1] for r in rows)} crash points: {elapsed:.1f}s]")
    return 1 if failed else 0


def _replicate_link(args: argparse.Namespace):
    from repro.replication.ship import LinkSpec
    return LinkSpec(latency_ns=int(args.latency_us * 1_000),
                    gbit_per_s=args.gbps, batch_ops=args.batch_ops,
                    queue_depth=args.queue_depth)


def _cmd_replicate(args: argparse.Namespace) -> int:
    from repro.common.rng import SeededRng
    from repro.replication.campaign import (
        campaign_config,
        cold_restore,
        kill_primary_campaign,
    )
    from repro.replication.replica import ReplicatedPair

    link = _replicate_link(args)
    strategies = ("warm", "snapshot") if args.strategy == "both" \
        else (args.strategy,)
    started = time.time()

    if args.campaign is not None:
        campaign = kill_primary_campaign(
            mode=args.mode, crash_points=args.campaign, seed=args.seed,
            ops=args.ops, num_keys=args.keys, link=link,
            strategies=strategies)
        rows = []
        for strategy in strategies:
            rows.append([strategy, len(campaign.points),
                         campaign.mean_rto_ns(strategy) / 1e6,
                         campaign.mean_rpo_ops(strategy)])
        print(format_table(
            ["strategy", "crash_points", "rto_mean_ms", "rpo_mean_ops"],
            rows, title=f"kill-the-primary campaign (mode {args.mode}, "
                        f"seed {args.seed}, digest {campaign.digest()})"))
        if len(strategies) == 2:
            print(f"\nwarm promote vs snapshot+replay RTO: "
                  f"{campaign.rto_speedup():.2f}x faster")
        print(f"[{len(campaign.points)} kills, zero acked-write loss: "
              f"{time.time() - started:.1f}s]")
        return 0 if campaign.ok else 1

    # Single kill-and-promote run.
    config = campaign_config(mode=args.mode, seed=args.seed, ops=args.ops,
                             num_keys=args.keys)
    kill_step = args.kill_at
    if kill_step is None:
        reference = ReplicatedPair(config, link=link)
        reference.start()
        total_steps, _ = reference.run_workload()
        reference.stop()
        kill_step = max(1, int(total_steps * args.kill_frac))
    pair = ReplicatedPair(config, link=link, semi_sync=args.semi_sync)
    pair.start()
    pair.run_workload(kill_step=kill_step)
    pair.kill_primary(SeededRng(args.seed).fork("replicate-cli"))
    print(f"primary killed at step {kill_step} "
          f"(t={pair.primary.sim.now / 1e6:.3f} ms): "
          f"{len(pair.log)} committed ops, "
          f"shipped {pair.shipper.shipped_offset}, "
          f"acked {pair.shipper.acked_offset}")
    ok = True
    if "warm" in strategies:
        warm = pair.promote()
        ok &= warm.contract_ok
        print(f"  warm promote    : RTO {warm.rto_ns / 1e6:8.3f} ms, "
              f"RPO {warm.rpo_ops} ops, applied {warm.applied_offset}, "
              f"{warm.verified_reads} reads verified, "
              f"contract {'OK' if warm.contract_ok else 'VIOLATED'}")
    if "snapshot" in strategies:
        cold = cold_restore(pair)
        ok &= cold.contract_ok
        print(f"  snapshot+replay : RTO {cold.rto_ns / 1e6:8.3f} ms, "
              f"RPO {cold.rpo_ops} ops, installed {cold.installed} + "
              f"replayed {cold.replayed_ops}, "
              f"contract {'OK' if cold.contract_ok else 'VIOLATED'}")
    print(f"[wall: {time.time() - started:.1f}s]")
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI: list / run / bench / table1 subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Check-In (ISCA 2020) reproduction: experiments and runs")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list reproducible figures/tables") \
        .set_defaults(handler=_cmd_list)

    experiment_names = sorted(EXPERIMENTS) + sorted(EXPERIMENT_ALIASES)

    run_parser = commands.add_parser(
        "run", help="run one experiment, or N tenants with --tenants")
    run_parser.add_argument("experiment", nargs="?", default=None,
                            choices=experiment_names)
    run_parser.add_argument("--tenants", type=int, default=None,
                            metavar="N",
                            help="instead of an experiment: run N identical "
                                 "tenants sharing one namespaced device")
    run_parser.add_argument("--mode", default="checkin",
                            choices=("baseline", "isc_a", "isc_b",
                                     "isc_c", "checkin"),
                            help="configuration for --tenants runs")
    run_parser.add_argument("--scale", choices=("quick", "full"),
                            default="quick")
    run_parser.add_argument("--trace", action="store_true",
                            help="trace every system in the experiment and "
                                 "print the checkpoint phase breakdown")
    run_parser.add_argument("--out", metavar="PATH", default=None,
                            help="with --trace: write the Chrome "
                                 "trace_event JSON here (Perfetto-loadable)")
    run_parser.add_argument("--telemetry", action="store_true",
                            help="sample every system in the experiment "
                                 "(time series, SLO watchdogs, health log)")
    run_parser.add_argument("--telemetry-interval", metavar="DUR",
                            default="1ms",
                            help="sampling interval, e.g. 10ms / 500us "
                                 "(default: 1ms of simulated time)")
    run_parser.add_argument("--telemetry-out", metavar="PATH", default=None,
                            help="with --telemetry: write the JSONL "
                                 "dump(s) here")
    run_parser.add_argument("--arrivals", type=float, default=None,
                            metavar="RATE",
                            help="instead of an experiment: one open-loop "
                                 "run at RATE offered ops/s behind the "
                                 "front-door admission controller "
                                 "(combine with --tenants for fan-in)")
    run_parser.add_argument("--arrival-process", default="poisson",
                            choices=("poisson", "bursts"),
                            help="open-loop arrival process "
                                 "(default: poisson)")
    run_parser.add_argument("--arrival-schedule", default="constant",
                            choices=("constant", "diurnal", "flash-crowd"),
                            help="open-loop rate schedule "
                                 "(default: constant)")
    run_parser.add_argument("--admission-policy", default="queue",
                            choices=("queue", "shed", "degrade"),
                            help="front-door policy for --arrivals runs")
    run_parser.add_argument("--max-inflight", type=int, default=64,
                            help="admission in-flight slot limit")
    run_parser.add_argument("--max-waiting", type=int, default=256,
                            help="admission waiting-room depth")
    run_parser.set_defaults(handler=_cmd_run)

    trace_parser = commands.add_parser(
        "trace", help="run one experiment traced and export its timeline")
    trace_parser.add_argument("experiment", nargs="?", default="fig8a",
                              choices=experiment_names)
    trace_parser.add_argument("--scale", choices=("quick", "full"),
                              default="quick")
    trace_parser.add_argument("--out", metavar="PATH", default="trace.json")
    trace_parser.add_argument("--validate", metavar="PATH", default=None,
                              help="validate an existing trace file instead "
                                   "of running anything")
    trace_parser.set_defaults(handler=_cmd_trace)

    bench_parser = commands.add_parser(
        "bench", help="run one configuration and print its metrics")
    bench_parser.add_argument("--mode", default="checkin",
                              choices=("baseline", "isc_a", "isc_b",
                                       "isc_c", "checkin"))
    bench_parser.add_argument("--workload", default="A",
                              choices=("A", "B", "C", "F", "WO"))
    bench_parser.add_argument("--threads", type=int, default=32)
    bench_parser.add_argument("--queries", type=int, default=20_000)
    bench_parser.add_argument("--distribution", default="zipfian",
                              choices=("uniform", "zipfian",
                                       "scrambled_zipfian"))
    bench_parser.add_argument("--trace", action="store_true",
                              help="trace the run and print per-component "
                                   "stage/phase/queue tables")
    bench_parser.add_argument("--out", metavar="PATH", default=None,
                              help="with --trace: write the Chrome "
                                   "trace_event JSON here")
    bench_parser.add_argument("--artifact", metavar="PATH", default=None,
                              help="write the schema-versioned bench "
                                   "artifact here (default: "
                                   "BENCH_<runstamp>.json in the CWD)")
    bench_parser.add_argument("--no-artifact", action="store_true",
                              help="skip writing the bench artifact")
    bench_parser.set_defaults(handler=_cmd_bench)

    profile_parser = commands.add_parser(
        "profile",
        help="cProfile one run and print the hottest functions")
    profile_parser.add_argument("--mode", default="checkin",
                                choices=("baseline", "isc_a", "isc_b",
                                         "isc_c", "checkin"))
    profile_parser.add_argument("--workload", default="A",
                                choices=("A", "B", "C", "F", "WO"))
    profile_parser.add_argument("--threads", type=int, default=8)
    profile_parser.add_argument("--queries", type=int, default=4_000)
    profile_parser.add_argument("--tenants", type=int, default=None,
                                metavar="N",
                                help="profile a multi-tenant (namespaced) "
                                     "run instead of the classic one")
    profile_parser.add_argument("--distribution", default="zipfian",
                                choices=("uniform", "zipfian",
                                         "scrambled_zipfian"))
    profile_parser.add_argument("--sort", default="cumulative",
                                choices=("cumulative", "tottime", "calls"),
                                help="pstats sort key (default: cumulative)")
    profile_parser.add_argument("--top", type=int, default=25,
                                help="how many entries to print (default 25)")
    profile_parser.add_argument("--out", metavar="PATH", default=None,
                                help="also dump raw pstats data here "
                                     "(inspect with python -m pstats)")
    profile_parser.set_defaults(handler=_cmd_profile)

    blame_parser = commands.add_parser(
        "blame",
        help="attribute per-request latency to pipeline stages and "
             "print a root-cause report")
    blame_parser.add_argument("--mode", default="baseline",
                              choices=("baseline", "isc_a", "isc_b",
                                       "isc_c", "checkin"))
    blame_parser.add_argument("--workload", default="WO",
                              choices=("A", "B", "C", "F", "WO"))
    blame_parser.add_argument("--threads", type=int, default=8)
    blame_parser.add_argument("--queries", type=int, default=4_000)
    blame_parser.add_argument("--tenants", type=int, default=None,
                              metavar="N",
                              help="blame a multi-tenant (namespaced) run "
                                   "instead of the classic one")
    blame_parser.add_argument("--ckpt-interval", metavar="DUR",
                              default=None,
                              help="checkpoint interval in simulated "
                                   "time, e.g. 10ms (default: config)")
    blame_parser.add_argument("--journal-mib", type=int, default=None,
                              metavar="N",
                              help="journal area size in MiB; smaller "
                                   "areas checkpoint more often "
                                   "(default: config)")
    blame_parser.add_argument("--gate", action="store_true",
                              help="freeze queries during checkpoints "
                                   "(the Figure-10 gated configuration; "
                                   "makes checkpoint stalls visible in "
                                   "the tail)")
    blame_parser.add_argument("--percentile", type=float, default=99.0,
                              metavar="P",
                              help="tail percentile for the blame "
                                   "profile (default 99)")
    blame_parser.add_argument("--out", metavar="PATH", default=None,
                              help="write the repro-blame/v1 JSONL dump "
                                   "here (re-validated after writing)")
    blame_parser.add_argument("--assert-ckpt-tail", action="store_true",
                              help="exit nonzero unless the dominant "
                                   "tail stage is checkpoint-family "
                                   "(CI smoke assertion)")
    blame_parser.add_argument("--validate", dest="validate_file",
                              metavar="PATH", default=None,
                              help="validate an existing blame JSONL "
                                   "instead of running anything")
    blame_parser.set_defaults(handler=_cmd_blame)

    incident_parser = commands.add_parser(
        "incident",
        help="trip a seeded incident, dump the repro-incident/v1 "
             "bundle and reconstruct the cross-plane causal timeline")
    incident_parser.add_argument("--mode", default="baseline",
                                 choices=("baseline", "isc_a", "isc_b",
                                          "isc_c", "checkin"))
    incident_parser.add_argument("--workload", default="WO",
                                 choices=("A", "B", "C", "F", "WO"))
    incident_parser.add_argument("--threads", type=int, default=8)
    incident_parser.add_argument("--queries", type=int, default=1_500)
    incident_parser.add_argument("--seed", type=int, default=7)
    incident_parser.add_argument("--gate", action="store_true",
                                 help="freeze queries during checkpoints "
                                      "(makes ckpt_freeze_stall the "
                                      "dominant blame stage)")
    incident_parser.add_argument("--burst", action="store_true",
                                 help="drive the run with an open-loop "
                                      "flash-crowd burst storm behind a "
                                      "bounded front door")
    incident_parser.add_argument("--arrival-rate", type=float,
                                 default=120_000.0, metavar="OPS",
                                 help="burst-storm base arrival rate "
                                      "(ops per simulated second)")
    incident_parser.add_argument("--max-waiting", type=int, default=64,
                                 help="front-door waiting-room depth "
                                      "for the burst storm")
    incident_parser.add_argument("--ckpt-interval", metavar="DUR",
                                 default="10ms",
                                 help="checkpoint interval in simulated "
                                      "time (default 10ms)")
    incident_parser.add_argument("--journal-mib", type=int, default=2,
                                 metavar="N",
                                 help="journal area size in MiB "
                                      "(default 2: checkpoints often)")
    incident_parser.add_argument("--interval", metavar="DUR",
                                 default="1ms",
                                 help="telemetry sampling interval")
    incident_parser.add_argument("--window", metavar="DUR", default="10ms",
                                 help="telemetry bracket around the "
                                      "trigger in the bundle")
    incident_parser.add_argument("--exemplars", type=int, default=8,
                                 metavar="K",
                                 help="worst-K blame exemplars to embed")
    incident_parser.add_argument("--escalate", metavar="NAMES",
                                 default="admission_overload,"
                                         "journal_saturation,"
                                         "checkpoint_overdue",
                                 help="comma-separated watchdogs to "
                                      "escalate to error severity (an "
                                      "error-edge breach trips the "
                                      "incident dump)")
    incident_parser.add_argument("--kill-at", type=int, default=None,
                                 metavar="STEP",
                                 help="cross-node incident instead: "
                                      "replicated pair, primary killed "
                                      "after STEP merged-time steps, "
                                      "then promoted")
    incident_parser.add_argument("--out", metavar="PATH", default=None,
                                 help="write the repro-incident/v1 JSONL "
                                      "bundle here (re-validated after "
                                      "writing)")
    incident_parser.add_argument("--trace-out", metavar="PATH",
                                 default=None,
                                 help="also dump the Chrome trace and "
                                      "check every flight span id "
                                      "resolves in it")
    incident_parser.add_argument("--assert-trigger", action="store_true",
                                 help="exit nonzero unless an incident "
                                      "trigger fired (CI smoke)")
    incident_parser.add_argument("--assert-stage", metavar="STAGE",
                                 default=None,
                                 help="exit nonzero unless the dominant "
                                      "blame stage matches (e.g. "
                                      "ckpt_freeze_stall)")
    incident_parser.add_argument("--validate", dest="validate_file",
                                 metavar="PATH", default=None,
                                 help="validate an existing incident "
                                      "bundle instead of running")
    incident_parser.add_argument("--show", dest="show_file",
                                 metavar="PATH", default=None,
                                 help="reconstruct the timeline from an "
                                      "existing bundle instead of "
                                      "running")
    incident_parser.set_defaults(handler=_cmd_incident)

    telemetry_parser = commands.add_parser(
        "telemetry",
        help="run one sampled configuration and export its time series")
    telemetry_parser.add_argument("--mode", default="checkin",
                                  choices=("baseline", "isc_a", "isc_b",
                                           "isc_c", "checkin"))
    telemetry_parser.add_argument("--workload", default="A",
                                  choices=("A", "B", "C", "F", "WO"))
    telemetry_parser.add_argument("--threads", type=int, default=8)
    telemetry_parser.add_argument("--queries", type=int, default=4_000)
    telemetry_parser.add_argument("--tenants", type=int, default=None,
                                  metavar="N",
                                  help="sample a multi-tenant (namespaced) "
                                       "run instead of the classic one")
    telemetry_parser.add_argument("--interval", metavar="DUR",
                                  default="1ms",
                                  help="sampling interval in simulated "
                                       "time, e.g. 10ms / 500us / 250000")
    telemetry_parser.add_argument("--out", metavar="PATH", default=None,
                                  help="write the JSONL dump here (the "
                                       "dump is re-validated after "
                                       "writing)")
    telemetry_parser.add_argument("--summary", action="store_true",
                                  help="print the per-series overview, "
                                       "watchdog events and health report")
    telemetry_parser.add_argument("--validate", dest="validate_file",
                                  metavar="PATH", default=None,
                                  help="validate an existing telemetry "
                                       "JSONL instead of running anything")
    telemetry_parser.set_defaults(handler=_cmd_telemetry)

    commands.add_parser("table1", help="print the Table-I configuration") \
        .set_defaults(handler=_cmd_table1)

    fault_parser = commands.add_parser(
        "fault-sweep",
        help="crash-consistency sweep: power-cut at N seeded instants")
    fault_parser.add_argument("--mode", default="all",
                              choices=("all",) + FAULT_SWEEP_MODES)
    fault_parser.add_argument("--crash-points", type=int, default=20)
    fault_parser.add_argument("--seed", type=int, default=7)
    fault_parser.add_argument("--ops", type=int, default=120)
    fault_parser.add_argument("--tenants", type=int, default=1,
                              help="crash a multi-tenant (namespaced) "
                                   "system instead of the classic one")
    fault_parser.add_argument("--media-errors", action="store_true",
                              help="media-error campaign instead of crash "
                                   "points: seeded NAND failures under "
                                   "load, plus a spare-exhaustion run")
    fault_parser.add_argument("--media-rates", default="0.001,0.01,0.05",
                              metavar="R1,R2,...",
                              help="program-fail base rates for the "
                                   "media-error grid")
    fault_parser.set_defaults(handler=_cmd_fault_sweep)

    repl_parser = commands.add_parser(
        "replicate",
        help="kill-the-primary drill: journal shipping, promote-on-"
             "failure, snapshot+replay — RTO/RPO per strategy")
    repl_parser.add_argument("--mode", default="checkin",
                             choices=("baseline", "isc_a", "isc_b",
                                      "isc_c", "checkin"))
    repl_parser.add_argument("--ops", type=int, default=160)
    repl_parser.add_argument("--keys", type=int, default=64)
    repl_parser.add_argument("--seed", type=int, default=7)
    repl_parser.add_argument("--kill-at", type=int, default=None,
                             metavar="STEP",
                             help="kill the primary after this many "
                                  "merged-time steps (default: "
                                  "--kill-frac of the full run)")
    repl_parser.add_argument("--kill-frac", type=float, default=0.6,
                             help="kill point as a fraction of the "
                                  "reference run's steps")
    repl_parser.add_argument("--latency-us", type=float, default=50.0,
                             help="one-way link latency")
    repl_parser.add_argument("--gbps", type=float, default=10.0,
                             help="link bandwidth (Gbit/s)")
    repl_parser.add_argument("--batch-ops", type=int, default=64)
    repl_parser.add_argument("--queue-depth", type=int, default=4,
                             help="in-flight ship batches before the "
                                  "shipper stalls")
    repl_parser.add_argument("--campaign", type=int, default=None,
                             metavar="N",
                             help="instead of one kill: N seeded crash "
                                  "points, every strategy, mean RTO/RPO")
    repl_parser.add_argument("--strategy", default="both",
                             choices=("warm", "snapshot", "both"))
    repl_parser.add_argument("--semi-sync", action="store_true",
                             help="writers wait for the ship ack "
                                  "(single-kill runs only)")
    repl_parser.set_defaults(handler=_cmd_replicate)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Output piped into e.g. `head`; exiting quietly is the Unix way.
        import os
        try:
            os.close(sys.stdout.fileno())
        except OSError:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
