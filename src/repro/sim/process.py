"""Generator-based simulation processes.

A *process* is a Python generator driven by the event loop.  Inside the
generator you may::

    yield 500            # sleep 500 ns
    value = yield event  # wait for an Event; receives event.value
    result = yield proc  # join another Process; receives its return value

Processes are themselves :class:`~repro.sim.core.Event` subclasses that
resolve when the generator returns (value = the ``return`` value) or raises
(failure).  Failures propagate to joiners; a failure nobody joins is
re-raised out of :meth:`Simulator.run` unless the process is ``defused``.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Union

from repro.common.errors import PowerLossError, SimulationError
from repro.sim.core import Event, Simulator

ProcessGenerator = Generator[Union[int, Event], Any, Any]


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator coroutine; also an Event for joining."""

    __slots__ = ("_generator", "name", "defused", "_waiting_on", "_sleep_timer")

    def __init__(self, sim: Simulator, generator: ProcessGenerator,
                 name: str = "process") -> None:
        super().__init__(sim)
        self._generator = generator
        self.name = name
        self.defused = False
        self._waiting_on: Optional[Event] = None
        self._sleep_timer = None
        sim._live_processes[id(self)] = self
        sim.schedule(0, self._resume, None, None)

    def _resolve(self, value: Any, exception: Optional[BaseException]) -> None:
        super()._resolve(value, exception)
        self.sim._live_processes.pop(id(self), None)

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        A process blocked on an event stops waiting for it; a sleeping
        process wakes early.  Interrupting a finished process is an error.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        self._detach_wait()
        self.sim.schedule(0, self._resume_with_exception, Interrupt(cause))

    def kill(self) -> None:
        """Tear the process down without resuming it (power-cut unwinding).

        The generator is closed so ``finally`` blocks run, then the
        process resolves with :class:`PowerLossError`.  Only meaningful
        during :meth:`Simulator.power_cut`, when scheduling is suppressed
        — nothing the teardown triggers can execute afterwards.
        """
        if self.triggered:
            return
        self._detach_wait()
        self.defused = True
        try:
            self._generator.close()
        except BaseException:  # noqa: BLE001 - teardown must not propagate
            pass
        if not self.triggered:
            self.fail(PowerLossError(f"process {self.name} lost power"))
            self.sim._consume_failure(self)

    def _detach_wait(self) -> None:
        """Stop waiting: cancel a pending sleep, deregister from an event.

        Deregistering matters beyond the callback-list leak: a stale
        ``_on_event`` left behind makes :meth:`Event._resolve` believe a
        waiter exists, so if the abandoned event later *fails* the
        exception is considered consumed and never reaches
        ``strict_failures``.  (An event that already resolved has handed
        its callbacks to the scheduler; the stale-wake-up guard in
        :meth:`_on_event` covers that window.)
        """
        if self._sleep_timer is not None:
            self._sleep_timer.cancel()
            self._sleep_timer = None
        waiting = self._waiting_on
        if waiting is not None:
            self._waiting_on = None
            if not waiting.triggered:
                try:
                    waiting._callbacks.remove(self._on_event)
                except ValueError:
                    pass

    # -- driving the generator ------------------------------------------
    def _resume(self, send_value: Any, _token: Any) -> None:
        if self.triggered:
            return
        try:
            target = self._generator.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - deliberate fail-path
            self._handle_failure(exc)
            return
        self._wait_for(target)

    def _resume_with_exception(self, exc: BaseException) -> None:
        if self.triggered:
            return
        try:
            target = self._generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as raised:  # noqa: BLE001
            self._handle_failure(raised)
            return
        self._wait_for(target)

    def _wait_for(self, target: Union[int, Event]) -> None:
        if isinstance(target, int):
            if target < 0:
                self._handle_failure(
                    SimulationError(f"process {self.name} slept {target} ns"))
                return
            self._sleep_timer = self.sim.schedule(target, self._on_sleep_done)
            return
        if isinstance(target, Event):
            self._waiting_on = target
            target.add_callback(self._on_event)
            return
        self._handle_failure(SimulationError(
            f"process {self.name} yielded {type(target).__name__}; "
            "expected int delay or Event"))

    def _on_sleep_done(self) -> None:
        self._sleep_timer = None
        self._resume(None, None)

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wake-up after an interrupt
        self._waiting_on = None
        if event.exception is not None:
            self._resume_with_exception(event.exception)
        else:
            self._resume(event.value, None)

    def _handle_failure(self, exc: BaseException) -> None:
        self.defused = self.defused or bool(self._callbacks)
        try:
            self.fail(exc)
        except SimulationError:
            raise exc
        # The failure is surfaced here, by re-raise or deliberate defusal;
        # it must not also count as an unconsumed event failure.
        self.sim._consume_failure(self)
        if not self.defused:
            raise exc


def spawn(sim: Simulator, generator: ProcessGenerator, name: str = "process") -> Process:
    """Start a new process running ``generator``."""
    return Process(sim, generator, name=name)


def sleep_event(sim: Simulator, delay: int) -> Event:
    """An event that succeeds after ``delay`` ns (composable with any_of)."""
    event = sim.event()
    sim.schedule(delay, event.succeed)
    return event
