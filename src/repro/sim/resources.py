"""Shared-resource primitives for processes: Resource, Store, Lock.

These model contention points in the system: NVMe submission-queue slots,
flash channels and dies, the storage engine's worker pool, and so on.
All grant orderings are FIFO, which keeps runs deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.common.errors import SimulationError
from repro.sim.core import Event, Simulator


class Resource:
    """A counting resource with FIFO grant order.

    Usage inside a process::

        yield resource.acquire()
        try:
            ...critical section...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"{name}: capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of acquirers still waiting."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Request one slot; the returned event succeeds when granted."""
        event = self.sim.event()
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one slot, waking the longest-waiting acquirer."""
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without acquire")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed()
        else:
            self._in_use -= 1

    def try_acquire(self) -> bool:
        """Grab a slot without waiting; True on success."""
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return True
        return False


class Lock(Resource):
    """A mutex: a Resource of capacity one."""

    def __init__(self, sim: Simulator, name: str = "lock") -> None:
        super().__init__(sim, 1, name=name)

    @property
    def locked(self) -> bool:
        """True while held."""
        return self._in_use > 0


class Store:
    """An unbounded-or-bounded FIFO queue between processes."""

    def __init__(self, sim: Simulator, capacity: Optional[int] = None,
                 name: str = "store") -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"{name}: capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # events carrying .value = item

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Enqueue ``item``; succeeds when space is available."""
        event = self.sim.event()
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            event.value = item
            self._putters.append(event)
        return event

    def get(self) -> Event:
        """Dequeue the oldest item; succeeds (with the item) when available."""
        event = self.sim.event()
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            event.succeed(item)
        elif self._putters:
            putter = self._putters.popleft()
            item = putter.value
            putter.value = None
            putter.succeed()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def _admit_putter(self) -> None:
        if self._putters and (
                self.capacity is None or len(self._items) < self.capacity):
            putter = self._putters.popleft()
            self._items.append(putter.value)
            putter.value = None
            putter.succeed()
