"""Measurement primitives: counters, time-weighted gauges, latency samples.

These are deliberately simulation-aware (they read ``sim.now``) so
throughput and utilisation can be derived without extra bookkeeping at the
call sites.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.core import Simulator


class Counter:
    """A monotonically increasing named count (optionally with byte volume)."""

    __slots__ = ("name", "count", "total_bytes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_bytes = 0

    def add(self, n: int = 1, num_bytes: int = 0) -> None:
        """Record ``n`` occurrences carrying ``num_bytes`` bytes in total."""
        self.count += n
        self.total_bytes += num_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}: {self.count}, {self.total_bytes} B)"


class TimeWeightedGauge:
    """Tracks a level over time and reports its time-weighted average."""

    __slots__ = ("_sim", "_level", "_last_change", "_weighted_sum", "_start")

    def __init__(self, sim: Simulator, initial: float = 0.0) -> None:
        self._sim = sim
        self._level = initial
        self._last_change = sim.now
        self._weighted_sum = 0.0
        self._start = sim.now

    @property
    def level(self) -> float:
        """Current level."""
        return self._level

    def set(self, level: float) -> None:
        """Move the gauge to a new level at the current time."""
        now = self._sim.now
        self._weighted_sum += self._level * (now - self._last_change)
        self._level = level
        self._last_change = now

    def adjust(self, delta: float) -> None:
        """Add ``delta`` to the current level."""
        self.set(self._level + delta)

    def time_average(self) -> float:
        """Time-weighted average level over the current window.

        The window starts at construction (or the last :meth:`reset`).
        """
        now = self._sim.now
        elapsed = now - self._start
        if elapsed <= 0:
            return self._level
        total = self._weighted_sum + self._level * (now - self._last_change)
        return total / elapsed

    def reset(self) -> None:
        """Start a new averaging window now (the level carries over)."""
        now = self._sim.now
        self._weighted_sum = 0.0
        self._last_change = now
        self._start = now

    def snapshot_window(self) -> Tuple[float, int]:
        """Close the current window: ``(time average, window ns)``.

        Resets afterwards, so calling this at every checkpoint boundary
        yields per-checkpoint-interval utilisation figures.
        """
        average = self.time_average()
        elapsed = self._sim.now - self._start
        self.reset()
        return average, elapsed


class LatencySample:
    """Collects latency observations and computes exact percentiles.

    Stores every sample (runs here are small enough) in a preallocated
    ``array('q')`` that doubles when full — one machine word per
    observation and no per-``record`` allocation, versus a growing list
    of boxed ints.  Percentile queries use linear interpolation between
    closest ranks, the same convention as ``numpy.percentile``.
    """

    __slots__ = ("name", "_buffer", "_count", "_sorted")

    _INITIAL_CAPACITY = 1024

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._buffer = array("q", bytes(8 * self._INITIAL_CAPACITY))
        self._count = 0
        self._sorted: Optional[List[int]] = None

    def record(self, latency_ns: int) -> None:
        """Add one observation (ns)."""
        count = self._count
        buffer = self._buffer
        if count == len(buffer):
            buffer.frombytes(bytes(8 * count))  # double the capacity
        buffer[count] = latency_ns
        self._count = count + 1
        self._sorted = None

    def extend(self, samples: Sequence[int]) -> None:
        """Add many observations."""
        for sample in samples:
            self.record(sample)

    def __len__(self) -> int:
        return self._count

    @property
    def samples(self) -> Sequence[int]:
        """All recorded samples, insertion order."""
        return self._buffer[:self._count]

    def mean(self) -> float:
        """Arithmetic mean; 0.0 when empty."""
        if not self._count:
            return 0.0
        return sum(self.samples) / self._count

    def min(self) -> int:
        """Smallest sample; 0 when empty."""
        return min(self.samples) if self._count else 0

    def max(self) -> int:
        """Largest sample; 0 when empty."""
        return max(self.samples) if self._count else 0

    @staticmethod
    def _interpolate(data: List[int], pct: float) -> float:
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if len(data) == 1:
            return float(data[0])
        rank = (pct / 100.0) * (len(data) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high or data[low] == data[high]:
            return float(data[low])
        frac = rank - low
        return data[low] * (1.0 - frac) + data[high] * frac

    def percentile(self, pct: float) -> float:
        """The ``pct``-th percentile (0..100), linearly interpolated."""
        if not self._count:
            self._interpolate([0], pct)  # still validate the argument
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self.samples)
        return self._interpolate(self._sorted, pct)

    def p(self, *pcts: float) -> Dict[float, float]:
        """Bulk percentile query: one sort for any number of tail points.

        Report generation asks for p50/p99/p999/p9999 back to back; going
        through :meth:`percentile` after a fresh ``record`` would re-sort
        for the first query of each batch.  ``p(50, 99, 99.9)`` sorts at
        most once and returns ``{pct: value}``.
        """
        if not self._count:
            for pct in pcts:
                self._interpolate([0], pct)  # still validate the arguments
            return {pct: 0.0 for pct in pcts}
        if self._sorted is None:
            self._sorted = sorted(self.samples)
        return {pct: self._interpolate(self._sorted, pct) for pct in pcts}

    def p50(self) -> float:
        """Median."""
        return self.percentile(50.0)

    def p99(self) -> float:
        """99th percentile."""
        return self.percentile(99.0)

    def p999(self) -> float:
        """99.9th percentile (the paper's primary tail metric)."""
        return self.percentile(99.9)

    def p9999(self) -> float:
        """99.99th percentile."""
        return self.percentile(99.99)


class StatRegistry:
    """A flat namespace of counters shared by one simulated system."""

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter called ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter(name)
            self._counters[name] = counter
        return counter

    def value(self, name: str) -> int:
        """Current count for ``name`` (0 when never touched)."""
        counter = self._counters.get(name)
        return counter.count if counter else 0

    def bytes(self, name: str) -> int:
        """Current byte volume for ``name`` (0 when never touched)."""
        counter = self._counters.get(name)
        return counter.total_bytes if counter else 0

    def snapshot(self) -> Dict[str, int]:
        """Mapping of every counter name to its count."""
        return {name: c.count for name, c in sorted(self._counters.items())}

    def snapshot_bytes(self) -> Dict[str, int]:
        """Mapping of every counter name to its byte volume."""
        return {name: c.total_bytes for name, c in sorted(self._counters.items())}
