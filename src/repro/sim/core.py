"""Discrete-event simulation core: the event loop and the Event primitive.

The kernel is deliberately small and simpy-like.  A :class:`Simulator` owns
an integer-nanosecond clock and a binary heap of scheduled callbacks.
Generator-based processes (see :mod:`repro.sim.process`) are built on top of
:class:`Event`.

Determinism: ties in time are broken by a monotonically increasing sequence
number, so two runs with the same seeds produce identical event orderings.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.trace.tracer import NULL_TRACER


class Simulator:
    """The event loop.

    Example::

        sim = Simulator()
        sim.schedule(10, lambda: print(sim.now))
        sim.run()

    ``strict_failures`` (default on) makes :meth:`run` raise when a failed
    event drained out of the loop without any waiter ever observing the
    exception — otherwise a failed flash op can vanish without trace.
    """

    #: Dead-entry compaction kicks in once at least this many cancelled
    #: timers sit in the heap *and* they outnumber the live ones.
    COMPACT_MIN_DEAD = 64

    def __init__(self, strict_failures: bool = True) -> None:
        self._now = 0
        self._seq = 0
        self._heap: List[Tuple[int, int, "_Timer"]] = []
        self._dead_timers = 0
        self.strict_failures = strict_failures
        self._unconsumed_failures: Dict[int, "Event"] = {}
        self._crashed = False
        self._live_processes: Dict[int, Any] = {}  # id -> Process, in spawn order
        self.tracer: Any = NULL_TRACER
        """Span recorder every component reads; :data:`NULL_TRACER` until a
        real :class:`repro.trace.Tracer` is installed (``--trace``)."""
        self.flightrec: Any = None
        """Black-box flight recorder (:mod:`repro.obs.flightrec`);
        ``None`` unless armed — every hook guards on it, so disabled
        runs allocate nothing."""

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def crashed(self) -> bool:
        """True after :meth:`power_cut`; the loop no longer accepts work."""
        return self._crashed

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> "_Timer":
        """Run ``fn(*args)`` after ``delay`` ns; returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        if self._crashed:
            # Power is gone: nothing scheduled after the cut may ever run.
            timer = _Timer(None, fn, args)
            timer.cancelled = True
            return timer
        timer = _Timer(self, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, timer))
        return timer

    def power_cut(self) -> int:
        """Kill the simulation at the current event boundary (power loss).

        Every pending timer is discarded and every live process is torn
        down without resuming it — generators are closed so their
        ``finally`` blocks run, but anything they try to schedule is
        suppressed.  Returns the number of processes killed.  After the
        cut only forensic (zero-time) inspection of durable state is
        meaningful; :meth:`run`/:meth:`step` find an empty heap.
        """
        if self._crashed:
            return 0
        self._crashed = True
        self._heap.clear()
        self._dead_timers = 0
        victims = list(self._live_processes.values())
        for process in victims:
            process.kill()
        self._live_processes.clear()
        self._unconsumed_failures.clear()
        return len(victims)

    # -- unconsumed-failure tracking ------------------------------------
    def _note_unconsumed_failure(self, event: "Event") -> None:
        if not self._crashed:
            self._unconsumed_failures[id(event)] = event

    def _consume_failure(self, event: "Event") -> None:
        self._unconsumed_failures.pop(id(event), None)

    def unconsumed_failures(self) -> List[BaseException]:
        """Exceptions from failed events that no waiter has observed."""
        return [event.exception for event in self._unconsumed_failures.values()
                if event.exception is not None]

    def _check_unconsumed(self) -> None:
        if not self.strict_failures or self._crashed:
            return
        failures = self.unconsumed_failures()
        if failures:
            raise SimulationError(
                f"{len(failures)} event failure(s) were never consumed by any "
                f"waiter (first: {failures[0]!r})") from failures[0]

    def event(self) -> "Event":
        """Create a fresh untriggered event bound to this simulator."""
        return Event(self)

    def step(self) -> bool:
        """Execute the next pending callback; return False when idle."""
        heap = self._heap
        pop = heapq.heappop
        while heap:
            when, _seq, timer = pop(heap)
            if timer.cancelled:
                self._dead_timers -= 1
                continue
            if when < self._now:
                raise SimulationError("event heap yielded a past timestamp")
            self._now = when
            timer._fn(*timer._args)
            return True
        return False

    def run(self, until: Optional[int] = None) -> None:
        """Run until the heap drains, or until simulated time ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier.
        """
        # The two loops below pop-then-fire with the heap and heappop bound
        # locally and the timer fired inline; peeking ``self._heap[0]``
        # before every pop would touch the heap twice per event.
        heap = self._heap
        pop = heapq.heappop
        if until is None:
            while heap:
                when, _seq, timer = pop(heap)
                if timer.cancelled:
                    self._dead_timers -= 1
                    continue
                self._now = when
                timer._fn(*timer._args)
        else:
            if until < self._now:
                raise SimulationError(f"until={until} is before now={self._now}")
            while heap:
                entry = pop(heap)
                timer = entry[2]
                if timer.cancelled:
                    self._dead_timers -= 1
                    continue
                when = entry[0]
                if when > until:
                    heapq.heappush(heap, entry)
                    break
                self._now = when
                timer._fn(*timer._args)
            self._now = until
        self._check_unconsumed()

    def run_until_triggered(self, event: "Event", name: str = "event") -> None:
        """Drive the loop until ``event`` resolves (the hot join path).

        Raises when the heap drains first — a joined process that can no
        longer make progress is a deadlock, not quiet success.
        """
        heap = self._heap
        pop = heapq.heappop
        while not event._resolved:
            if not heap:
                raise SimulationError(
                    f"event loop drained while waiting for {name}")
            when, _seq, timer = pop(heap)
            if timer.cancelled:
                self._dead_timers -= 1
                continue
            self._now = when
            timer._fn(*timer._args)

    def peek(self) -> Optional[int]:
        """Timestamp of the next live event, or None when idle."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
            self._dead_timers -= 1
        return self._heap[0][0] if self._heap else None

    def _timer_cancelled(self) -> None:
        """Dead-entry accounting; compacts once cancellations dominate.

        Compaction rewrites the heap *in place* (slice assignment) so the
        local bindings held by :meth:`run`/:meth:`step` stay valid, and it
        preserves the (when, seq) keys of the survivors, so the firing
        order is untouched.
        """
        self._dead_timers += 1
        heap = self._heap
        if self._dead_timers >= self.COMPACT_MIN_DEAD and \
                self._dead_timers * 2 >= len(heap):
            heap[:] = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(heap)
            self._dead_timers = 0


class _Timer:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("_sim", "_fn", "_args", "cancelled")

    def __init__(self, sim: Optional[Simulator],
                 fn: Callable[..., None], args: Tuple[Any, ...]) -> None:
        self._sim = sim
        self._fn = fn
        self._args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._timer_cancelled()

    def fire(self) -> None:
        self._fn(*self._args)


class Event:
    """A one-shot occurrence that callbacks (and processes) can wait on.

    An event starts *pending*; a single call to :meth:`succeed` or
    :meth:`fail` resolves it and wakes every waiter.  Waiters registered
    after resolution are woken immediately (same timestamp).
    """

    __slots__ = ("sim", "_callbacks", "_resolved", "value", "exception",
                 "_defused")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._callbacks: List[Callable[["Event"], None]] = []
        self._resolved = False
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event succeeded or failed."""
        return self._resolved

    @property
    def ok(self) -> bool:
        """True when the event resolved successfully."""
        return self._resolved and self.exception is None

    def succeed(self, value: Any = None) -> "Event":
        """Resolve successfully with an optional value."""
        self._resolve(value, None)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Resolve with an exception; waiters will see it re-raised."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._resolve(None, exception)
        return self

    def _resolve(self, value: Any, exception: Optional[BaseException]) -> None:
        if self._resolved:
            raise SimulationError("event already triggered")
        self._resolved = True
        self.value = value
        self.exception = exception
        callbacks, self._callbacks = self._callbacks, []
        if exception is not None and not callbacks and not self._defused:
            # Nobody is waiting: remember the failure so it cannot vanish
            # silently (surfaced at run() exit under strict_failures).
            self.sim._note_unconsumed_failure(self)
        for callback in callbacks:
            self.sim.schedule(0, callback, self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Invoke ``callback(event)`` when resolved (immediately if already)."""
        if self._resolved:
            if self.exception is not None:
                self.sim._consume_failure(self)
            self.sim.schedule(0, callback, self)
        else:
            self._callbacks.append(callback)

    def defuse(self) -> "Event":
        """Declare this event's failure handled (strict-mode opt-out).

        Works before or after resolution: a defused event never counts as
        an unconsumed failure.
        """
        self._defused = True
        self.sim._consume_failure(self)
        return self


def _absorb_late_failure(done: Event, late: Event) -> None:
    """Fold a post-resolution input failure into an already-settled combinator.

    Fail-fast combinators keep their callbacks registered on the inputs
    that have not resolved yet, so a *later* failure used to land in a
    no-op callback: :meth:`Event._resolve` saw a waiter and never flagged
    the exception, and it vanished without reaching ``strict_failures``.
    The combinator genuinely observes these failures, so it defuses them
    explicitly and aggregates them onto the first exception
    (``exc.late_failures``) where the joiner can still inspect them.
    """
    late.defuse()
    first = done.exception
    if first is None:
        return
    try:
        collected = getattr(first, "late_failures", None)
        if collected is None:
            collected = []
            first.late_failures = collected
        collected.append(late.exception)
    except AttributeError:
        pass  # exception type forbids attributes; defusal already recorded it


def all_of(sim: Simulator, events: List[Event]) -> Event:
    """An event that succeeds once every input event has resolved.

    Fails fast with the first failure observed; failures of the *other*
    inputs after that point are defused and collected on the first
    exception's ``late_failures`` list.  The value is the list of input
    event values in input order.
    """
    done = sim.event()
    if not events:
        done.succeed([])
        return done
    remaining = [len(events)]

    def on_resolved(_ev: Event) -> None:
        if done.triggered:
            if _ev.exception is not None:
                _absorb_late_failure(done, _ev)
            return
        if _ev.exception is not None:
            done.fail(_ev.exception)
            return
        remaining[0] -= 1
        if remaining[0] == 0:
            done.succeed([e.value for e in events])

    for event in events:
        event.add_callback(on_resolved)
    return done


def any_of(sim: Simulator, events: List[Event]) -> Event:
    """An event that resolves as soon as any input event does.

    Input failures arriving after the race is decided are defused (and
    collected when the winner was itself a failure) instead of silently
    vanishing in the already-resolved combinator.
    """
    done = sim.event()
    if not events:
        raise SimulationError("any_of requires at least one event")

    def on_resolved(_ev: Event) -> None:
        if done.triggered:
            if _ev.exception is not None:
                _absorb_late_failure(done, _ev)
            return
        if _ev.exception is not None:
            done.fail(_ev.exception)
        else:
            done.succeed(_ev.value)

    for event in events:
        event.add_callback(on_resolved)
    return done
