"""Discrete-event simulation kernel (simulator, processes, resources, stats)."""

from repro.sim.core import Event, Simulator, all_of, any_of
from repro.sim.process import Interrupt, Process, ProcessGenerator, sleep_event, spawn
from repro.sim.resources import Lock, Resource, Store
from repro.sim.stats import Counter, LatencySample, StatRegistry, TimeWeightedGauge

__all__ = [
    "Event",
    "Simulator",
    "all_of",
    "any_of",
    "Interrupt",
    "Process",
    "ProcessGenerator",
    "sleep_event",
    "spawn",
    "Lock",
    "Resource",
    "Store",
    "Counter",
    "LatencySample",
    "StatRegistry",
    "TimeWeightedGauge",
]
