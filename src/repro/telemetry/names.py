"""Canonical metric names shared across the observability surfaces.

Three consumers used to hard-code overlapping string literals and
aggregation loops: :class:`repro.system.metrics.RunMetrics` (counter
deltas), :func:`repro.trace.metrics.summarize` (phase/queue splits) and
now the telemetry sampler.  This module is the single source of truth:

* the :class:`~repro.sim.stats.StatRegistry` counter names every layer
  emits (one constant per counter, grouped by layer);
* the checkpoint phase vocabulary (the named child spans every
  checkpoint strategy opens under its ``ckpt`` root);
* the shared aggregation helpers — :func:`phase_totals` and
  :func:`queue_split` — that both the trace summary and the telemetry
  exporters fold their raw data through, so the two reports can never
  drift apart on how a split is computed.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Tuple

# ---------------------------------------------------------------------------
# StatRegistry counter names, by emitting layer
# ---------------------------------------------------------------------------
QUERY_UPDATE = "query.update"
QUERY_UPDATE_REJECTED = "query.update_rejected"
QUERY_READ_MEM = "query.read_mem"
QUERY_READ_STORAGE = "query.read_storage"

ENGINE_DEGRADED = "engine.degraded"

JOURNAL_TRANSACTIONS = "journal.transactions"
JOURNAL_PAYLOAD = "journal.payload"
JOURNAL_PADDING = "journal.padding"
JOURNAL_FULL_STALLS = "journal.full_stalls"
JOURNAL_FAILED_TXNS = "journal.failed_txns"

CKPT_COUNT = "ckpt.count"
CKPT_MEDIA_ABORTS = "ckpt.media_aborts"
CKPT_FALLBACKS = "ckpt.fallbacks"

HOST_READ_CMDS = "host.read_cmds"
HOST_WRITE_CMDS = "host.write_cmds"
HOST_FLUSH_CMDS = "host.flush_cmds"

ISCE_REMAPPED_UNITS = "isce.remapped_units"
ISCE_COPIED_UNITS = "isce.copied_units"

FTL_MAP_MISS = "ftl.map_miss"
FTL_UNITS_WRITE_CKPT = "ftl.units.write.ckpt"
FTL_UNITS_WRITE_CKPT_META = "ftl.units.write.ckpt_meta"
FTL_DEGRADED = "ftl.degraded"
FTL_BAD_BLOCKS = "ftl.bad_blocks"

GC_INVOCATIONS = "gc.invocations"
GC_MIGRATED_UNITS = "gc.migrated_units"
GC_ERASED_BLOCKS = "gc.erased_blocks"

FLASH_READ = "flash.read"
FLASH_PROGRAM = "flash.program"
FLASH_ERASE = "flash.erase"

MEDIA_PROGRAM_FAIL = "media.program_fail"
MEDIA_ERASE_FAIL = "media.erase_fail"
MEDIA_READ_RETRY = "media.read_retry"
MEDIA_READ_UECC = "media.read_uecc"
MEDIA_RELOCATIONS = "media.relocations"

CMD_MEDIA_RETRIES = "cmd.media_retries"
CMD_MEDIA_ERRORS = "cmd.media_errors"

REPL_SHIP_LAG_BYTES = "replication.ship_lag_bytes"
REPL_SHIP_LAG_OPS = "replication.ship_lag_ops"
REPL_REPLAY_APPLIED = "replication.replay_applied"

# ---------------------------------------------------------------------------
# Checkpoint phase vocabulary (child spans of the "ckpt" root span)
# ---------------------------------------------------------------------------
CHECKPOINT_PHASES = (
    "journal_scan",
    "journal_readback",
    "cow_remap",
    "data_write",
    "metadata_persist",
    "dealloc",
    "load_program",
)
"""Every named phase a checkpoint strategy may open, in pipeline order."""


# ---------------------------------------------------------------------------
# Shared aggregation helpers
# ---------------------------------------------------------------------------
def safe_ratio(numerator: float, denominator: float,
               default: float = 0.0) -> float:
    """``numerator / denominator``, or ``default`` on a zero denominator.

    Defined here (a leaf module) so every layer can use it without import
    cycles; :mod:`repro.system.metrics` re-exports it as the canonical
    import site for metric consumers.
    """
    return numerator / denominator if denominator else default


def phase_totals(checkpoints: Iterable[Mapping[str, Any]]) -> Dict[str, int]:
    """Total ns per checkpoint phase across checkpoint summaries.

    Each input mapping is one checkpoint's summary carrying a ``phases``
    dict (phase name -> ns), the shape both the tracer's
    ``checkpoint_summaries`` and the telemetry health frames use.
    """
    totals: Dict[str, int] = {}
    for ckpt in checkpoints:
        for phase, duration in ckpt.get("phases", {}).items():
            totals[phase] = totals.get(phase, 0) + duration
    return totals


def queue_split(stage_stats: Mapping[Tuple[str, str], Any]
                ) -> Dict[str, Dict[str, int]]:
    """Per-component queue-wait vs service-time split.

    ``stage_stats`` maps ``(component, stage)`` to any object exposing
    ``queue_ns`` and ``service_ns`` (the tracer's ``StageStat``).
    """
    split: Dict[str, Dict[str, int]] = {}
    for (component, _stage), stat in sorted(stage_stats.items()):
        entry = split.setdefault(component, {"queue_ns": 0, "service_ns": 0})
        entry["queue_ns"] += stat.queue_ns
        entry["service_ns"] += stat.service_ns
    return split
