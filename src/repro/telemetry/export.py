"""Telemetry exporters: schema-versioned JSONL dump and validation.

The JSONL layout is one self-describing JSON object per line:

* line 1 — a ``header`` record (``schema``, run label, interval, sample
  count);
* one ``series`` record per (tenant, metric) with its retained
  ``[t_ns, value]`` points;
* one ``event`` record per watchdog edge, in emission order;
* one ``health`` record per SMART frame;
* a final ``footer`` record with counts, so truncated files are
  detectable.

:func:`validate_telemetry_file` re-reads a dump and checks the schema
version, required keys, point monotonicity and footer counts — the CI
telemetry smoke job runs it on a fresh dump.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.telemetry.sampler import TelemetrySampler

SCHEMA = "repro-telemetry/v1"

_REQUIRED = {
    "header": ("schema", "label", "interval_ns", "samples"),
    "series": ("tenant", "layer", "kind", "name", "points"),
    "event": ("t_ns", "watchdog", "kind", "tenant", "severity"),
    "health": ("t_ns", "wear_min", "wear_max", "wear_mean", "bad_blocks",
               "spare_remaining"),
    "footer": ("series", "events", "health_frames"),
}


def telemetry_records(sampler: TelemetrySampler) -> List[Dict[str, Any]]:
    """The full dump of one sampler as a list of JSONL records."""
    records: List[Dict[str, Any]] = [{
        "type": "header",
        "schema": SCHEMA,
        "label": sampler.label,
        "interval_ns": sampler.config.interval_ns,
        "samples": sampler.samples,
        "layers": sampler.layers_covered(),
        "tenants": sampler.registry.tenants(),
    }]
    for series in sampler.all_series():
        records.append({
            "type": "series",
            "tenant": series.tenant,
            "layer": series.layer,
            "kind": series.kind,
            "name": series.name,
            "points": [[t, value] for t, value in series.points],
        })
    for event in sampler.events:
        records.append(event.as_dict())
    health_frames = list(sampler.health.frames) if sampler.health else []
    records.extend(health_frames)
    records.append({
        "type": "footer",
        "series": len(sampler.series),
        "events": len(sampler.events),
        "health_frames": len(health_frames),
    })
    return records


def write_telemetry_jsonl(path: str, sampler: TelemetrySampler) -> int:
    """Dump one sampler to ``path``; returns the record count."""
    records = telemetry_records(sampler)
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return len(records)


def validate_telemetry_file(path: str) -> List[str]:
    """Structural validation of a JSONL dump; returns problems found."""
    problems: List[str] = []
    records: List[Dict[str, Any]] = []
    try:
        with open(path) as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    problems.append(f"line {lineno}: invalid JSON ({exc})")
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    if not records:
        return ["empty telemetry file"]

    header = records[0]
    if header.get("type") != "header":
        problems.append("first record is not a header")
    elif header.get("schema") != SCHEMA:
        problems.append(f"schema {header.get('schema')!r} != {SCHEMA!r}")
    if records[-1].get("type") != "footer":
        problems.append("last record is not a footer")

    counts = {"series": 0, "event": 0, "health": 0}
    for index, record in enumerate(records):
        kind = record.get("type")
        required = _REQUIRED.get(kind)
        if required is None:
            if kind not in ("header", "footer", "health_report"):
                problems.append(f"record {index}: unknown type {kind!r}")
            continue
        for key in required:
            if key not in record:
                problems.append(f"record {index} ({kind}): missing {key!r}")
        if kind in counts:
            counts[kind] += 1
        if kind == "series":
            last_t = None
            for point in record.get("points", []):
                if not (isinstance(point, list) and len(point) == 2):
                    problems.append(
                        f"series {record.get('name')}: malformed point")
                    break
                if last_t is not None and point[0] < last_t:
                    problems.append(
                        f"series {record.get('name')}: timestamps not "
                        "monotonic")
                    break
                last_t = point[0]
    footer = records[-1]
    if footer.get("type") == "footer":
        expected = {"series": footer.get("series"),
                    "event": footer.get("events"),
                    "health": footer.get("health_frames")}
        for kind, count in counts.items():
            if expected[kind] is not None and expected[kind] != count:
                problems.append(
                    f"footer claims {expected[kind]} {kind} records, "
                    f"found {count}")
    return problems


# ----------------------------------------------------------------------
# CLI renderers
# ----------------------------------------------------------------------
def summary_table(sampler: TelemetrySampler, title: str = "") -> str:
    """Per-series overview table (scope, layer, metric, min/max/last)."""
    from repro.analysis.tables import format_table
    return format_table(
        ["scope", "layer", "metric", "kind", "samples", "min", "max",
         "last"],
        sampler.summary_rows(),
        title=title or f"telemetry: {sampler.samples} samples at "
                       f"{sampler.config.interval_ns / 1e6:g} ms")


def events_table(sampler: TelemetrySampler, title: str = "") -> str:
    """Watchdog edge table in emission order."""
    from repro.analysis.tables import format_table
    rows = [[event.t_ns / 1e6, event.watchdog, event.kind,
             event.tenant or "aggregate", event.severity,
             round(event.value, 3)]
            for event in sampler.events]
    return format_table(
        ["t_ms", "watchdog", "edge", "scope", "severity", "value"],
        rows, title=title or "telemetry: SLO watchdog events")


def health_table(sampler: TelemetrySampler, title: str = "") -> str:
    """The final SMART-style health report as a two-column table."""
    from repro.analysis.tables import format_table
    report = sampler.health_report()
    if report is None:
        return "(no device health log)"
    rows = [[key, value] for key, value in report.items()
            if key not in ("type",)]
    return format_table(["field", "value"], rows,
                        title=title or "telemetry: device health report")
