"""Telemetry exporters: schema-versioned JSONL dump and validation.

The JSONL layout is one self-describing JSON object per line:

* line 1 — a ``header`` record (``schema``, run label, interval, sample
  count);
* one ``series`` record per (tenant, metric) with its retained
  ``[t_ns, value]`` points;
* one ``event`` record per watchdog edge, in emission order;
* one ``health`` record per SMART frame;
* a final ``footer`` record with counts, so truncated files are
  detectable.

:func:`validate_telemetry_file` re-reads a dump and checks the schema
version, required keys, point monotonicity and footer counts — the CI
telemetry smoke job runs it on a fresh dump.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.common.jsonl import validate_jsonl_file, write_jsonl
from repro.telemetry.sampler import TelemetrySampler

SCHEMA = "repro-telemetry/v1"

_REQUIRED = {
    "header": ("schema", "label", "interval_ns", "samples"),
    "series": ("tenant", "layer", "kind", "name", "points"),
    "event": ("t_ns", "watchdog", "kind", "tenant", "severity"),
    "health": ("t_ns", "wear_min", "wear_max", "wear_mean", "bad_blocks",
               "spare_remaining"),
    "footer": ("series", "events", "health_frames"),
}


def telemetry_records(sampler: TelemetrySampler) -> List[Dict[str, Any]]:
    """The full dump of one sampler as a list of JSONL records."""
    records: List[Dict[str, Any]] = [{
        "type": "header",
        "schema": SCHEMA,
        "label": sampler.label,
        "interval_ns": sampler.config.interval_ns,
        "samples": sampler.samples,
        "layers": sampler.layers_covered(),
        "tenants": sampler.registry.tenants(),
    }]
    for series in sampler.all_series():
        records.append({
            "type": "series",
            "tenant": series.tenant,
            "layer": series.layer,
            "kind": series.kind,
            "name": series.name,
            "points": [[t, value] for t, value in series.points],
        })
    for event in sampler.events:
        records.append(event.as_dict())
    health_frames = list(sampler.health.frames) if sampler.health else []
    records.extend(health_frames)
    records.append({
        "type": "footer",
        "series": len(sampler.series),
        "events": len(sampler.events),
        "health_frames": len(health_frames),
    })
    return records


def write_telemetry_jsonl(path: str, sampler: TelemetrySampler) -> int:
    """Dump one sampler to ``path``; returns the record count."""
    return write_jsonl(path, telemetry_records(sampler))


def _check_telemetry_record(index: int, record: Dict[str, Any],
                            header: Dict[str, Any],
                            problems: List[str]) -> None:
    """Telemetry-specific domain checks (series point monotonicity)."""
    if record.get("type") != "series":
        return
    last_t = None
    for point in record.get("points", []):
        if not (isinstance(point, list) and len(point) == 2):
            problems.append(
                f"series {record.get('name')}: malformed point")
            break
        if last_t is not None and point[0] < last_t:
            problems.append(
                f"series {record.get('name')}: timestamps not "
                "monotonic")
            break
        last_t = point[0]


def validate_telemetry_file(path: str) -> List[str]:
    """Structural validation of a JSONL dump; returns problems found."""
    return validate_jsonl_file(
        path, schema=SCHEMA, required=_REQUIRED,
        counted={"series": "series", "event": "events",
                 "health": "health_frames"},
        what="telemetry", tolerated=("health_report",),
        record_check=_check_telemetry_record)


# ----------------------------------------------------------------------
# CLI renderers
# ----------------------------------------------------------------------
def summary_table(sampler: TelemetrySampler, title: str = "") -> str:
    """Per-series overview table (scope, layer, metric, min/max/last)."""
    from repro.analysis.tables import format_table
    return format_table(
        ["scope", "layer", "metric", "kind", "samples", "min", "max",
         "last"],
        sampler.summary_rows(),
        title=title or f"telemetry: {sampler.samples} samples at "
                       f"{sampler.config.interval_ns / 1e6:g} ms")


def events_table(sampler: TelemetrySampler, title: str = "") -> str:
    """Watchdog edge table in emission order."""
    from repro.analysis.tables import format_table
    rows = [[event.t_ns / 1e6, event.watchdog, event.kind,
             event.tenant or "aggregate", event.severity,
             round(event.value, 3)]
            for event in sampler.events]
    return format_table(
        ["t_ms", "watchdog", "edge", "scope", "severity", "value"],
        rows, title=title or "telemetry: SLO watchdog events")


def health_table(sampler: TelemetrySampler, title: str = "") -> str:
    """The final SMART-style health report as a two-column table."""
    from repro.analysis.tables import format_table
    report = sampler.health_report()
    if report is None:
        return "(no device health log)"
    rows = [[key, value] for key, value in report.items()
            if key not in ("type",)]
    return format_table(["field", "value"], rows,
                        title=title or "telemetry: device health report")
