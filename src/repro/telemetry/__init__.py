"""``repro.telemetry`` — continuous time-series observability.

Where :mod:`repro.trace` answers "where did this one operation's time
go", telemetry answers "what did the whole stack look like over the
run": a :class:`TelemetrySampler` sim process periodically snapshots a
declarative :class:`MetricRegistry` of counters and gauges — engine,
journal, checkpointer, coalescer, ISCE, FTL, GC, flash, host interface
and media, per tenant and aggregate — into ring-buffered
:class:`Series`, records SMART-style :class:`DeviceHealthLog` frames and
evaluates SLO watchdogs (journal saturation, checkpoint overdue, GC
starvation, queue stall, degraded entry).

Like tracing, telemetry is **zero overhead when disabled**: no sampler
exists, and a sampled run only reads state, so counter snapshots of a
sampled and an unsampled run are byte-identical (CI-asserted).

The **global telemetry switch** mirrors the trace switch: experiments
build their own systems internally, so ``repro run <exp> --telemetry``
flips the process-wide switch and every system constructed while it is
on wires a sampler and registers it in the run collector.

Submodules are loaded lazily (PEP 562): :mod:`repro.telemetry.names` is
a leaf imported from low layers (``trace.tracer``, ``system.metrics``),
and an eager package init would close an import cycle through
``sampler`` → ``sim.process`` → ``sim.core`` → ``trace.tracer``.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

__all__ = [
    "ADDITIVE_METRICS", "AGGREGATE", "COUNTER", "GAUGE",
    "MetricRegistry", "Probe", "Series",
    "TelemetryConfig", "TelemetrySampler", "DeviceHealthLog",
    "SloThresholds", "TelemetryEvent", "Watchdog", "WatchdogBank",
    "ThresholdWatchdog", "CheckpointOverdueWatchdog",
    "DegradedEntryWatchdog",
    "telemetry_records", "write_telemetry_jsonl",
    "validate_telemetry_file",
    "summary_table", "events_table", "health_table",
    "build_sampler",
    "enable_telemetry", "disable_telemetry", "telemetry_enabled",
    "global_telemetry_config", "collected_samplers", "clear_samplers",
    "register_sampler",
]

_LAZY = {
    "ADDITIVE_METRICS": "probes", "build_sampler": "probes",
    "AGGREGATE": "registry", "COUNTER": "registry", "GAUGE": "registry",
    "MetricRegistry": "registry", "Probe": "registry", "Series": "registry",
    "TelemetryConfig": "sampler", "TelemetrySampler": "sampler",
    "DeviceHealthLog": "health",
    "SloThresholds": "watchdog", "TelemetryEvent": "watchdog",
    "Watchdog": "watchdog", "WatchdogBank": "watchdog",
    "ThresholdWatchdog": "watchdog",
    "CheckpointOverdueWatchdog": "watchdog",
    "DegradedEntryWatchdog": "watchdog",
    "telemetry_records": "export", "write_telemetry_jsonl": "export",
    "validate_telemetry_file": "export", "summary_table": "export",
    "events_table": "export", "health_table": "export",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.telemetry' has no attribute {name!r}")
    import importlib
    module = importlib.import_module(f"repro.telemetry.{module_name}")
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


# ----------------------------------------------------------------------
# process-wide switch + run collector (mirrors repro.trace)
# ----------------------------------------------------------------------
_GLOBAL_ENABLED = False
_GLOBAL_CONFIG: Optional[Any] = None
_SAMPLERS: List[Tuple[str, Any]] = []
_LABEL_COUNTS: dict = {}


def enable_telemetry(config: Optional[Any] = None) -> None:
    """Turn the process-wide telemetry switch on (CLI ``--telemetry``)."""
    global _GLOBAL_ENABLED, _GLOBAL_CONFIG
    _GLOBAL_ENABLED = True
    _GLOBAL_CONFIG = config


def disable_telemetry() -> None:
    """Turn the switch off (new systems stop sampling)."""
    global _GLOBAL_ENABLED, _GLOBAL_CONFIG
    _GLOBAL_ENABLED = False
    _GLOBAL_CONFIG = None


def telemetry_enabled() -> bool:
    """True while the process-wide switch is on."""
    return _GLOBAL_ENABLED


def global_telemetry_config() -> Optional[Any]:
    """The config installed with :func:`enable_telemetry` (may be None)."""
    return _GLOBAL_CONFIG


def register_sampler(label: str, sampler: Any) -> str:
    """Record a sampler for post-run export; returns its unique label."""
    count = _LABEL_COUNTS.get(label, 0) + 1
    _LABEL_COUNTS[label] = count
    unique = label if count == 1 else f"{label}#{count}"
    sampler.label = unique
    _SAMPLERS.append((unique, sampler))
    return unique


def collected_samplers() -> List[Tuple[str, Any]]:
    """Every (label, sampler) since the last :func:`clear_samplers`."""
    return list(_SAMPLERS)


def clear_samplers() -> None:
    """Drop collected samplers (start of a telemetry CLI invocation)."""
    _SAMPLERS.clear()
    _LABEL_COUNTS.clear()
