"""Probe wiring: turn one live ``KvSystem`` into a telemetry pipeline.

:func:`build_sampler` registers the declarative probe set every layer of
the stack exposes — engine, journal, checkpointer, coalescer, ISCE, FTL,
GC, flash, host interface and media — as per-tenant *and* aggregate
series, builds the stock SLO watchdog bank and the SMART health log, and
returns a ready (not yet started) sampler.

The system object is duck-typed (``system.ssd``, ``system.tenants`` …)
so this module depends only on the telemetry package — no import cycle
with :mod:`repro.system.system`.

Aggregation contract: for additive counters (listed in
:data:`ADDITIVE_METRICS`) the aggregate probe is defined as the *sum of
the per-tenant probes*, read at the same sample instant — so per-tenant
series sum exactly to the aggregate series, which the tenant-isolation
tests assert pointwise.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry import names
from repro.telemetry.health import DeviceHealthLog
from repro.telemetry.registry import AGGREGATE, MetricRegistry
from repro.telemetry.sampler import TelemetryConfig, TelemetrySampler
from repro.telemetry.watchdog import (
    CheckpointOverdueWatchdog,
    DegradedEntryWatchdog,
    ThresholdWatchdog,
    WatchdogBank,
)

ADDITIVE_METRICS = ("engine.ops", "checkpoint.count",
                    "journal.pressure_bytes")
"""Per-tenant series of these metrics sum to the aggregate series."""


def _tenant_probes(registry: MetricRegistry, system: Any,
                   tenant: Any, scope: str) -> None:
    """Register one tenant's engine/journal/checkpoint probes."""
    engine = tenant.engine
    journal = engine.journal
    metrics = tenant.metrics
    registry.counter("engine.ops", "engine",
                     lambda m=metrics: m.operations, tenant=scope)
    registry.gauge("engine.degraded", "engine",
                   lambda e=engine: 1.0 if e.degraded else 0.0,
                   tenant=scope)
    registry.gauge("journal.occupancy", "journal",
                   lambda j=journal: names.safe_ratio(
                       j.active_head_sectors, j.config.half_sectors),
                   tenant=scope)
    registry.gauge("journal.pressure_bytes", "journal",
                   lambda j=journal: j.active_bytes_logged, tenant=scope)
    registry.counter("checkpoint.count", "checkpoint",
                     lambda e=engine: len(e.checkpoint_reports),
                     tenant=scope)
    registry.gauge("checkpoint.running", "checkpoint",
                   lambda e=engine: 1.0 if e.checkpoint_running else 0.0,
                   tenant=scope)
    if system.config.tenants is not None:
        controller = system.ssd.controller
        registry.gauge("host.queue_depth", "host",
                       lambda c=controller, n=tenant.index:
                       c.namespace_queue_depth(n).level,
                       tenant=scope)
    admission = getattr(tenant, "admission", None)
    if admission is not None:
        registry.gauge("admission.inflight", "admission",
                       lambda a=admission: float(a.inflight), tenant=scope)
        registry.gauge("admission.waiting", "admission",
                       lambda a=admission: float(a.waiting), tenant=scope)
        registry.counter("admission.submitted", "admission",
                         lambda a=admission: a.submitted, tenant=scope)
        registry.counter("admission.shed_ops", "admission",
                         lambda a=admission: sum(a.shed.values()),
                         tenant=scope)


def build_registry(system: Any) -> MetricRegistry:
    """The full probe set of one system: aggregate + per-tenant."""
    registry = MetricRegistry()
    ssd = system.ssd
    stats = ssd.stats
    tenants = system.tenants

    # -- aggregate host/engine-side metrics (sums over tenants) ---------
    registry.counter("engine.ops", "engine",
                     lambda: sum(t.metrics.operations for t in tenants))
    registry.gauge("engine.degraded", "engine",
                   lambda: max((1.0 if t.engine.degraded else 0.0)
                               for t in tenants))
    registry.gauge("journal.occupancy", "journal",
                   lambda: max(names.safe_ratio(
                       t.engine.journal.active_head_sectors,
                       t.engine.journal.config.half_sectors)
                       for t in tenants))
    registry.gauge("journal.pressure_bytes", "journal",
                   lambda: sum(t.engine.journal.active_bytes_logged
                               for t in tenants))
    registry.counter("checkpoint.count", "checkpoint",
                     lambda: sum(len(t.engine.checkpoint_reports)
                                 for t in tenants))
    registry.gauge("checkpoint.running", "checkpoint",
                   lambda: max((1.0 if t.engine.checkpoint_running else 0.0)
                               for t in tenants))
    registry.stat_counter(stats, names.JOURNAL_TRANSACTIONS, "journal")
    registry.stat_counter(stats, names.JOURNAL_FULL_STALLS, "journal")

    # -- device-side metrics ---------------------------------------------
    controller = ssd.controller
    registry.gauge("host.queue_depth", "host",
                   lambda: controller.queue_depth.level)
    registry.gauge("host.interface_queued", "host",
                   lambda: float(ssd.interface.queued))
    registry.stat_counter(stats, names.HOST_READ_CMDS, "host")
    registry.stat_counter(stats, names.HOST_WRITE_CMDS, "host")
    registry.gauge("coalescer.buffered_units", "coalescer",
                   lambda: float(len(controller.write_buffer)))
    if ssd.isce is not None:
        registry.stat_counter(stats, names.ISCE_REMAPPED_UNITS, "isce")
        registry.stat_counter(stats, names.ISCE_COPIED_UNITS, "isce")
    ftl = ssd.ftl
    registry.gauge("ftl.free_blocks", "ftl",
                   lambda: float(ftl.allocator.free_block_count))
    registry.gauge("ftl.bad_blocks", "ftl",
                   lambda: float(len(ftl.grown_bad)))
    registry.gauge("ftl.degraded", "ftl",
                   lambda: 1.0 if ftl.read_only else 0.0)
    registry.stat_counter(stats, names.FTL_MAP_MISS, "ftl")
    registry.stat_counter(stats, names.FTL_UNITS_WRITE_CKPT, "ftl")
    registry.stat_counter(stats, names.GC_INVOCATIONS, "gc")
    registry.stat_counter(stats, names.GC_MIGRATED_UNITS, "gc")
    registry.stat_counter(stats, names.FLASH_READ, "flash")
    registry.stat_counter(stats, names.FLASH_PROGRAM, "flash")
    registry.stat_counter(stats, names.FLASH_ERASE, "flash")
    registry.gauge("flash.wear_mean", "flash",
                   lambda: ssd.array.wear_stats()["mean"])
    registry.stat_counter(stats, names.MEDIA_READ_RETRY, "media")
    registry.stat_counter(stats, names.MEDIA_PROGRAM_FAIL, "media")

    # -- front-door admission (only when some tenant has a controller) ---
    admitted = [t for t in tenants
                if getattr(t, "admission", None) is not None]
    if admitted:
        registry.gauge("admission.inflight", "admission",
                       lambda ts=admitted: float(
                           sum(t.admission.inflight for t in ts)))
        registry.gauge("admission.waiting", "admission",
                       lambda ts=admitted: float(
                           sum(t.admission.waiting for t in ts)))
        registry.counter("admission.submitted", "admission",
                         lambda ts=admitted:
                         sum(t.admission.submitted for t in ts))
        registry.counter("admission.shed_ops", "admission",
                         lambda ts=admitted:
                         sum(sum(t.admission.shed.values()) for t in ts))

    # -- per-tenant scopes -------------------------------------------------
    for tenant in tenants:
        _tenant_probes(registry, system, tenant, tenant.name)
    return registry


def build_watchdogs(system: Any, config: TelemetryConfig) -> WatchdogBank:
    """The stock SLO watchdog bank for one system."""
    thresholds = config.thresholds
    bank = WatchdogBank()
    bank.add(ThresholdWatchdog(
        "gc_starvation", "ftl.free_blocks",
        threshold=float(max(thresholds.gc_free_blocks,
                            system.config.gc_low_watermark)),
        above=False, consecutive=thresholds.gc_consecutive))
    bank.add(ThresholdWatchdog(
        "queue_stall", "host.queue_depth",
        threshold=min(thresholds.queue_depth,
                      float(system.config.queue_depth)),
        consecutive=thresholds.queue_consecutive))
    bank.add(DegradedEntryWatchdog())
    for tenant in system.tenants:
        view = tenant.view
        bank.add(ThresholdWatchdog(
            "journal_saturation", "journal.occupancy",
            threshold=thresholds.journal_occupancy, tenant=tenant.name))
        bank.add(CheckpointOverdueWatchdog(
            tenant=tenant.name,
            overdue_ns=int(thresholds.checkpoint_overdue_factor
                           * view.checkpoint_interval_ns)))
        admission = getattr(tenant, "admission", None)
        if admission is not None:
            # Sustained full waiting room = the front door is the only
            # thing standing between this tenant and unbounded queueing.
            bank.add(ThresholdWatchdog(
                "admission_overload", "admission.waiting",
                threshold=float(max(1, admission.config.max_waiting)),
                tenant=tenant.name, consecutive=2))
    return bank


def register_replication_probes(sampler: TelemetrySampler, shipper: Any,
                                applier: Any,
                                max_lag_ops: int = 256) -> None:
    """Attach replication gauges + the ``replication_lag`` SLO watchdog.

    Called after the pair is wired (the sampler is built during
    ``KvSystem.__init__``, before any shipper exists) — the sampler's
    ``registry`` and ``watchdogs`` are public mutable attrs for exactly
    this kind of post-hoc subsystem registration.  ``max_lag_ops`` is
    the SLO: sustained committed-but-unacked backlog beyond it trips
    the watchdog, naming the replication link as the system's current
    durability exposure.
    """
    from repro.telemetry.registry import Series
    registry = sampler.registry
    probes = [
        registry.gauge(names.REPL_SHIP_LAG_BYTES, "replication",
                       lambda s=shipper: float(s.ship_lag_bytes)),
        registry.gauge(names.REPL_SHIP_LAG_OPS, "replication",
                       lambda s=shipper: float(s.ship_lag_ops)),
        registry.counter(names.REPL_REPLAY_APPLIED, "replication",
                         lambda a=applier: a.replay_applied),
    ]
    # The sampler snapshots the registry into its series dict at build
    # time; probes registered afterwards need their series added too or
    # the next sample tick would KeyError.
    for probe in probes:
        if probe.key not in sampler.series:
            sampler.series[probe.key] = Series(
                name=probe.name, layer=probe.layer, kind=probe.kind,
                tenant=probe.tenant, maxlen=sampler.config.max_points)
    sampler.watchdogs.add(ThresholdWatchdog(
        "replication_lag", names.REPL_SHIP_LAG_OPS,
        threshold=float(max_lag_ops), consecutive=2))


def build_sampler(system: Any, config: TelemetryConfig,
                  label: str = "run") -> TelemetrySampler:
    """Registry + watchdogs + health log, assembled into one sampler."""
    registry = build_registry(system)
    health = DeviceHealthLog(system.ssd,
                             max_pe_cycles=system.config.max_pe_cycles,
                             spare_block_budget=system.config
                             .spare_block_budget,
                             max_frames=config.max_health_frames)
    watchdogs = build_watchdogs(system, config)
    return TelemetrySampler(system.sim, registry, config,
                            health=health, watchdogs=watchdogs, label=label)
