"""SLO watchdogs evaluated at telemetry sample time.

A watchdog watches one metric (per tenant scope or aggregate) and emits
structured :class:`TelemetryEvent` records on *edges*: one ``fired``
event when the condition starts holding (optionally after N consecutive
violating samples, to debounce), and one ``cleared`` event when it stops.
Events carry the simulation timestamp and the offending value, land in
the owning :class:`WatchdogBank`, and are queryable from tests, the CLI
and the fault harness.

The five stock conditions (wired by :mod:`repro.telemetry.probes`):

* **journal saturation** — a tenant's active journal half is nearly
  full; the next checkpoint is at risk of stalling the committer.
* **checkpoint overdue** — a tenant has journal content but its
  checkpoint counter has not advanced for longer than
  ``overdue_factor x checkpoint_interval``.
* **GC starvation** — the free-block pool has sat at/below the urgent
  watermark for several consecutive samples.
* **queue-depth stall** — the device admission queue has been pinned at
  capacity for several consecutive samples.
* **degraded-mode entry** — the FTL dropped to read-only (fires once,
  never clears: degradation is terminal).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.telemetry.registry import AGGREGATE

FIRED = "fired"
CLEARED = "cleared"


@dataclass(frozen=True)
class SloThresholds:
    """Default thresholds for the stock watchdog set."""

    journal_occupancy: float = 0.90
    """Active-half occupancy fraction that counts as saturated."""

    checkpoint_overdue_factor: float = 2.0
    """Multiple of the checkpoint interval after which a tenant with
    journal content is overdue."""

    gc_free_blocks: float = 2.0
    """Free-block level at/below which GC is starving (the urgent
    watermark by default)."""

    gc_consecutive: int = 3
    """Consecutive starving samples before the GC watchdog fires."""

    queue_depth: float = 64.0
    """Admission-queue level that counts as a stall (the queue cap)."""

    queue_consecutive: int = 3
    """Consecutive pinned samples before the stall watchdog fires."""


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured watchdog edge."""

    t_ns: int
    watchdog: str
    kind: str
    """``fired`` or ``cleared``."""

    tenant: str = AGGREGATE
    severity: str = "warn"
    value: float = 0.0
    message: str = ""
    blame: str = ""
    """Dominant blame category when the run carries attribution ledgers
    (see ``repro.obs``); empty on unblamed runs."""

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly rendering (JSONL export)."""
        return {"type": "event", "t_ns": self.t_ns,
                "watchdog": self.watchdog, "kind": self.kind,
                "tenant": self.tenant, "severity": self.severity,
                "value": self.value, "message": self.message,
                "blame": self.blame}


class Watchdog:
    """Base class: holds identity and the fired/cleared edge state."""

    def __init__(self, name: str, tenant: str = AGGREGATE,
                 severity: str = "warn") -> None:
        self.name = name
        self.tenant = tenant
        self.severity = severity
        self.active = False
        """True while the condition currently holds (post-debounce)."""

    # subclasses implement: returns (violating?, observed value, message)
    def check(self, t_ns: int,
              values: Dict[Tuple[str, str], float]
              ) -> Tuple[bool, float, str]:
        raise NotImplementedError

    def evaluate(self, t_ns: int,
                 values: Dict[Tuple[str, str], float]
                 ) -> List[TelemetryEvent]:
        """Evaluate at one sample instant; returns any edge events."""
        violating, value, message = self.check(t_ns, values)
        if violating and not self.active:
            self.active = True
            return [TelemetryEvent(t_ns=t_ns, watchdog=self.name,
                                   kind=FIRED, tenant=self.tenant,
                                   severity=self.severity, value=value,
                                   message=message)]
        if not violating and self.active:
            self.active = False
            return [TelemetryEvent(t_ns=t_ns, watchdog=self.name,
                                   kind=CLEARED, tenant=self.tenant,
                                   severity=self.severity, value=value,
                                   message=f"{self.name} recovered")]
        return []


class ThresholdWatchdog(Watchdog):
    """Fires when a metric crosses a bound for N consecutive samples."""

    def __init__(self, name: str, metric: str, threshold: float,
                 tenant: str = AGGREGATE, metric_tenant: Optional[str] = None,
                 above: bool = True, consecutive: int = 1,
                 severity: str = "warn") -> None:
        super().__init__(name, tenant, severity)
        self.metric = metric
        self.metric_tenant = metric_tenant if metric_tenant is not None \
            else tenant
        self.threshold = threshold
        self.above = above
        self.consecutive = max(1, consecutive)
        self._streak = 0

    def check(self, t_ns, values):
        value = values.get((self.metric_tenant, self.metric), 0.0)
        breach = value >= self.threshold if self.above \
            else value <= self.threshold
        self._streak = self._streak + 1 if breach else 0
        sense = ">=" if self.above else "<="
        return (self._streak >= self.consecutive, value,
                f"{self.metric} {sense} {self.threshold} "
                f"for {self._streak} sample(s)")


class CheckpointOverdueWatchdog(Watchdog):
    """A tenant with journal content whose checkpoint count went stale."""

    def __init__(self, tenant: str, overdue_ns: int,
                 count_metric: str = "checkpoint.count",
                 pressure_metric: str = "journal.pressure_bytes") -> None:
        super().__init__("checkpoint_overdue", tenant)
        self.overdue_ns = overdue_ns
        self.count_metric = count_metric
        self.pressure_metric = pressure_metric
        self._last_count: Optional[float] = None
        self._last_advance_ns = 0

    def check(self, t_ns, values):
        count = values.get((self.tenant, self.count_metric), 0.0)
        pressure = values.get((self.tenant, self.pressure_metric), 0.0)
        if self._last_count is None or count != self._last_count:
            self._last_count = count
            self._last_advance_ns = t_ns
        stale_ns = t_ns - self._last_advance_ns
        violating = pressure > 0 and stale_ns > self.overdue_ns
        return (violating, stale_ns,
                f"no checkpoint for {stale_ns / 1e6:.1f} ms with "
                f"{pressure:.0f} journal bytes pending")


class DegradedEntryWatchdog(Watchdog):
    """Fires once when the device drops to read-only degraded mode."""

    def __init__(self, metric: str = "ftl.degraded") -> None:
        super().__init__("degraded_entry", AGGREGATE, severity="error")
        self.metric = metric

    def check(self, t_ns, values):
        degraded = values.get((AGGREGATE, self.metric), 0.0) >= 1.0
        # Terminal: once active it never clears.
        violating = degraded or self.active
        return (violating, 1.0 if degraded else 0.0,
                "device entered read-only degraded mode")


class WatchdogBank:
    """All watchdogs of one run plus every event they emitted."""

    def __init__(self, watchdogs: Optional[List[Watchdog]] = None) -> None:
        self.watchdogs: List[Watchdog] = list(watchdogs or [])
        self.events: List[TelemetryEvent] = []
        self.blame_annotator: Optional[Callable[[], str]] = None
        """When set (blamed runs), every fresh event is stamped with the
        dominant blame category observed so far."""

    def add(self, watchdog: Watchdog) -> Watchdog:
        """Register one more watchdog."""
        self.watchdogs.append(watchdog)
        return watchdog

    def escalate(self, name: str, severity: str = "error") -> int:
        """Raise every ``name``d watchdog to ``severity``; returns hits.

        "Page on this SLO": an error-severity FIRED edge is an incident
        trigger (the sampler trips the flight recorder on it), so
        escalating a watchdog turns its breach into a forensic dump.
        """
        hits = 0
        for watchdog in self.watchdogs:
            if watchdog.name == name:
                watchdog.severity = severity
                hits += 1
        return hits

    def evaluate(self, t_ns: int,
                 values: Dict[Tuple[str, str], float]) -> List[TelemetryEvent]:
        """Run every watchdog against one sample; collect edge events."""
        fresh: List[TelemetryEvent] = []
        for watchdog in self.watchdogs:
            fresh.extend(watchdog.evaluate(t_ns, values))
        if fresh and self.blame_annotator is not None:
            dominant = self.blame_annotator()
            if dominant:
                fresh = [replace(event, blame=dominant) for event in fresh]
        self.events.extend(fresh)
        return fresh

    # -- queries ---------------------------------------------------------
    def events_for(self, name: str,
                   tenant: Optional[str] = None) -> List[TelemetryEvent]:
        """Events of one watchdog (optionally one tenant scope)."""
        return [event for event in self.events
                if event.watchdog == name
                and (tenant is None or event.tenant == tenant)]

    def fired(self, name: str, tenant: Optional[str] = None) -> bool:
        """Did the named watchdog ever fire?"""
        return any(event.kind == FIRED
                   for event in self.events_for(name, tenant))

    def active(self) -> List[str]:
        """Names of watchdogs whose condition currently holds."""
        return [w.name for w in self.watchdogs if w.active]

    def counts(self) -> Dict[str, int]:
        """Fired-event count per watchdog name."""
        totals: Dict[str, int] = {}
        for event in self.events:
            if event.kind == FIRED:
                totals[event.watchdog] = totals.get(event.watchdog, 0) + 1
        return totals
