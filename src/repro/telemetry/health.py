"""SMART-style device health log.

Real SSDs expose a SMART / NVMe health-information log: wear levelling
spread, grown-bad blocks, spare capacity remaining, media error rates and
a projected lifetime.  :class:`DeviceHealthLog` reproduces that surface
for the simulated device: the telemetry sampler asks it for a *health
frame* periodically (every ``health_every``-th sample) and for one final
:meth:`report` at end of run.

Projected lifetime follows the paper's Equation (1) shape: with ``BEC``
block erases consumed over an observation window ``T``, a budget of
``PEC_max`` cycles per block across ``nblocks`` blocks lasts
``PEC_max * nblocks * T / BEC`` — reported relative to the window so
runs of different lengths are comparable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.telemetry import names
from repro.telemetry.names import safe_ratio


class DeviceHealthLog:
    """Periodic SMART-ish health frames for one simulated device."""

    def __init__(self, ssd: Any, max_pe_cycles: int,
                 spare_block_budget: int, max_frames: int = 1024) -> None:
        self.ssd = ssd
        self.max_pe_cycles = max_pe_cycles
        self.spare_block_budget = spare_block_budget
        self.frames: Deque[Dict[str, Any]] = deque(maxlen=max_frames)

    # ------------------------------------------------------------------
    def frame(self, t_ns: int) -> Dict[str, Any]:
        """Snapshot the device health now (does not record it)."""
        stats = self.ssd.stats
        wear = self.ssd.array.wear_stats()
        bad_blocks = len(self.ssd.ftl.grown_bad)
        erases = stats.value(names.FLASH_ERASE)
        nblocks = self.ssd.spec.geometry.total_blocks
        # Equation (1) scaled to the whole device: how many multiples of
        # the elapsed window the P/E budget would last at this burn rate.
        projected = safe_ratio(self.max_pe_cycles * nblocks, erases,
                               default=float("inf"))
        return {
            "type": "health",
            "t_ns": t_ns,
            "wear_min": wear["min"],
            "wear_max": wear["max"],
            "wear_mean": wear["mean"],
            "pe_used_pct": 100.0 * safe_ratio(wear["max"],
                                              self.max_pe_cycles),
            "bad_blocks": bad_blocks,
            "spare_remaining": max(0, self.spare_block_budget - bad_blocks),
            "read_retries": stats.value(names.MEDIA_READ_RETRY),
            "uecc_events": stats.value(names.MEDIA_READ_UECC),
            "program_fails": stats.value(names.MEDIA_PROGRAM_FAIL),
            "erase_fails": stats.value(names.MEDIA_ERASE_FAIL),
            "relocations": stats.value(names.MEDIA_RELOCATIONS),
            "media_error_rate": safe_ratio(
                stats.value(names.MEDIA_PROGRAM_FAIL)
                + stats.value(names.MEDIA_ERASE_FAIL)
                + stats.value(names.MEDIA_READ_UECC),
                stats.value(names.FLASH_PROGRAM)
                + stats.value(names.FLASH_ERASE)
                + stats.value(names.FLASH_READ)),
            "projected_lifetime_windows": projected,
            "degraded": bool(self.ssd.ftl.read_only),
            "degraded_reason": self.ssd.ftl.degraded_reason,
        }

    def record(self, t_ns: int) -> Dict[str, Any]:
        """Snapshot and retain one health frame."""
        frame = self.frame(t_ns)
        self.frames.append(frame)
        return frame

    # ------------------------------------------------------------------
    @property
    def latest(self) -> Optional[Dict[str, Any]]:
        """Most recent recorded frame (None before the first)."""
        return self.frames[-1] if self.frames else None

    def series(self, field: str) -> List[Any]:
        """One health field over all retained frames, oldest first."""
        return [frame[field] for frame in self.frames]

    def report(self, t_ns: int) -> Dict[str, Any]:
        """The final health report: a fresh frame plus trend context."""
        final = self.frame(t_ns)
        final["type"] = "health_report"
        final["frames_recorded"] = len(self.frames)
        if self.frames:
            first = self.frames[0]
            final["wear_mean_delta"] = final["wear_mean"] - first["wear_mean"]
            final["bad_blocks_delta"] = (final["bad_blocks"]
                                         - first["bad_blocks"])
        return final
