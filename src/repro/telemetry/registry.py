"""Declarative metric registry and ring-buffered time series.

Every layer of the stack registers *probes* — named, zero-argument
callables the sampler reads at each tick.  A probe never mutates
anything, so sampling cannot perturb the simulated event sequence: a
sampled and an unsampled run produce byte-identical counter snapshots
(CI asserts this, mirroring the tracer's zero-overhead guarantee).

Probes come in two kinds:

* ``counter`` — a cumulative, monotonically non-decreasing value
  (typically a :class:`~repro.sim.stats.StatRegistry` counter).  Series
  store the cumulative value; consumers derive rates from deltas.
* ``gauge`` — an instantaneous level (journal occupancy, free blocks,
  queue depth).

Each probe is scoped: ``tenant=""`` is the device/system aggregate;
a tenant label scopes the probe to one namespace.  Additive counters
registered per tenant must sum to their aggregate counterpart at every
sample instant — the isolation test battery asserts this.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigError

COUNTER = "counter"
GAUGE = "gauge"
AGGREGATE = ""
"""The tenant label of device/system-wide probes."""


@dataclass(frozen=True)
class Probe:
    """One sampleable metric source."""

    name: str
    """Canonical metric name, e.g. ``ftl.free_blocks``."""

    layer: str
    """Emitting layer: engine, journal, checkpoint, coalescer, isce,
    ftl, gc, flash, host, media."""

    kind: str
    """``counter`` (cumulative) or ``gauge`` (instantaneous level)."""

    fn: Callable[[], float]
    tenant: str = AGGREGATE

    @property
    def key(self) -> Tuple[str, str]:
        """The registry key: (tenant scope, metric name)."""
        return (self.tenant, self.name)

    def read(self) -> float:
        """Sample the probe now."""
        return float(self.fn())


@dataclass
class Series:
    """Ring-buffered (time, value) samples of one probe."""

    name: str
    layer: str
    kind: str
    tenant: str = AGGREGATE
    maxlen: int = 4096
    points: Deque[Tuple[int, float]] = field(default_factory=deque)

    def __post_init__(self) -> None:
        if not isinstance(self.points, deque) or \
                self.points.maxlen != self.maxlen:
            self.points = deque(self.points, maxlen=self.maxlen)

    def append(self, t_ns: int, value: float) -> None:
        """Record one sample (evicts the oldest point when full)."""
        self.points.append((t_ns, value))

    def __len__(self) -> int:
        return len(self.points)

    def values(self) -> List[float]:
        """All retained values, oldest first."""
        return [value for _t, value in self.points]

    def times(self) -> List[int]:
        """All retained sample timestamps, oldest first."""
        return [t for t, _value in self.points]

    def last(self) -> Optional[float]:
        """Most recent value (None while empty)."""
        return self.points[-1][1] if self.points else None

    def first(self) -> Optional[float]:
        """Oldest retained value (None while empty)."""
        return self.points[0][1] if self.points else None

    def delta(self) -> float:
        """last - first over the retained window (counter rate basis)."""
        if not self.points:
            return 0.0
        return self.points[-1][1] - self.points[0][1]

    def minmax(self) -> Tuple[float, float]:
        """(min, max) over the retained window; (0, 0) while empty."""
        if not self.points:
            return (0.0, 0.0)
        values = self.values()
        return (min(values), max(values))


class MetricRegistry:
    """A flat, ordered namespace of probes for one system instance."""

    def __init__(self) -> None:
        self._probes: Dict[Tuple[str, str], Probe] = {}

    def register(self, probe: Probe) -> Probe:
        """Add a probe; duplicate (tenant, name) pairs are rejected."""
        if probe.kind not in (COUNTER, GAUGE):
            raise ConfigError(f"unknown probe kind {probe.kind!r}")
        if probe.key in self._probes:
            raise ConfigError(
                f"probe {probe.name!r} already registered for "
                f"tenant {probe.tenant!r}")
        self._probes[probe.key] = probe
        return probe

    def counter(self, name: str, layer: str, fn: Callable[[], float],
                tenant: str = AGGREGATE) -> Probe:
        """Register a cumulative counter probe."""
        return self.register(Probe(name=name, layer=layer, kind=COUNTER,
                                   fn=fn, tenant=tenant))

    def gauge(self, name: str, layer: str, fn: Callable[[], float],
              tenant: str = AGGREGATE) -> Probe:
        """Register an instantaneous gauge probe."""
        return self.register(Probe(name=name, layer=layer, kind=GAUGE,
                                   fn=fn, tenant=tenant))

    def stat_counter(self, stats, name: str, layer: str,
                     tenant: str = AGGREGATE,
                     metric: Optional[str] = None) -> Probe:
        """Register a probe over a :class:`StatRegistry` counter count.

        ``name`` is the registry counter; ``metric`` overrides the
        exported metric name when they should differ.
        """
        return self.counter(metric or name, layer,
                            lambda: stats.value(name), tenant=tenant)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._probes)

    def __iter__(self) -> Iterator[Probe]:
        return iter(self._probes.values())

    def probes(self, tenant: Optional[str] = None) -> List[Probe]:
        """All probes, optionally filtered to one tenant scope."""
        if tenant is None:
            return list(self._probes.values())
        return [p for p in self._probes.values() if p.tenant == tenant]

    def get(self, name: str, tenant: str = AGGREGATE) -> Probe:
        """The probe registered as (tenant, name)."""
        try:
            return self._probes[(tenant, name)]
        except KeyError:
            raise ConfigError(f"no probe {name!r} for tenant {tenant!r}") \
                from None

    def layers(self) -> List[str]:
        """Distinct layers with at least one probe, sorted."""
        return sorted({probe.layer for probe in self._probes.values()})

    def tenants(self) -> List[str]:
        """Distinct tenant scopes (aggregate first)."""
        scopes = {probe.tenant for probe in self._probes.values()}
        return sorted(scopes, key=lambda s: (s != AGGREGATE, s))

    def sample(self) -> Dict[Tuple[str, str], float]:
        """Read every probe once: {(tenant, name): value}."""
        return {key: probe.read() for key, probe in self._probes.items()}
