"""The telemetry sampler: a sim process that snapshots the whole stack.

Every ``interval_ns`` of *simulated* time the sampler reads each probe in
the :class:`~repro.telemetry.registry.MetricRegistry` into ring-buffered
:class:`~repro.telemetry.registry.Series`, records a SMART health frame
(every ``health_every``-th tick) and evaluates the SLO watchdog bank.

Zero overhead when disabled: no sampler is constructed at all, and a
sampled run only ever *reads* state — counters, gauges, wear tables — so
its simulated event sequence is interleaved with, but never perturbs,
the workload's.  Counter snapshots of a sampled and an unsampled run
with the same seed are byte-identical (CI asserts this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.common.units import MS
from repro.sim.process import Interrupt, Process, spawn
from repro.telemetry.health import DeviceHealthLog
from repro.telemetry.registry import MetricRegistry, Series
from repro.telemetry.watchdog import SloThresholds, TelemetryEvent, WatchdogBank


@dataclass(frozen=True)
class TelemetryConfig:
    """Sampling pipeline knobs."""

    interval_ns: int = 1 * MS
    """Simulated time between samples."""

    max_points: int = 4096
    """Ring-buffer capacity per series (bounded memory on long runs)."""

    health_every: int = 5
    """Record a SMART health frame every this many samples."""

    max_health_frames: int = 1024
    """Health-frame ring capacity."""

    thresholds: SloThresholds = field(default_factory=SloThresholds)
    """SLO watchdog thresholds."""

    def __post_init__(self) -> None:
        if self.interval_ns < 1:
            raise ConfigError("telemetry interval must be >= 1 ns")
        if self.max_points < 2:
            raise ConfigError("telemetry needs >= 2 points per series")
        if self.health_every < 1:
            raise ConfigError("health_every must be >= 1")


class TelemetrySampler:
    """Periodic sampling of one system's registry into time series."""

    def __init__(self, sim: Any, registry: MetricRegistry,
                 config: Optional[TelemetryConfig] = None,
                 health: Optional[DeviceHealthLog] = None,
                 watchdogs: Optional[WatchdogBank] = None,
                 label: str = "run") -> None:
        self.sim = sim
        self.registry = registry
        self.config = config if config is not None else TelemetryConfig()
        self.health = health
        self.watchdogs = watchdogs if watchdogs is not None else WatchdogBank()
        self.label = label
        self.samples = 0
        self.series: Dict[Tuple[str, str], Series] = {}
        for probe in registry:
            self.series[probe.key] = Series(
                name=probe.name, layer=probe.layer, kind=probe.kind,
                tenant=probe.tenant, maxlen=self.config.max_points)
        self._process: Optional[Process] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the sampling daemon (idempotent)."""
        if self._process is None or not self._process.alive:
            self._process = spawn(self.sim, self._loop(), name="telemetry")

    def stop(self) -> None:
        """Interrupt the daemon so the event loop can drain."""
        if self._process is not None and self._process.alive:
            self._process.interrupt("telemetry stopped")
        self._process = None

    def _loop(self) -> Generator[Any, Any, None]:
        try:
            while True:
                yield self.config.interval_ns
                self.sample_once()
        except Interrupt:
            return

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_once(self) -> List[TelemetryEvent]:
        """Take one sample now; returns watchdog edges it produced."""
        t_ns = self.sim.now
        values = self.registry.sample()
        for key, value in values.items():
            self.series[key].append(t_ns, value)
        self.samples += 1
        if self.health is not None and \
                self.samples % self.config.health_every == 0:
            self.health.record(t_ns)
        edges = self.watchdogs.evaluate(t_ns, values)
        recorder = self.sim.flightrec
        if recorder is not None and edges:
            for edge in edges:
                recorder.record(edge.t_ns, "telemetry",
                                f"watchdog_{edge.kind}", None,
                                {"watchdog": edge.watchdog,
                                 "tenant": edge.tenant,
                                 "severity": edge.severity,
                                 "value": edge.value,
                                 "blame": edge.blame})
                # An error-severity FIRED edge is an incident trigger:
                # the SLO did not wobble, something broke.
                if edge.severity == "error" and edge.kind == "fired":
                    recorder.trip(edge.t_ns, "watchdog_error",
                                  {"watchdog": edge.watchdog,
                                   "tenant": edge.tenant,
                                   "value": edge.value})
        return edges

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> List[TelemetryEvent]:
        """Every watchdog edge recorded so far."""
        return self.watchdogs.events

    def get(self, name: str, tenant: str = "") -> Series:
        """The series of one (tenant, metric)."""
        try:
            return self.series[(tenant, name)]
        except KeyError:
            raise ConfigError(f"no series {name!r} for tenant {tenant!r}") \
                from None

    def all_series(self) -> List[Series]:
        """Every series in registration order."""
        return list(self.series.values())

    def layers_covered(self) -> List[str]:
        """Layers with at least one non-empty series."""
        return sorted({s.layer for s in self.series.values() if len(s)})

    def summary_rows(self) -> List[List[Any]]:
        """Per-series overview rows: scope, layer, name, samples, stats."""
        rows: List[List[Any]] = []
        for series in self.series.values():
            low, high = series.minmax()
            rows.append([series.tenant or "aggregate", series.layer,
                         series.name, series.kind, len(series),
                         low, high, series.last() or 0.0])
        return rows

    def health_report(self) -> Optional[Dict[str, Any]]:
        """The final SMART report (None when health is not wired)."""
        if self.health is None:
            return None
        return self.health.report(self.sim.now)
