"""Garbage collection: greedy victim selection and valid-unit migration.

Flash cannot overwrite in place, so invalidated units (old versions,
trimmed journal logs, RMW leftovers, padding) accumulate until GC migrates
a block's remaining valid units elsewhere and erases it.  Every migrated
unit is a flash write the host never asked for — the write amplification
the paper attacks — so the collector is also where the lifetime statistics
of Figure 8(b) and Equation (1) come from.

Shared units (one physical unit referenced by several LPNs after a
remapping checkpoint) are migrated once and every referencing LPN is
repointed at the new location.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.common.errors import DeviceFullError, MediaEraseError
from repro.ftl.allocator import BlockAllocator
from repro.ftl.mapping import SubPageMappingTable
from repro.sim.core import Simulator
from repro.sim.resources import Lock
from repro.sim.stats import StatRegistry

GC_STREAM = "gc"


class GarbageCollector:
    """Greedy garbage collector over one FTL's blocks."""

    def __init__(self, sim: Simulator, ftl: Any,
                 low_watermark: int, high_watermark: int) -> None:
        if low_watermark < 1 or high_watermark < low_watermark:
            raise DeviceFullError(
                "watermarks must satisfy 1 <= low <= high")
        self.sim = sim
        self.ftl = ftl
        self.low_watermark = low_watermark
        self.high_watermark = high_watermark
        self._lock = Lock(sim, name="gc")
        self.stats: StatRegistry = ftl.stats

    # -- policy ----------------------------------------------------------------
    def needs_urgent_collection(self) -> bool:
        """True when the free pool is at or below the low watermark.

        Triggering *at* the watermark (not below it) keeps at least one
        free block in reserve for the GC migration stream itself.
        """
        return self.ftl.allocator.free_block_count <= self.low_watermark

    def wants_background_collection(self) -> bool:
        """True when an idle device should reclaim space opportunistically."""
        return self.ftl.allocator.free_block_count <= self.high_watermark

    def select_victim(self) -> Optional[int]:
        """Wear-aware greedy victim selection; None when no candidate.

        Primary criterion: most invalid units (least migration per
        reclaimed block).  Ties break toward the block with the fewest
        erase cycles — the simple wear-levelling tiebreak
        SimpleSSD-class FTLs apply so hot blocks do not burn out first.
        Blocks with zero invalid units are skipped: erasing them would
        migrate a full block for no gain.
        """
        allocator: BlockAllocator = self.ftl.allocator
        mapping: SubPageMappingTable = self.ftl.mapping
        # Suspect blocks (program-status failures) jump the queue: they
        # must be drained and retired before they can hurt again.
        for block in sorted(allocator.full_blocks & self.ftl.suspect_blocks):
            if not self.ftl.inflight_programs(block):
                return block
        candidates = []
        best_invalid = 0
        for block in allocator.full_blocks:
            if self.ftl.inflight_programs(block):
                continue  # last page still programming; content not readable yet
            written = allocator.written_units.get(block, 0)
            invalid = written - mapping.valid_units(block)
            if invalid > 0:
                candidates.append((block, invalid))
                best_invalid = max(best_invalid, invalid)
        if not candidates:
            return None
        ties = [block for block, invalid in candidates
                if invalid == best_invalid]
        return min(ties,
                   key=lambda block: (self.ftl.array.block(block).erase_count,
                                      block))

    # -- mechanism ----------------------------------------------------------------
    def collect_once(self) -> Generator[Any, Any, bool]:
        """Reclaim one victim block; returns False when nothing to reclaim."""
        yield self._lock.acquire()
        try:
            victim = self.select_victim()
            if victim is None:
                return False
            tracer = self.ftl.sim.tracer
            span = tracer.begin("gc", "collect", block=victim) \
                if tracer.enabled else None
            recorder = self.ftl.sim.flightrec
            if recorder is not None:
                recorder.record(
                    self.ftl.sim.now, "gc", "victim_pick",
                    span.span_id if span is not None else None,
                    {"block": victim,
                     "suspect": victim in self.ftl.suspect_blocks,
                     "free_blocks": self.ftl.allocator.free_block_count})
            yield from self._migrate_and_erase(victim)
            if span is not None:
                tracer.end(span)
            return True
        finally:
            self._lock.release()

    def collect_read_disturbed(self) -> Generator[Any, Any, bool]:
        """Read-reclaim: migrate + erase the most disturbed block, if any.

        Run from the controller's idle loop; returns False when no block
        is past :attr:`~repro.ftl.ftl.FtlConfig.read_reclaim_threshold`.
        """
        yield self._lock.acquire()
        try:
            victim = self.ftl.read_reclaim_candidate()
            if victim is None:
                return False
            tracer = self.ftl.sim.tracer
            span = tracer.begin("gc", "read_reclaim", block=victim) \
                if tracer.enabled else None
            yield from self._migrate_and_erase(victim)
            self.stats.counter("media.read_reclaim").add(1)
            if span is not None:
                tracer.end(span)
            return True
        finally:
            self._lock.release()

    def ensure_free_blocks(self, blame=None) -> Generator[Any, Any, None]:
        """Foreground GC: reclaim until above the low watermark.

        Raises :class:`DeviceFullError` if no victim can be found while
        still below the watermark (the device is genuinely full of valid
        data).

        ``blame`` charges the whole foreground stall (victim migration,
        erase, programming catch-up waits) to ``gc_stall`` — the request
        could not make progress for exactly this window.
        """
        t0 = self.ftl.sim.now if blame is not None else 0
        try:
            while self.needs_urgent_collection():
                reclaimed = yield from self.collect_once()
                if reclaimed:
                    continue
                if self._victims_pending_program():
                    # Candidates exist but their last page is still
                    # programming; wait for the flash to catch up and retry.
                    yield 50_000
                    continue
                if self.ftl.allocator.free_block_count == 0:
                    raise DeviceFullError(
                        "device full: no free block and no GC victim")
                break  # nothing reclaimable, but writes can still proceed
        finally:
            if blame is not None:
                from repro.obs.blame import add_ns
                add_ns(blame, "gc_stall", self.ftl.sim.now - t0)

    def _victims_pending_program(self) -> bool:
        """True when a would-be victim is only blocked by in-flight programs."""
        allocator: BlockAllocator = self.ftl.allocator
        mapping: SubPageMappingTable = self.ftl.mapping
        for block in allocator.full_blocks:
            if not self.ftl.inflight_programs(block):
                continue
            written = allocator.written_units.get(block, 0)
            if written - mapping.valid_units(block) > 0:
                return True
        return False

    def _migrate_and_erase(self, victim: int) -> Generator[Any, Any, None]:
        ftl = self.ftl
        mapping: SubPageMappingTable = ftl.mapping
        geometry = ftl.geometry
        self.stats.counter("gc.invocations").add(1)

        first_page = geometry.first_page_of_block(victim)
        migrated = 0
        for ppa in range(first_page, first_page + geometry.pages_per_block):
            valid_upas = mapping.valid_units_in_page(ppa)
            if not valid_upas:
                continue
            page_data, _page_oob = yield from ftl._read_page_with_retry(ppa)
            self.stats.counter("flash.read.gc").add(1)
            for upa in valid_upas:
                unit_index = mapping.unit_index(upa)
                tag = page_data.get(unit_index) if page_data else None
                referrers = mapping.referrers(upa)
                yield from ftl.relocate_unit(referrers, tag)
                migrated += 1
        self.stats.counter("gc.migrated_units").add(migrated)

        # All valid units are off the victim now; erase and recycle it —
        # unless the media condemned it, in which case retire it.
        if victim in ftl.suspect_blocks:
            # A program-status failure already condemned this block; do
            # not spend an erase (or risk reuse) on it.
            mapping.release_block(victim)
            ftl.retire_block(victim, cause="program_fail")
            return
        try:
            yield from ftl.array.erase_block(victim)
        except MediaEraseError:
            # Erase-status failure: the textbook grown-bad-block event.
            # Stale contents remain but recovery's sequence ordering makes
            # them lose against the migrated copies.
            mapping.release_block(victim)
            ftl.retire_block(victim, cause="erase_fail")
            return
        mapping.release_block(victim)
        ftl.allocator.register_free(victim)
        self.stats.counter("gc.erased_blocks").add(1)
