"""Flash translation layer: sub-page mapping, log allocation, GC, facade."""

from repro.ftl.allocator import BlockAllocator, PageProgram
from repro.ftl.ftl import Ftl, FtlConfig
from repro.ftl.gc import GC_STREAM, GarbageCollector
from repro.ftl.mapping import SubPageMappingTable

__all__ = [
    "BlockAllocator",
    "PageProgram",
    "Ftl",
    "FtlConfig",
    "GC_STREAM",
    "GarbageCollector",
    "SubPageMappingTable",
]
