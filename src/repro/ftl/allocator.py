"""Log-structured physical-space allocation with superblock striping.

The FTL writes strictly out of place: each *stream* (host journal, host
data, GC migration, metadata) fills pages unit by unit.  To exploit the
array's parallelism, a stream stripes consecutive pages across several
*lanes*, each lane an open block on (ideally) a different LUN — the
superblock scheme real controllers use.  Without striping, a sequential
stream would serialize every page program on one plane and cap write
throughput at ``1 / t_PROG``.

Stream separation keeps journal logs physically clustered — which is what
makes the paper's remapping efficient and keeps GC from mixing hot journal
pages with cold data pages.

The allocator does address arithmetic only; the FTL stages unit payloads
and issues the timed page programs that :class:`PageProgram` describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.common.errors import DeviceFullError, FtlError
from repro.flash.geometry import FlashGeometry


@dataclass
class PageProgram:
    """A physical page that became full and must be programmed now."""

    ppa: int
    upas: Tuple[int, ...]
    padded_units: int = 0
    """Units in the page that were sacrificed as padding on a flush."""

    stream: str = ""
    """Qualified stream the page belongs to — lets a program-status
    failure re-issue the units to a fresh page of the same stream."""


@dataclass
class _Lane:
    """One open block of a stream's stripe."""

    block_id: int
    next_unit: int = 0  # unit offset within the block
    staged: List[int] = field(default_factory=list)  # upas in the open page


class _StreamState:
    __slots__ = ("lanes", "turn")

    def __init__(self, width: int) -> None:
        self.lanes: List[Optional[_Lane]] = [None] * width
        self.turn = 0


def default_stripe_width(geometry: FlashGeometry) -> int:
    """Stripe lanes per stream: the LUN count, bounded so tiny test
    devices are not starved by open blocks (several streams each hold up
    to ``width`` blocks open)."""
    return max(1, min(geometry.num_luns, geometry.total_blocks // 16))


class BlockAllocator:
    """Free-block pool plus per-stream striped write points."""

    def __init__(self, geometry: FlashGeometry, units_per_page: int,
                 stripe_width: int = 0) -> None:
        if units_per_page < 1:
            raise FtlError("units_per_page must be >= 1")
        if geometry.page_size % units_per_page != 0:
            raise FtlError("units_per_page must divide the page size")
        self.geometry = geometry
        self.units_per_page = units_per_page
        self.units_per_block = units_per_page * geometry.pages_per_block
        self.stripe_width = stripe_width if stripe_width > 0 \
            else default_stripe_width(geometry)
        # Free blocks segregated per LUN so lanes can spread across planes.
        self._free_per_lun: Dict[int, List[int]] = {
            lun: [] for lun in range(geometry.num_luns)}
        for block in range(geometry.total_blocks - 1, -1, -1):
            self._free_per_lun[geometry.lun_of_block(block)].append(block)
        self._free_count = geometry.total_blocks
        self._streams: Dict[str, _StreamState] = {}
        self._full_blocks: Set[int] = set()
        self.written_units: Dict[int, int] = {}
        self.padded_units_total = 0

    # -- pool state ---------------------------------------------------------
    @property
    def free_block_count(self) -> int:
        """Blocks immediately available for allocation."""
        return self._free_count

    @property
    def full_blocks(self) -> Set[int]:
        """Blocks completely written — the GC victim candidates."""
        return set(self._full_blocks)

    def active_block_ids(self) -> Set[int]:
        """Blocks currently open for writing (excluded from GC)."""
        active: Set[int] = set()
        for state in self._streams.values():
            for lane in state.lanes:
                if lane is not None:
                    active.add(lane.block_id)
        return active

    def limit_stripe_width(self, width: int) -> None:
        """Clamp the lane count used by streams opened from now on.

        Multi-tenant configurations divide the stripe between namespaces:
        every tenant's qualified streams ("ns0.data", "ns1.journal", ...)
        would otherwise each hold ``stripe_width`` blocks open and starve
        the free pool on small devices.  Existing streams keep their lanes.
        """
        if width < 1:
            raise FtlError(f"stripe width must be >= 1, got {width}")
        self.stripe_width = min(self.stripe_width, width)

    def register_free(self, block: int) -> None:
        """Return an erased block to the pool."""
        self.geometry.check_block(block)
        lun = self.geometry.lun_of_block(block)
        if block in self._free_per_lun[lun]:
            raise FtlError(f"block {block} already free")
        self._full_blocks.discard(block)
        self.written_units.pop(block, None)
        self._free_per_lun[lun].append(block)
        self._free_count += 1

    def retire(self, block: int) -> None:
        """Drop a grown-bad block from all pools — it is never reused.

        The block must not be free or open for writing; retirement
        happens after GC has migrated its valid units.
        """
        self.geometry.check_block(block)
        lun = self.geometry.lun_of_block(block)
        if block in self._free_per_lun[lun]:
            raise FtlError(f"cannot retire free block {block}")
        self._full_blocks.discard(block)
        self.written_units.pop(block, None)

    # -- allocation ------------------------------------------------------------
    def allocate(self, stream: str,
                 n_units: int) -> Tuple[List[int], List[PageProgram]]:
        """Reserve ``n_units`` units for ``stream``.

        Returns ``(upas, programs)``: the assigned unit addresses in order,
        and the page programs whose pages became completely full.  Pages
        rotate across the stream's stripe lanes so consecutive programs
        land on different LUNs.  Units in a still-open page stay buffered
        in controller RAM (capacitor-backed) until the page fills or the
        stream is flushed.

        Raises :class:`DeviceFullError` when the free pool runs dry; the
        caller is expected to garbage-collect and retry.
        """
        if n_units < 1:
            raise FtlError(f"must allocate at least one unit, got {n_units}")
        upas: List[int] = []
        programs: List[PageProgram] = []
        state = self._streams.get(stream)
        if state is None:
            state = _StreamState(self.stripe_width)
            self._streams[stream] = state
        for _ in range(n_units):
            lane = self._current_lane(stream, state)
            upa = (lane.block_id * self.units_per_block) + lane.next_unit
            lane.next_unit += 1
            lane.staged.append(upa)
            self.written_units[lane.block_id] = \
                self.written_units.get(lane.block_id, 0) + 1
            upas.append(upa)
            if len(lane.staged) == self.units_per_page:
                programs.append(self._close_page(stream, state, lane,
                                                 padded=0))
        return upas, programs

    def flush(self, stream: str) -> List[PageProgram]:
        """Force out every open partial page of ``stream`` (pads tails)."""
        state = self._streams.get(stream)
        if state is None:
            return []
        programs: List[PageProgram] = []
        for lane in state.lanes:
            if lane is None or not lane.staged:
                continue
            padding = self.units_per_page - len(lane.staged)
            self.written_units[lane.block_id] = \
                self.written_units.get(lane.block_id, 0) + padding
            self.padded_units_total += padding
            lane.next_unit += padding
            programs.append(self._close_page(stream, state, lane,
                                             padded=padding))
        return programs

    def staged_units(self, stream: str) -> Tuple[int, ...]:
        """Unit addresses currently buffered in open pages of ``stream``."""
        state = self._streams.get(stream)
        if state is None:
            return ()
        staged: List[int] = []
        for lane in state.lanes:
            if lane is not None:
                staged.extend(lane.staged)
        return tuple(staged)

    # -- internals ---------------------------------------------------------------
    def _current_lane(self, stream: str, state: _StreamState) -> _Lane:
        lane = state.lanes[state.turn]
        if lane is not None:
            return lane
        block = self._take_free_block(state)
        if block is None:
            raise DeviceFullError(
                f"no free blocks for stream '{stream}' "
                f"(full={len(self._full_blocks)})")
        fresh = _Lane(block)
        state.lanes[state.turn] = fresh
        return fresh

    def _take_free_block(self, state: _StreamState) -> Optional[int]:
        if self._free_count == 0:
            return None
        # Prefer LUNs this stream's other lanes are not already using.
        used_luns = {self.geometry.lun_of_block(lane.block_id)
                     for lane in state.lanes if lane is not None}
        best_lun = None
        best_score: Tuple[int, int] = (-1, -1)
        for lun, pool in self._free_per_lun.items():
            if not pool:
                continue
            score = (1 if lun not in used_luns else 0, len(pool))
            if score > best_score:
                best_score = score
                best_lun = lun
        if best_lun is None:
            return None
        self._free_count -= 1
        return self._free_per_lun[best_lun].pop()

    def _close_page(self, stream: str, state: _StreamState, lane: _Lane,
                    padded: int) -> PageProgram:
        first_upa = lane.staged[0]
        ppa = first_upa // self.units_per_page
        program = PageProgram(ppa=ppa, upas=tuple(lane.staged),
                              padded_units=padded, stream=stream)
        lane.staged = []
        lane_index = state.lanes.index(lane)
        if lane.next_unit >= self.units_per_block:
            self._full_blocks.add(lane.block_id)
            state.lanes[lane_index] = None
        # Advance the stripe: the next page goes to the next lane.
        state.turn = (lane_index + 1) % len(state.lanes)
        return program
