"""Sub-page mapping table with shared physical units.

The paper's remapping checkpoint (§III-D) relies on two FTL properties:

1. the mapping granularity (*mapping unit*) can be smaller than the
   physical page — e.g. one 512 B sector inside a 4 KiB page; and
2. several logical pages may reference the *same* physical unit, so a
   checkpoint can alias a data-area LPN onto the physical unit already
   holding the journal log ("the data stays physically in place but is
   referenced by the checkpoint logically").

Addresses:

* ``lpn`` — logical page number at mapping-unit granularity
  (``lba * 512 // mapping_unit``)
* ``upa`` — unit physical address: ``ppa * units_per_page + unit_index``

The table also maintains per-block valid-unit counts, which is what the
garbage collector uses for victim selection and what the invalid-page
statistics in Figure 8 derive from.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from repro.common.errors import FtlError


class SubPageMappingTable:
    """LPN → physical-unit map with reference counting."""

    __slots__ = ("units_per_page", "pages_per_block", "units_per_block",
                 "_l2p", "_p2l", "_valid_per_block")

    def __init__(self, units_per_page: int, pages_per_block: int) -> None:
        if units_per_page < 1 or pages_per_block < 1:
            raise FtlError("units_per_page and pages_per_block must be >= 1")
        self.units_per_page = units_per_page
        self.pages_per_block = pages_per_block
        self.units_per_block = units_per_page * pages_per_block
        self._l2p: Dict[int, int] = {}
        self._p2l: Dict[int, Set[int]] = {}
        self._valid_per_block: Dict[int, int] = {}

    # -- address helpers ----------------------------------------------------
    def block_of_unit(self, upa: int) -> int:
        """Erase block containing physical unit ``upa``."""
        return upa // self.units_per_block

    def page_of_unit(self, upa: int) -> int:
        """Physical page (ppa) containing ``upa``."""
        return upa // self.units_per_page

    def unit_index(self, upa: int) -> int:
        """Index of ``upa`` within its physical page."""
        return upa % self.units_per_page

    # -- queries --------------------------------------------------------------
    def lookup(self, lpn: int) -> Optional[int]:
        """Physical unit currently mapped to ``lpn``, or None."""
        return self._l2p.get(lpn)

    def is_mapped(self, lpn: int) -> bool:
        """True when ``lpn`` has a physical unit."""
        return lpn in self._l2p

    def referrers(self, upa: int) -> FrozenSet[int]:
        """Every LPN referencing physical unit ``upa``."""
        return frozenset(self._p2l.get(upa, ()))

    def refcount(self, upa: int) -> int:
        """Number of LPNs referencing ``upa`` (0 when invalid/free)."""
        return len(self._p2l.get(upa, ()))

    def is_shared(self, upa: int) -> bool:
        """True when more than one LPN references ``upa``."""
        return self.refcount(upa) > 1

    def valid_units(self, block: int) -> int:
        """Number of referenced physical units in ``block``."""
        return self._valid_per_block.get(block, 0)

    def valid_units_in_page(self, ppa: int) -> Tuple[int, ...]:
        """The referenced unit addresses inside physical page ``ppa``."""
        base = ppa * self.units_per_page
        return tuple(upa for upa in range(base, base + self.units_per_page)
                     if upa in self._p2l)

    @property
    def mapped_lpn_count(self) -> int:
        """Total mapped logical pages (mapping-table footprint)."""
        return len(self._l2p)

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(lpn, upa)`` pairs (snapshot-safe copy)."""
        return iter(list(self._l2p.items()))

    def reverse_items(self) -> Iterator[Tuple[int, FrozenSet[int]]]:
        """Iterate ``(upa, referrers)`` pairs (snapshot-safe copy).

        Exposed for invariant checking: the reverse map must always equal
        the inversion of the forward map.
        """
        return iter([(upa, frozenset(refs))
                     for upa, refs in self._p2l.items()])

    def valid_counts(self) -> Dict[int, int]:
        """Copy of the per-block valid-unit counters (invariant checking)."""
        return dict(self._valid_per_block)

    # -- mutations --------------------------------------------------------------
    def map(self, lpn: int, upa: int) -> None:
        """Point ``lpn`` at ``upa``, releasing any previous mapping."""
        if upa < 0:
            raise FtlError(f"invalid unit address {upa}")
        previous = self._l2p.get(lpn)
        if previous == upa:
            return
        if previous is not None:
            self._drop_reference(lpn, previous)
        self._l2p[lpn] = upa
        refs = self._p2l.get(upa)
        if refs is None:
            self._p2l[upa] = {lpn}
            block = self.block_of_unit(upa)
            self._valid_per_block[block] = self._valid_per_block.get(block, 0) + 1
        else:
            refs.add(lpn)

    def unmap(self, lpn: int) -> Optional[int]:
        """Remove ``lpn``'s mapping; returns the released unit (or None)."""
        upa = self._l2p.pop(lpn, None)
        if upa is not None:
            self._drop_reference(lpn, upa)
        return upa

    def share(self, src_lpn: int, dst_lpn: int) -> int:
        """Alias ``dst_lpn`` onto ``src_lpn``'s physical unit (the remap).

        Returns the shared unit address.  This is the zero-copy checkpoint
        primitive of Algorithm 1.
        """
        upa = self._l2p.get(src_lpn)
        if upa is None:
            raise FtlError(f"cannot share unmapped lpn {src_lpn}")
        self.map(dst_lpn, upa)
        return upa

    def release_block(self, block: int) -> None:
        """Forget validity bookkeeping for an erased, fully-invalid block."""
        count = self._valid_per_block.get(block, 0)
        if count != 0:
            raise FtlError(
                f"block {block} still has {count} valid units; GC must "
                "migrate them before erase")
        self._valid_per_block.pop(block, None)

    def _drop_reference(self, lpn: int, upa: int) -> None:
        refs = self._p2l.get(upa)
        if refs is None or lpn not in refs:
            raise FtlError(f"reverse map corrupt: lpn {lpn} not in refs of {upa}")
        refs.remove(lpn)
        if not refs:
            del self._p2l[upa]
            block = self.block_of_unit(upa)
            remaining = self._valid_per_block.get(block, 0) - 1
            if remaining < 0:
                raise FtlError(f"negative valid count for block {block}")
            if remaining == 0:
                self._valid_per_block.pop(block, None)
            else:
                self._valid_per_block[block] = remaining

    # -- persistence support -------------------------------------------------
    def snapshot(self) -> Dict[int, int]:
        """A copy of the full L2P table (metadata checkpoint)."""
        return dict(self._l2p)

    def restore(self, table: Dict[int, int]) -> None:
        """Replace the entire mapping state from a snapshot."""
        self._l2p.clear()
        self._p2l.clear()
        self._valid_per_block.clear()
        for lpn, upa in table.items():
            self.map(lpn, upa)
