"""The flash translation layer facade.

Responsibilities (mirroring the SimpleSSD FTL the paper modified):

* host-sector address translation onto mapping units (sub-page mapping,
  §III-D — the unit size is configurable from 512 B up to the page size);
* log-structured out-of-place writes with per-stream active blocks and a
  capacitor-backed open-page buffer (writes ack once staged, pages program
  asynchronously, back-pressure through a bounded write buffer);
* read-modify-write when a host write covers only part of a mapped unit —
  the *internal write amplification* of Figures 3(a) and 8;
* the **remap** primitive used by the in-storage checkpoint (Algorithm 1):
  aliasing a data-area LPN onto the physical unit of a journal log;
* physical unit copies (for the ISC-A/ISC-B configurations that offload
  checkpointing but still copy data inside the device);
* trim/deallocate, greedy GC, wear accounting, and periodic mapping-table
  persistence to flash.

All timed entry points are generator helpers for ``yield from`` inside a
simulation process.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Generator, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import (
    ConfigError,
    DeviceFullError,
    FtlError,
    MediaProgramError,
    MediaReadError,
)
from repro.common.units import MIB, SECTOR_SIZE, ceil_div
from repro.flash.array import FlashArray
from repro.flash.geometry import FlashGeometry
from repro.ftl.allocator import BlockAllocator, PageProgram
from repro.ftl.gc import GarbageCollector
from repro.ftl.mapping import SubPageMappingTable
from repro.obs.blame import add_ns
from repro.sim.core import Simulator, all_of
from repro.sim.process import spawn
from repro.sim.resources import Resource
from repro.sim.stats import StatRegistry

SectorTag = Any
UnitTags = Tuple[SectorTag, ...]


@dataclass(frozen=True)
class FtlConfig:
    """Tunables of the translation layer."""

    mapping_unit: int = 4096
    """Mapping granularity in bytes (512 = the Check-In sub-page unit)."""

    gc_low_watermark: int = 2
    """Foreground GC kicks in below this many free blocks."""

    gc_high_watermark: int = 4
    """Background GC target: idle device reclaims up to this level."""

    write_buffer_bytes: int = 2 * MIB
    """Capacitor-backed staging buffer capacity in bytes (converted to
    mapping units at construction, so all configurations get the same
    DRAM regardless of mapping granularity)."""

    map_update_ns: int = 60
    """DRAM mapping-table update cost per entry."""

    remap_entry_ns: int = 150
    """Cost to process one CoW remap entry (lookup + two map updates)."""

    staged_read_ns: int = 800
    """Serving a read from the controller staging buffer."""

    stripe_width: int = 0
    """Stripe lanes per write stream (0 = auto from the geometry)."""

    meta_entry_bytes: int = 8
    """Persisted size of one dirty mapping entry."""

    map_cache_bytes: int = 256 * 1024
    """DFTL-style map cache: mapping-table pages resident in device DRAM.
    A host op touching an LPN whose map page is not cached pays a flash
    read first (0 disables the model).  Smaller mapping units mean more
    entries, a larger table and more misses — the metadata overhead the
    Figure 13(a) sensitivity study varies."""

    max_pe_cycles: int = 3000
    """Block endurance used for lifetime estimates (Equation 1)."""

    snapshot_metadata: bool = True
    """Keep a copy of the L2P table at each persistence point so crash
    recovery can be exercised; benchmarks disable this to save memory."""

    track_op_log: bool = False
    """Record remap/trim operations (with sequence numbers) so the OOB
    power-loss-recovery scan can be verified to rebuild the exact mapping
    (§III-G).  Off by default — costs memory proportional to run length."""

    spare_block_budget: int = 8
    """Grown-bad blocks tolerated before the device drops to read-only
    degraded mode.  Real drives carry spare blocks outside the exported
    capacity for exactly this; once the budget is exhausted the device
    can no longer guarantee out-of-place writes."""

    read_reissue_limit: int = 4
    """FTL-level re-issues of a page read whose in-array retry ladder
    exhausted (UECC).  Each re-issue draws fresh retry levels, which is
    how transient UECCs recover."""

    read_reclaim_threshold: int = 100_000
    """Reads-since-erase beyond which a full block is proactively
    migrated and erased (read-disturb reclaim).  The high default keeps
    the scrubber out of the way of ordinary runs."""

    relocate_attempt_limit: int = 8
    """Back-to-back program failures tolerated while relocating one
    page's units before the device degrades to read-only."""

    def __post_init__(self) -> None:
        if self.mapping_unit % SECTOR_SIZE != 0:
            raise ConfigError("mapping_unit must be a multiple of 512")
        if self.mapping_unit < SECTOR_SIZE:
            raise ConfigError("mapping_unit must be >= 512")
        if self.write_buffer_bytes < self.mapping_unit:
            raise ConfigError("write_buffer_bytes must hold at least one unit")
        if self.spare_block_budget < 0:
            raise ConfigError("spare_block_budget must be >= 0")
        if self.read_reissue_limit < 0:
            raise ConfigError("read_reissue_limit must be >= 0")
        if self.read_reclaim_threshold < 1:
            raise ConfigError("read_reclaim_threshold must be >= 1")
        if self.relocate_attempt_limit < 1:
            raise ConfigError("relocate_attempt_limit must be >= 1")


class Ftl:
    """Sub-page-mapped, log-structured flash translation layer."""

    def __init__(self, sim: Simulator, array: FlashArray,
                 config: Optional[FtlConfig] = None) -> None:
        self.sim = sim
        self.array = array
        self.geometry: FlashGeometry = array.geometry
        self.config = config if config is not None else FtlConfig()
        if self.config.mapping_unit > self.geometry.page_size:
            raise ConfigError("mapping_unit cannot exceed the page size")
        if self.geometry.page_size % self.config.mapping_unit != 0:
            raise ConfigError("mapping_unit must divide the page size")
        self.stats: StatRegistry = array.stats
        array.max_pe_cycles = None  # endurance tracked statistically, not fatal

        self.units_per_page = self.geometry.page_size // self.config.mapping_unit
        self.sectors_per_unit = self.config.mapping_unit // SECTOR_SIZE
        self.mapping = SubPageMappingTable(self.units_per_page,
                                           self.geometry.pages_per_block)
        self.allocator = BlockAllocator(self.geometry, self.units_per_page,
                                        stripe_width=self.config.stripe_width)
        self.gc = GarbageCollector(sim, self,
                                   self.config.gc_low_watermark,
                                   self.config.gc_high_watermark)
        buffer_units = max(64, self.config.write_buffer_bytes
                           // self.config.mapping_unit)
        self._write_buffer = Resource(sim, buffer_units, name="write-buffer")
        self._staged_tags: Dict[int, UnitTags] = {}
        self._staged_oob: Dict[int, Any] = {}
        self._buffer_held: set = set()  # upas holding a write-buffer slot
        self._inflight_per_block: Dict[int, int] = {}
        self._write_seq = 0
        self._dirty_map_entries = 0
        self._persisted_snapshot: Dict[int, int] = {}
        self._map_entries_per_page = max(
            1, self.geometry.page_size // self.config.meta_entry_bytes)
        self._map_cache_pages = (self.config.map_cache_bytes
                                 // self.geometry.page_size)
        self._map_cache: "OrderedDict[int, None]" = OrderedDict()
        self._lpn_locks: Dict[int, Resource] = {}
        # Per-unit hot path: the config is frozen and counters are
        # get-or-create, so resolve the per-write costs and counter
        # objects once instead of per operation.
        self._map_update_ns = self.config.map_update_ns
        self._staged_read_ns = self.config.staged_read_ns
        self._mapping_unit = self.config.mapping_unit
        self._map_miss_counter = self.stats.counter("ftl.map_miss")
        self._unit_write_counters: Dict[str, Any] = {}
        self._unit_rmw_counters: Dict[str, Any] = {}
        self.grown_bad: set = set()
        """Blocks retired for media failures — never allocated again."""
        self.suspect_blocks: set = set()
        """Blocks that saw a program-status failure; retired (instead of
        erased) at their next GC visit."""
        self.read_only = False
        """Degraded mode: the device stopped accepting mutations."""
        self.degraded_reason = ""
        self.op_log: Optional[List[Tuple[int, str, int, int]]] = \
            [] if self.config.track_op_log else None
        """Durable mapping operations as ``(seq, op, a, b)``; 'remap' carries
        (src_lpn, dst_lpn), 'trim' carries (lpn, 0)."""
        self._ns_ranges: List[Tuple[int, int, int]] = []
        """Namespace unit ranges as ``(nsid, first_lpn, end_lpn)`` sorted by
        first LPN; empty = single-tenant device."""
        self._ns_starts: List[int] = []

    # ------------------------------------------------------------------
    # namespaces
    # ------------------------------------------------------------------
    def set_namespaces(self,
                       unit_ranges: Sequence[Tuple[int, int, int]]) -> None:
        """Partition the LPN space as ``(nsid, first_lpn, num_lpns)`` tuples.

        Write streams become namespace-qualified (``"ns0.data"``, ...), so
        every flash page holds units of exactly one tenant: GC victims,
        padding and remap targets never mix namespaces.  The shared "meta"
        stream stays device-wide (the mapping table is one structure).
        """
        ordered = sorted(unit_ranges, key=lambda r: r[1])
        ranges: List[Tuple[int, int, int]] = []
        for nsid, first, count in ordered:
            if count < 1 or first < 0:
                raise FtlError(
                    f"namespace {nsid} needs first_lpn >= 0, num_lpns >= 1")
            if ranges and first < ranges[-1][2]:
                raise FtlError(
                    f"namespace {nsid} overlaps namespace {ranges[-1][0]}")
            ranges.append((nsid, first, first + count))
        self._ns_ranges = ranges
        self._ns_starts = [first for _nsid, first, _end in ranges]

    @property
    def namespaced(self) -> bool:
        """True when the LPN space is partitioned into namespaces."""
        return bool(self._ns_ranges)

    def nsid_of_lpn(self, lpn: int) -> Optional[int]:
        """Namespace owning ``lpn`` (None when unowned / single-tenant)."""
        if not self._ns_ranges:
            return None
        index = bisect.bisect_right(self._ns_starts, lpn) - 1
        if index < 0:
            return None
        nsid, _first, end = self._ns_ranges[index]
        return nsid if lpn < end else None

    def _qualify(self, stream: str, lpn: int) -> str:
        """The allocation stream for ``stream`` traffic against ``lpn``."""
        if not self._ns_ranges or stream == "meta":
            return stream
        nsid = self.nsid_of_lpn(lpn)
        return stream if nsid is None else f"ns{nsid}.{stream}"

    # ------------------------------------------------------------------
    # address helpers
    # ------------------------------------------------------------------
    def lpn_of_lba(self, lba: int) -> int:
        """Logical page (mapping unit) containing sector ``lba``."""
        if lba < 0:
            raise FtlError(f"negative lba {lba}")
        return lba // self.sectors_per_unit

    def lpn_span(self, lba: int, nsectors: int) -> range:
        """All LPNs touched by the sector range."""
        if nsectors < 1:
            raise FtlError(f"nsectors must be >= 1, got {nsectors}")
        first = self.lpn_of_lba(lba)
        last = self.lpn_of_lba(lba + nsectors - 1)
        return range(first, last + 1)

    def inflight_programs(self, block: int) -> int:
        """Page programs currently executing against ``block``."""
        return self._inflight_per_block.get(block, 0)

    # ------------------------------------------------------------------
    # per-LPN write serialisation
    # ------------------------------------------------------------------
    def _acquire_lpns(self, lpns: List[int]) -> Generator[Any, Any, None]:
        """Serialise concurrent writers of the same logical pages.

        A read-modify-write that overlaps another writer's RMW on the same
        unit would otherwise lose the earlier merge (both start from the
        same old content).  Locks are taken in sorted order, so overlapping
        writers cannot deadlock.
        """
        for lpn in lpns:
            lock = self._lpn_locks.get(lpn)
            if lock is None:
                lock = Resource(self.sim, 1, name=f"lpn{lpn}")
                self._lpn_locks[lpn] = lock
            yield lock.acquire()

    def _release_lpns(self, lpns: List[int]) -> None:
        for lpn in lpns:
            lock = self._lpn_locks[lpn]
            lock.release()
            if lock.in_use == 0 and lock.queue_length == 0:
                del self._lpn_locks[lpn]

    # ------------------------------------------------------------------
    # DFTL map cache
    # ------------------------------------------------------------------
    def touch_map(self, lpns: Iterable[int]) -> Generator[Any, Any, None]:
        """Ensure the map pages covering ``lpns`` are cached (miss = read).

        The mapping store itself is modelled logically; a miss costs one
        timed flash read on the map page's home LUN and evicts LRU pages.
        """
        if self._map_cache_pages <= 0:
            return
        misses: List[int] = []
        for lpn in lpns:
            map_page = lpn // self._map_entries_per_page
            if map_page in self._map_cache:
                self._map_cache.move_to_end(map_page)
            else:
                self._map_cache[map_page] = None
                misses.append(map_page)
                while len(self._map_cache) > self._map_cache_pages:
                    self._map_cache.popitem(last=False)
        for map_page in misses:
            yield from self.array.mapping_read(
                map_page % self.geometry.num_luns)
            self._map_miss_counter.add(1)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def write(self, lba: int, nsectors: int,
              tags: Optional[Sequence[SectorTag]] = None,
              stream: str = "data",
              cause: str = "host",
              blame: Optional[Dict[str, int]] = None
              ) -> Generator[Any, Any, None]:
        """Timed host-style write of ``nsectors`` sectors at ``lba``.

        ``tags`` carries one opaque tag per sector (or None).  Completion
        means every unit is staged in the protected buffer; page programs
        for filled pages run asynchronously with back-pressure.
        """
        if tags is not None and len(tags) != nsectors:
            raise FtlError(f"expected {nsectors} sector tags, got {len(tags)}")
        tracer = self.sim.tracer
        span = tracer.begin("ftl", "write", lba=lba, nsectors=nsectors,
                            bytes=nsectors * 512, stream=stream,
                            cause=cause) \
            if tracer.enabled else None
        locked = list(self.lpn_span(lba, nsectors))  # range is ascending
        t0 = self.sim.now if blame is not None else 0
        yield from self._acquire_lpns(locked)
        if blame is not None:
            add_ns(blame, "ftl_map", self.sim.now - t0)
        try:
            yield from self._locked_write(lba, nsectors, tags, stream, cause,
                                          blame)
        finally:
            self._release_lpns(locked)
            if span is not None:
                tracer.end(span)

    def _locked_write(self, lba: int, nsectors: int,
                      tags: Optional[Sequence[SectorTag]],
                      stream: str, cause: str,
                      blame: Optional[Dict[str, int]] = None
                      ) -> Generator[Any, Any, None]:
        span = self.lpn_span(lba, nsectors)
        t0 = self.sim.now if blame is not None else 0
        yield from self.touch_map(span)
        if blame is not None:
            add_ns(blame, "ftl_map", self.sim.now - t0)

        plan: List[Tuple[int, UnitTags, bool]] = []  # (lpn, unit tags, is_rmw)
        rmw_pages: List[int] = []
        staged_old: Dict[int, UnitTags] = {}  # snapshot against de-staging races
        for lpn in span:
            unit_first_lba = lpn * self.sectors_per_unit
            start = max(lba, unit_first_lba)
            end = min(lba + nsectors, unit_first_lba + self.sectors_per_unit)
            full_cover = (end - start) == self.sectors_per_unit
            old_upa = self.mapping.lookup(lpn)
            is_rmw = (not full_cover) and old_upa is not None
            if is_rmw:
                staged = self._staged_tags.get(old_upa)
                if staged is not None:
                    staged_old[lpn] = staged
                else:
                    rmw_pages.append(self.mapping.page_of_unit(old_upa))
            plan.append((lpn, (start, end), is_rmw))

        # Read-modify-write: fetch every old page once, in parallel.
        old_pages: Dict[int, Any] = {}
        if rmw_pages:
            if blame is not None:
                t0, busy0 = self.sim.now, self.array.ckpt_busy_ns()
            yield from self._read_pages_parallel(sorted(set(rmw_pages)), old_pages)
            if blame is not None:
                self._charge_flash_wait(blame, "flash_read", t0, busy0)
            self.stats.counter("ftl.rmw_reads").add(len(set(rmw_pages)))

        unit_tags_list: List[UnitTags] = []
        oob_list: List[Any] = []
        rmw_units = 0
        for lpn, (start, end), is_rmw in plan:
            unit_first_lba = lpn * self.sectors_per_unit
            merged: List[SectorTag] = [None] * self.sectors_per_unit
            if is_rmw:
                rmw_units += 1
                old = staged_old.get(lpn)
                if old is None:
                    old = self._old_unit_tags(lpn, old_pages)
                if old is not None:
                    merged = list(old)
            for sector in range(start, end):
                tag = tags[sector - lba] if tags is not None else None
                merged[sector - unit_first_lba] = tag
            self._write_seq += 1
            unit_tags_list.append(tuple(merged))
            oob_list.append(((lpn, self._write_seq),))

        lpns = [entry[0] for entry in plan]
        yield from self._write_units(lpns, unit_tags_list, oob_list,
                                     stream=stream, cause=cause, blame=blame)
        if rmw_units:
            counter = self._unit_rmw_counters.get(cause)
            if counter is None:
                counter = self.stats.counter(f"ftl.units.rmw.{cause}")
                self._unit_rmw_counters[cause] = counter
            counter.add(rmw_units, num_bytes=rmw_units * self._mapping_unit)

    def _old_unit_tags(self, lpn: int, old_pages: Dict[int, Any]) -> Optional[UnitTags]:
        upa = self.mapping.lookup(lpn)
        if upa is None:
            return None
        staged = self._staged_tags.get(upa)
        if staged is not None:
            return staged
        page_data = old_pages.get(self.mapping.page_of_unit(upa))
        if page_data is None:
            return None
        return page_data.get(self.mapping.unit_index(upa))

    def _charge_flash_wait(self, blame: Dict[str, int], category: str,
                           t0: int, busy0: int) -> None:
        """Split one measured flash wait between its service category
        and ``ckpt_interference``.

        The portion of the window that overlapped device-wide checkpoint
        activity (diff of the array's busy clock) is the storm's fault:
        the LUNs and staging slots this request queued for were occupied
        by checkpoint traffic.  The two charges sum exactly to the
        window, preserving blame conservation.
        """
        window = self.sim.now - t0
        overlap = min(window, self.array.ckpt_busy_ns() - busy0)
        add_ns(blame, "ckpt_interference", overlap)
        add_ns(blame, category, window - overlap)

    def _write_units(self, lpns: Sequence[int], unit_tags: Sequence[UnitTags],
                     oobs: Sequence[Any], stream: str, cause: str,
                     blame: Optional[Dict[str, int]] = None
                     ) -> Generator[Any, Any, None]:
        """Allocate, stage and (asynchronously) program the given units."""
        is_ckpt = cause.startswith("ckpt")
        for index, lpn in enumerate(lpns):
            if self.gc.needs_urgent_collection():
                yield from self.gc.ensure_free_blocks(blame=blame)
            if blame is not None:
                t0, busy0 = self.sim.now, self.array.ckpt_busy_ns()
            yield self._write_buffer.acquire()
            if blame is not None:
                # Waiting for a staging slot = backpressure from in-flight
                # page programs (checkpoint-coincident wait splits out).
                self._charge_flash_wait(blame, "flash_program", t0, busy0)
            upas, programs = self.allocator.allocate(
                self._qualify(stream, lpn), 1)
            upa = upas[0]
            self._buffer_held.add(upa)
            self._staged_tags[upa] = unit_tags[index]
            self._staged_oob[upa] = oobs[index]
            self.mapping.map(lpn, upa)
            self._note_dirty_entries(1)
            for program in programs:
                self._launch_program(program, ckpt=is_ckpt)
            yield self._map_update_ns
            if blame is not None:
                add_ns(blame, "ftl_map", self._map_update_ns)
        count = len(lpns)
        counter = self._unit_write_counters.get(cause)
        if counter is None:
            counter = self.stats.counter(f"ftl.units.write.{cause}")
            self._unit_write_counters[cause] = counter
        counter.add(count, num_bytes=count * self._mapping_unit)

    def _launch_program(self, program: PageProgram, attempt: int = 0,
                        ckpt: bool = False) -> None:
        """Fire an asynchronous page program for a freshly filled page.

        ``ckpt`` marks checkpoint-machinery programs: they run on the
        array's checkpoint-activity clock, so flash waits that overlap
        them are blamed on the checkpoint, not on plain service time.
        """
        block = self.geometry.block_of_page(program.ppa)
        self._inflight_per_block[block] = self._inflight_per_block.get(block, 0) + 1
        spawn(self.sim, self._program_page_proc(program, attempt, ckpt),
              name=f"program@{program.ppa}")

    def _dec_inflight(self, block: int) -> None:
        remaining = self._inflight_per_block.get(block, 0) - 1
        if remaining <= 0:
            self._inflight_per_block.pop(block, None)
        else:
            self._inflight_per_block[block] = remaining

    def _destage(self, upa: int) -> None:
        """Drop a unit from the staging buffer, freeing its slot if held."""
        self._staged_tags.pop(upa, None)
        self._staged_oob.pop(upa, None)
        if upa in self._buffer_held:
            self._buffer_held.discard(upa)
            self._write_buffer.release()

    def _program_page_proc(self, program: PageProgram, attempt: int = 0,
                           ckpt: bool = False) -> Generator[Any, Any, None]:
        data = {}
        oob: List[Any] = [None] * self.units_per_page
        for upa in program.upas:
            unit_index = self.mapping.unit_index(upa)
            data[unit_index] = self._staged_tags.get(upa)
            oob[unit_index] = self._staged_oob.get(upa)
        block = self.geometry.block_of_page(program.ppa)
        try:
            yield from self.array.program_page(program.ppa, data, oob,
                                               ckpt=ckpt)
        except MediaProgramError:
            # The page is consumed but verified bad.  Units stay staged
            # (capacitor-backed — nothing acknowledged is lost) and are
            # re-issued to fresh pages below.
            self._dec_inflight(block)
            yield from self._relocate_failed_program(program, attempt)
            return
        self._dec_inflight(block)
        for upa in program.upas:
            self._destage(upa)
        if program.padded_units:
            self.stats.counter("ftl.units.padding").add(program.padded_units)
        yield from self._maybe_persist_metadata()

    def _relocate_failed_program(self, program: PageProgram,
                                 attempt: int) -> Generator[Any, Any, None]:
        """Re-issue a failed page's still-referenced units to fresh pages.

        The failed block is marked suspect (retired at its next GC visit).
        Each live unit is staged at a new address *before* the old one is
        de-staged, and the old unit's write-buffer slot transfers to the
        new unit — acknowledged data never leaves protected RAM and the
        mapping is fixed before anything is dropped.
        """
        failed_block = self.geometry.block_of_page(program.ppa)
        self.suspect_blocks.add(failed_block)
        if attempt + 1 >= self.config.relocate_attempt_limit:
            # Pathological cascade: stop re-issuing.  Units stay staged,
            # so reads still serve them; the device degrades instead of
            # looping forever.
            self.enter_degraded(
                f"program-fail relocation cascade at block {failed_block}")
            return
        stream = program.stream or "data"
        relocated = 0
        new_programs: List[PageProgram] = []
        for upa in program.upas:
            if upa not in self._staged_tags and upa not in self._staged_oob:
                continue  # already superseded by a newer write
            referrers = tuple(self.mapping.referrers(upa))
            if not referrers:
                # Metadata unit or stale data: no LPN points here any
                # more; the next persistence cycle re-covers metadata.
                self._destage(upa)
                continue
            try:
                new_upas, programs = self.allocator.allocate(stream, 1)
            except DeviceFullError:
                self.enter_degraded(
                    f"no free blocks to relocate failed program at block "
                    f"{failed_block}")
                return
            new_upa = new_upas[0]
            self._write_seq += 1
            self._staged_tags[new_upa] = self._staged_tags[upa]
            self._staged_oob[new_upa] = tuple(
                (lpn, self._write_seq) for lpn in referrers)
            for lpn in referrers:
                self.mapping.map(lpn, new_upa)
            self._note_dirty_entries(len(referrers))
            if upa in self._buffer_held:
                # Transfer the back-pressure slot — no release/acquire,
                # so there is no window where the unit is unprotected.
                self._buffer_held.discard(upa)
                self._buffer_held.add(new_upa)
            self._staged_tags.pop(upa, None)
            self._staged_oob.pop(upa, None)
            relocated += 1
            new_programs.extend(programs)
        if relocated:
            self.stats.counter("media.relocations").add(relocated)
            yield self.config.map_update_ns * relocated
        for new_program in new_programs:
            self._launch_program(new_program, attempt=attempt + 1)
        if program.padded_units:
            self.stats.counter("ftl.units.padding").add(program.padded_units)

    def flush_stream(self, stream: str) -> Generator[Any, Any, None]:
        """Force the open partial pages of ``stream`` to flash (pads tails).

        On a namespaced device this covers every per-namespace variant of
        the stream as well, so a device-wide FLUSH drains all tenants.
        """
        names = [stream]
        if self._ns_ranges and stream != "meta":
            names.extend(f"ns{nsid}.{stream}"
                         for nsid, _first, _end in self._ns_ranges)
        for name in names:
            for program in self.allocator.flush(name):
                block = self.geometry.block_of_page(program.ppa)
                self._inflight_per_block[block] = \
                    self._inflight_per_block.get(block, 0) + 1
                yield from self._program_page_proc(program)

    def preload(self, lba: int, nsectors: int,
                tags: Optional[Sequence[SectorTag]] = None,
                stream: str = "data") -> None:
        """Instantly install data (setup/load phase — no simulated time).

        Used to populate the device before measurement starts.  Completed
        pages are programmed immediately; a trailing partial page stays in
        the staging buffer without holding a back-pressure slot.
        """
        if tags is not None and len(tags) != nsectors:
            raise FtlError(f"expected {nsectors} sector tags, got {len(tags)}")
        span = self.lpn_span(lba, nsectors)
        for lpn in span:
            unit_first = lpn * self.sectors_per_unit
            merged: List[SectorTag] = [None] * self.sectors_per_unit
            old_upa = self.mapping.lookup(lpn)
            if old_upa is not None:
                old = self._staged_tags.get(old_upa)
                if old is None:
                    page = self.mapping.page_of_unit(old_upa)
                    block = self.geometry.block_of_page(page)
                    if self.geometry.page_in_block(page) < \
                            self.array.block(block).write_pointer:
                        data = self.array.page_data(page)
                        old = data.get(self.mapping.unit_index(old_upa)) \
                            if data else None
                if old is not None:
                    merged = list(old)
            start = max(lba, unit_first)
            end = min(lba + nsectors, unit_first + self.sectors_per_unit)
            for sector in range(start, end):
                if tags is not None:
                    merged[sector - unit_first] = tags[sector - lba]
            self._write_seq += 1
            upas, programs = self.allocator.allocate(
                self._qualify(stream, lpn), 1)
            upa = upas[0]
            self._staged_tags[upa] = tuple(merged)
            self._staged_oob[upa] = ((lpn, self._write_seq),)
            self.mapping.map(lpn, upa)
            for program in programs:
                self._program_now(program)
        self.stats.counter("ftl.units.write.preload").add(len(span))

    def _program_now(self, program: PageProgram) -> None:
        data = {}
        oob: List[Any] = [None] * self.units_per_page
        for upa in program.upas:
            unit_index = self.mapping.unit_index(upa)
            data[unit_index] = self._staged_tags.pop(upa, None)
            oob[unit_index] = self._staged_oob.pop(upa, None)
        self.array.program_page_now(program.ppa, data, oob)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read(self, lba: int, nsectors: int,
             blame: Optional[Dict[str, int]] = None,
             ckpt: bool = False
             ) -> Generator[Any, Any, List[SectorTag]]:
        """Timed read; returns one tag per requested sector.

        Unmapped sectors read back as None without touching flash (the
        device returns zeroes from the deallocated-range fast path).
        ``ckpt`` marks checkpoint-machinery reads (journal readback):
        their flash occupancy runs on the array's checkpoint clock.
        """
        tracer = self.sim.tracer
        span = tracer.begin("ftl", "read", lba=lba, nsectors=nsectors,
                            bytes=nsectors * 512) \
            if tracer.enabled else None
        lpns = self.lpn_span(lba, nsectors)
        t0 = self.sim.now if blame is not None else 0
        yield from self.touch_map(lpns)
        if blame is not None:
            add_ns(blame, "ftl_map", self.sim.now - t0)
        lpn_to_upa: Dict[int, Optional[int]] = {
            lpn: self.mapping.lookup(lpn) for lpn in lpns}
        # Snapshot staged contents now: a unit staged at planning time may
        # be programmed (and de-staged) while the flash reads below are in
        # flight, and it would then be lost to both lookup paths.
        staged_snapshot: Dict[int, UnitTags] = {}
        flash_pages = set()
        for upa in lpn_to_upa.values():
            if upa is None:
                continue
            staged = self._staged_tags.get(upa)
            if staged is not None:
                staged_snapshot[upa] = staged
            else:
                flash_pages.add(self.mapping.page_of_unit(upa))
        page_data: Dict[int, Any] = {}
        if flash_pages:
            if blame is not None:
                t0, busy0 = self.sim.now, self.array.ckpt_busy_ns()
            yield from self._read_pages_parallel(sorted(flash_pages),
                                                 page_data, ckpt=ckpt)
            if blame is not None:
                self._charge_flash_wait(blame, "flash_read", t0, busy0)
        if staged_snapshot:
            yield self._staged_read_ns
            if blame is not None:
                add_ns(blame, "flash_read", self._staged_read_ns)

        result: List[SectorTag] = []
        for sector in range(lba, lba + nsectors):
            lpn = self.lpn_of_lba(sector)
            upa = lpn_to_upa[lpn]
            if upa is None:
                result.append(None)
                continue
            unit_tags = staged_snapshot.get(upa)
            if unit_tags is None:
                data = page_data.get(self.mapping.page_of_unit(upa))
                unit_tags = data.get(self.mapping.unit_index(upa)) if data else None
            offset = sector - lpn * self.sectors_per_unit
            result.append(unit_tags[offset] if unit_tags else None)
        if span is not None:
            tracer.end(span, flash_pages=len(flash_pages))
        return result

    def _read_pages_parallel(self, ppas: Iterable[int],
                             out: Dict[int, Any],
                             ckpt: bool = False) -> Generator[Any, Any, None]:
        ppas = list(ppas)
        if len(ppas) == 1:
            # The common single-page case: run the read inline — a spawned
            # process plus an all_of event buys nothing with one page.
            yield from self._read_one(ppas[0], out, ckpt)
            return
        processes = []
        for ppa in ppas:
            processes.append(spawn(self.sim, self._read_one(ppa, out, ckpt),
                                   name=f"read@{ppa}"))
        if processes:
            yield all_of(self.sim, processes)

    def _read_one(self, ppa: int, out: Dict[int, Any],
                  ckpt: bool = False) -> Generator[Any, Any, None]:
        data, _oob = yield from self._read_page_with_retry(ppa, ckpt)
        out[ppa] = data

    def _read_page_with_retry(self, ppa: int,
                              ckpt: bool = False) -> Generator[Any, Any,
                                                               Tuple[Any, Any]]:
        """Array page read with bounded FTL-level re-issue on UECC.

        The in-array retry ladder already walks the voltage levels; when
        it exhausts, the FTL re-issues the whole read (fresh levels) up
        to ``read_reissue_limit`` times before surfacing the error.
        """
        attempts = 1 + self.config.read_reissue_limit
        for attempt in range(attempts):
            try:
                data, oob = yield from self.array.read_page(ppa, ckpt=ckpt)
            except MediaReadError:
                if attempt == attempts - 1:
                    raise
                continue
            if attempt:
                self.stats.counter("ftl.read_reissue").add(attempt)
            return data, oob
        raise FtlError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # trim / deallocate
    # ------------------------------------------------------------------
    def trim(self, lba: int, nsectors: int,
             blame: Optional[Dict[str, int]] = None
             ) -> Generator[Any, Any, int]:
        """Deallocate every unit fully inside the range; returns unit count."""
        tracer = self.sim.tracer
        span = tracer.begin("ftl", "trim", lba=lba, nsectors=nsectors) \
            if tracer.enabled else None
        invalidated = 0
        for lpn in self.lpn_span(lba, nsectors):
            unit_first = lpn * self.sectors_per_unit
            if unit_first < lba or unit_first + self.sectors_per_unit > lba + nsectors:
                continue  # only whole units can be deallocated
            if self.mapping.unmap(lpn) is not None:
                invalidated += 1
                self._note_dirty_entries(1)
                if self.op_log is not None:
                    self._write_seq += 1
                    self.op_log.append((self._write_seq, "trim", lpn, 0))
        if invalidated:
            yield invalidated * self.config.map_update_ns
            if blame is not None:
                add_ns(blame, "ftl_map",
                       invalidated * self.config.map_update_ns)
            self.stats.counter("ftl.trim.units").add(invalidated)
        if span is not None:
            tracer.end(span, units=invalidated)
        return invalidated

    # ------------------------------------------------------------------
    # checkpoint primitives (Algorithm 1 mechanics)
    # ------------------------------------------------------------------
    def remap(self, pairs: Sequence[Tuple[int, int]],
              cause: str = "ckpt") -> Generator[Any, Any, None]:
        """Alias each ``dst_lpn`` onto ``src_lpn``'s physical unit.

        This is the pure in-place checkpoint: no flash read or program —
        only mapping-table updates, later persisted in bulk.
        """
        tracer = self.sim.tracer
        span = tracer.begin("ftl", "remap", pairs=len(pairs), cause=cause) \
            if tracer.enabled else None
        touched: List[int] = []
        for src_lpn, dst_lpn in pairs:
            touched.append(src_lpn)
            touched.append(dst_lpn)
        yield from self.touch_map(touched)
        for src_lpn, dst_lpn in pairs:
            self.mapping.share(src_lpn, dst_lpn)
            if self.op_log is not None:
                self._write_seq += 1
                self.op_log.append((self._write_seq, "remap", src_lpn, dst_lpn))
        self._note_dirty_entries(len(pairs))
        if pairs:
            yield len(pairs) * self.config.remap_entry_ns
            self.stats.counter(f"ftl.remap.{cause}").add(len(pairs))
        if span is not None:
            tracer.end(span)
        yield from self._maybe_persist_metadata()

    def copy_range(self, src_lba: int, dst_lba: int, nsectors: int,
                   stream: str = "ckpt",
                   cause: str = "ckpt") -> Generator[Any, Any, None]:
        """Physically copy a sector range inside the device (no host I/O)."""
        tags = yield from self.read(src_lba, nsectors)
        yield from self.write(dst_lba, nsectors, tags=tags,
                              stream=stream, cause=cause)

    def relocate_unit(self, referrers: Iterable[int],
                      unit_tags: Any) -> Generator[Any, Any, None]:
        """GC migration: move one valid unit, repoint every referrer.

        The new physical unit's OOB records *every* referencing LPN with a
        fresh sequence number, so a post-crash OOB scan resolves shared
        (remapped) units correctly.
        """
        referrers = tuple(referrers)
        yield self._write_buffer.acquire()
        gc_stream = self._qualify("gc", referrers[0]) if referrers else "gc"
        upas, programs = self.allocator.allocate(gc_stream, 1)
        upa = upas[0]
        self._buffer_held.add(upa)
        self._write_seq += 1
        self._staged_tags[upa] = unit_tags
        self._staged_oob[upa] = tuple((lpn, self._write_seq)
                                      for lpn in referrers)
        for lpn in referrers:
            self.mapping.map(lpn, upa)
        self._note_dirty_entries(len(referrers) or 1)
        for program in programs:
            self._launch_program(program)
        yield self.config.map_update_ns
        self.stats.counter("ftl.units.write.gc").add(
            1, num_bytes=self.config.mapping_unit)

    # ------------------------------------------------------------------
    # bad-block management and degraded mode
    # ------------------------------------------------------------------
    def enter_degraded(self, reason: str) -> None:
        """Drop the device to read-only degraded mode (idempotent).

        The mapping, staged units and flash contents stay readable; the
        controller rejects mutations with a READ_ONLY status from here on.
        """
        if self.read_only:
            return
        self.read_only = True
        self.degraded_reason = reason
        self.stats.counter("ftl.degraded").add(1)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.end(tracer.begin("ftl", "degraded", reason=reason))
        recorder = self.sim.flightrec
        if recorder is not None:
            recorder.record(self.sim.now, "ftl", "degraded", None,
                            {"reason": reason})
            recorder.trip(self.sim.now, "degraded_entry",
                          {"layer": "ftl", "reason": reason})

    def retire_block(self, block: int, cause: str) -> None:
        """Move a block to the grown-bad table; it is never reused.

        Callers must have migrated any valid units off the block first.
        Exceeding :attr:`FtlConfig.spare_block_budget` retired blocks
        drops the device to degraded mode — the spare capacity a real
        drive holds back for exactly this is exhausted.
        """
        if block in self.grown_bad:
            return
        self.grown_bad.add(block)
        self.suspect_blocks.discard(block)
        self.array.block(block).grown_bad = True
        self.allocator.retire(block)
        self.stats.counter("ftl.bad_blocks").add(1)
        self.stats.counter(f"ftl.bad_blocks.{cause}").add(1)
        recorder = self.sim.flightrec
        if recorder is not None:
            recorder.record(self.sim.now, "ftl", "block_retired", None,
                            {"block": block, "cause": cause,
                             "grown_bad": len(self.grown_bad),
                             "budget": self.config.spare_block_budget})
        if len(self.grown_bad) > self.config.spare_block_budget:
            self.enter_degraded(
                f"spare blocks exhausted: {len(self.grown_bad)} grown-bad "
                f"blocks > budget {self.config.spare_block_budget}")

    def read_reclaim_candidate(self) -> Optional[int]:
        """Most read-disturbed full block past the reclaim threshold.

        Returns None when no block qualifies.  Open blocks and blocks
        with in-flight programs are skipped; suspect blocks are left for
        regular GC to retire.
        """
        best: Optional[int] = None
        best_reads = self.config.read_reclaim_threshold - 1
        for block in sorted(self.allocator.full_blocks):
            if block in self.grown_bad or block in self.suspect_blocks:
                continue
            if self.inflight_programs(block):
                continue
            reads = self.array.block(block).reads_since_erase
            if reads > best_reads:
                best = block
                best_reads = reads
        return best

    # ------------------------------------------------------------------
    # metadata persistence (§III-D last paragraph)
    # ------------------------------------------------------------------
    def _note_dirty_entries(self, n: int) -> None:
        self._dirty_map_entries += n

    def metadata_units_pending(self) -> int:
        """Units of mapping metadata waiting to be persisted."""
        dirty_bytes = self._dirty_map_entries * self.config.meta_entry_bytes
        return dirty_bytes // self.config.mapping_unit

    def _maybe_persist_metadata(self) -> Generator[Any, Any, None]:
        # Persist only once a full page worth of entries accumulated, so
        # the flash sees parallel-friendly bulk metadata writes.
        page_entries = (self.geometry.page_size // self.config.meta_entry_bytes)
        if self._dirty_map_entries >= page_entries:
            yield from self.persist_metadata()

    def persist_metadata(self, force: bool = False) -> Generator[Any, Any, None]:
        """Write accumulated dirty mapping entries to flash (meta stream)."""
        dirty_bytes = self._dirty_map_entries * self.config.meta_entry_bytes
        units = dirty_bytes // self.config.mapping_unit
        if force and dirty_bytes > 0:
            units = max(units, ceil_div(dirty_bytes, self.config.mapping_unit))
        if units == 0:
            return
        tracer = self.sim.tracer
        span = tracer.begin("ftl", "persist_meta", units=units,
                            bytes=units * self.config.mapping_unit) \
            if tracer.enabled else None
        self._dirty_map_entries = 0
        if self.gc.needs_urgent_collection():
            yield from self.gc.ensure_free_blocks()
        for _ in range(units):
            yield self._write_buffer.acquire()
            _upas, programs = self.allocator.allocate("meta", 1)
            upa = _upas[0]
            self._buffer_held.add(upa)
            self._staged_tags[upa] = None
            self._staged_oob[upa] = ()  # metadata units map to no LPN
            for program in programs:
                self._launch_program(program)
        self.stats.counter("ftl.units.write.meta").add(
            units, num_bytes=units * self.config.mapping_unit)
        if self.config.snapshot_metadata:
            self._persisted_snapshot = self.mapping.snapshot()
        if span is not None:
            tracer.end(span)

    def persisted_mapping(self) -> Dict[int, int]:
        """The mapping as of the last metadata persistence."""
        return dict(self._persisted_snapshot)

    # ------------------------------------------------------------------
    # durability model (power-loss semantics, §III-G)
    # ------------------------------------------------------------------
    def is_staged(self, upa: int) -> bool:
        """True while ``upa`` still lives in the capacitor-backed staging
        buffer (its flash page may be unwritten or torn)."""
        return upa in self._staged_tags

    def durable_state(self) -> Dict[str, Any]:
        """Everything that survives a power cut.

        The staging buffer is capacitor-backed (writes ack only once
        staged, §III-D), so its content — and the OOB records that will
        accompany it to flash — is durable.  The op log models the
        remap/trim journal the paper persists with sequence numbers, and
        the persisted snapshot is the last mapping-table flush.
        """
        return {
            "staged_tags": dict(self._staged_tags),
            "staged_oob": dict(self._staged_oob),
            "op_log": list(self.op_log) if self.op_log is not None else None,
            "persisted_snapshot": dict(self._persisted_snapshot),
        }

    def volatile_state(self) -> Dict[str, Any]:
        """Everything a power cut destroys (diagnostic summary).

        The live mapping table is also volatile — recovery rebuilds it
        from the OOB scan — but it is kept out of this summary because
        :func:`repro.engine.recovery.rebuild_mapping_from_oob` replaces it
        wholesale.
        """
        return {
            "map_cache_pages": len(self._map_cache),
            "lpn_locks": len(self._lpn_locks),
            "inflight_blocks": dict(self._inflight_per_block),
            "dirty_map_entries": self._dirty_map_entries,
            "buffer_held": set(self._buffer_held),
        }

    def discard_volatile(self) -> None:
        """Drop every DRAM structure a power cut destroys.

        Keeps the capacitor-backed staging buffer and the durable op log;
        clears the DFTL map cache, per-LPN locks, in-flight program
        counters, un-persisted dirty-entry accounting and write-buffer
        slot bookkeeping.  The live mapping table is left for the
        recovery scan to rebuild.
        """
        self._map_cache.clear()
        self._lpn_locks.clear()
        self._inflight_per_block.clear()
        self._dirty_map_entries = 0
        self._buffer_held.clear()

    # ------------------------------------------------------------------
    # statistics helpers
    # ------------------------------------------------------------------
    def invalid_units(self) -> int:
        """Written-but-unreferenced units across all full blocks."""
        total = 0
        for block, written in self.allocator.written_units.items():
            total += written - self.mapping.valid_units(block)
        return total

    def drain(self) -> Generator[Any, Any, None]:
        """Wait until no page program is in flight (quiesce helper)."""
        while self._inflight_per_block:
            yield 10_000
