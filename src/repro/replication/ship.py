"""Primary-side replication log and journal shipper.

The :class:`ReplicationLog` is the primary's append-only record of every
locally-committed update, in commit order.  It is the *source of truth*
for the whole replication path: the shipper reads batches out of it, the
snapshot store folds prefixes of it into epochs, and a NACKed replica is
healed by re-shipping from it — nothing downstream ever needs to be
trusted, because everything downstream can be regenerated from the log.

The :class:`JournalShipper` is a process on the *primary's* simulator
that ships un-acked log suffixes to the replica as framed byte streams
(see :mod:`repro.replication.frames`) over a simulated link with
configurable latency and bandwidth, subject to a bounded in-flight
window (the "ship queue").  It tracks three monotone offsets::

    acked_offset <= shipped_offset <= len(log)

``acked_offset`` is the durability contract floor at failover: a
promoted replica must serve every write at or below it.  Writes between
``acked_offset`` and ``shipped_offset`` are *on the wire* — they may or
may not survive a primary kill.  Writes past ``shipped_offset`` are
definitively lost with the primary (asynchronous replication) unless
semi-sync mode made their puts wait via :meth:`wait_acked`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.sim.core import Event, Simulator


@dataclass(frozen=True)
class LinkSpec:
    """The simulated primary→replica link and shipping policy."""

    latency_ns: int = 50_000
    """One-way propagation delay (both directions)."""

    gbit_per_s: float = 10.0
    """Link bandwidth; 1 Gbit/s is exactly 1 bit/ns, so the serialization
    delay of ``n`` bytes is ``8 * n / gbit_per_s`` ns."""

    batch_ops: int = 64
    """Log entries per shipped batch (one framed stream per batch)."""

    queue_depth: int = 4
    """Bounded ship queue: un-acked batches in flight before the shipper
    stalls.  Depth 1 degenerates to ship-and-wait."""

    poll_ns: int = 20_000
    """Shipper wake-up granularity when idle-waiting for new commits."""

    def __post_init__(self) -> None:
        if self.latency_ns < 0:
            raise ConfigError("link latency_ns must be >= 0")
        if self.gbit_per_s <= 0:
            raise ConfigError("link gbit_per_s must be > 0")
        if self.batch_ops < 1 or self.queue_depth < 1:
            raise ConfigError("batch_ops and queue_depth must be >= 1")
        if self.poll_ns < 1:
            raise ConfigError("poll_ns must be >= 1")

    def transfer_ns(self, nbytes: int) -> int:
        """Serialization delay of ``nbytes`` on this link."""
        return int(round(8.0 * nbytes / self.gbit_per_s))


class ReplicationLog:
    """Append-only commit-ordered log of ``(offset, key, version, nbytes)``.

    Offsets are 1-based op counts: entry ``i`` (0-based) has offset
    ``i + 1``, and "state at offset N" means the fold of the first N
    entries.  This makes ``len(log)``, ``shipped_offset`` and
    ``acked_offset`` directly comparable.
    """

    def __init__(self) -> None:
        self.entries: List[Tuple[int, int, int, int]] = []
        self.total_bytes = 0
        self._on_append: List[Callable[[int], None]] = []

    def __len__(self) -> int:
        return len(self.entries)

    def append(self, key: int, version: int, nbytes: int) -> int:
        """Record one committed update; returns its (1-based) offset."""
        offset = len(self.entries) + 1
        self.entries.append((offset, key, version, nbytes))
        self.total_bytes += nbytes
        for hook in self._on_append:
            hook(offset)
        return offset

    def subscribe(self, hook: Callable[[int], None]) -> None:
        """Call ``hook(offset)`` after every append (shipper wake-up)."""
        self._on_append.append(hook)

    def bytes_through(self, offset: int) -> int:
        """Total payload bytes of the first ``offset`` entries."""
        return sum(entry[3] for entry in self.entries[:offset])

    def fold(self, offset: int) -> dict:
        """Key -> newest version over the first ``offset`` entries."""
        state: dict = {}
        for _off, key, version, _nbytes in self.entries[:offset]:
            state[key] = version
        return state


class JournalShipper:
    """Ships un-acked :class:`ReplicationLog` suffixes to the replica.

    ``transmit(nbytes, deliver)`` is injected by the pair driver: it
    models the link (latency + serialization, FIFO) and arranges for
    ``deliver(data)`` to run on the replica's simulator.  The shipper
    itself never touches the other simulator.
    """

    def __init__(self, sim: Simulator, log: ReplicationLog, spec: LinkSpec,
                 transmit: Callable[[bytes, str], None],
                 stats: Any = None) -> None:
        self.sim = sim
        self.log = log
        self.spec = spec
        self.transmit = transmit
        self.shipped_offset = 0
        self.acked_offset = 0
        self.acked_bytes = 0
        self.nacks = 0
        self.reshipped_ops = 0
        self.batches_shipped = 0
        self.bytes_shipped = 0
        self._in_flight = 0
        self._wake: Optional[Event] = None
        self._ack_waiters: List[Tuple[int, Event]] = []
        self._stats = stats
        log.subscribe(lambda _offset: self.notify())

    # -- lag probes (telemetry gauges read these) ----------------------
    @property
    def ship_lag_ops(self) -> int:
        """Committed-but-unacked ops (the RPO exposure right now)."""
        return len(self.log) - self.acked_offset

    @property
    def ship_lag_bytes(self) -> int:
        """Committed-but-unacked payload bytes."""
        return self.log.total_bytes - self.acked_bytes

    # -- shipping process ----------------------------------------------
    def run(self) -> Generator[Any, Any, None]:
        """The shipper daemon (spawn on the primary simulator)."""
        from repro.replication.frames import encode_stream
        while True:
            while (self.shipped_offset >= len(self.log)
                   or self._in_flight >= self.spec.queue_depth):
                self._wake = self.sim.event()
                yield self._wake
                self._wake = None
            base = self.shipped_offset
            batch = self.log.entries[base:base + self.spec.batch_ops]
            data = encode_stream({"kind": "ship", "base": base},
                                 [list(entry) for entry in batch])
            self.shipped_offset = base + len(batch)
            self._in_flight += 1
            self.batches_shipped += 1
            self.bytes_shipped += len(data)
            if self._stats is not None:
                self._stats.counter("repl.batches_shipped").add(
                    1, num_bytes=len(data))
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.end(tracer.begin("repl", "ship", base=base,
                                        ops=len(batch), bytes=len(data)))
            self.transmit(data, "ship")
            # Pace successive batches by the batch's own wire time so a
            # slow link backs pressure into the ship queue instead of
            # teleporting unbounded data per simulated instant.
            yield self.spec.transfer_ns(len(data))

    def notify(self) -> None:
        """Wake the shipper (new commit or freed window slot)."""
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    # -- replica feedback (delivered onto the primary sim) -------------
    def on_ack(self, offset: int) -> None:
        """The replica has durably applied everything through ``offset``."""
        if offset <= self.acked_offset:
            return
        self.acked_offset = offset
        self.acked_bytes = self.log.bytes_through(offset)
        self._in_flight = max(
            0, -(-(self.shipped_offset - offset) // self.spec.batch_ops))
        still_waiting: List[Tuple[int, Event]] = []
        for want, event in self._ack_waiters:
            if want <= offset:
                event.succeed(offset)
            else:
                still_waiting.append((want, event))
        self._ack_waiters = still_waiting
        self.notify()

    def on_nack(self, offset: int) -> None:
        """The replica refused a stream; rewind and re-ship from the log.

        ``offset`` is the replica's applied offset — the log prefix it
        still trusts.  Everything after it is re-shipped; the log is the
        source of truth, so recovery is a pure rewind.
        """
        self.nacks += 1
        if self._stats is not None:
            self._stats.counter("repl.nacks").add(1)
        rewound = 0
        if offset < self.shipped_offset:
            rewound = self.shipped_offset - offset
            self.reshipped_ops += rewound
            self.shipped_offset = offset
        recorder = self.sim.flightrec
        if recorder is not None:
            recorder.record(self.sim.now, "repl", "nack_rewind", None,
                            {"offset": offset, "rewound_ops": rewound,
                             "nacks": self.nacks,
                             "ship_lag_ops": self.ship_lag_ops})
        self._in_flight = 0
        self.notify()

    # -- semi-sync -----------------------------------------------------
    def wait_acked(self, offset: int) -> Optional[Event]:
        """Event that fires once ``offset`` is replica-acked (None if
        already acked) — the engine's ``repl_wait`` hook."""
        if offset <= self.acked_offset:
            return None
        event = self.sim.event()
        self._ack_waiters.append((offset, event))
        return event

    def abandon_waiters(self) -> None:
        """Fail-open any semi-sync waiters (used at teardown)."""
        for _want, event in self._ack_waiters:
            if not event.triggered:
                event.succeed(None)
        self._ack_waiters = []
