"""Primary + warm replica as a co-simulated pair, with promote-on-failure.

:class:`ReplicatedPair` owns two full :class:`~repro.system.system.KvSystem`
instances — each with its *own* simulator, because
:func:`~repro.fault.crash.power_cut` kills an entire event loop and the
replica must survive the primary's death — and drives them with a
merged-time loop: :meth:`step` always fires the globally-earliest event
across both heaps.  That invariant makes the link trivial: at any send
instant the target's clock is at or behind the sender's, so a delivery
at ``send + latency + serialization`` can be scheduled straight into the
target simulator with a non-negative delay.  No pending-delivery queue,
no clock skew.

The replica is *warm*: a :class:`ReplicaApplier` process replays shipped
batches through ``engine.apply_replicated`` (same journal path as a
primary put, explicit versions), and a replica-side checkpoint trigger
keeps its journal from filling — so at promote time it is a running
system, not a pile of bytes.

Failure protocol: any typed frame error (or offset gap from a dropped
batch) makes the applier *refuse* the stream — it discards everything
queued after the damage and NACKs its applied offset back; the shipper
rewinds to that offset and re-ships from the
:class:`~repro.replication.ship.ReplicationLog`, the source of truth.
Corruption therefore costs latency, never correctness.

Promote protocol (:meth:`promote`): drain what is already on the wire
(deliveries scheduled before the kill still arrive — they were in
flight), wait out the failover detection delay, then serve the first
read.  RTO is first-read completion minus kill time; RPO is the
primary-committed suffix the replica never applied.  The durability
contract checked everywhere: ``acked_offset <= applied_offset``, and the
replica's key→version state equals the primary log folded to exactly
``applied_offset`` — so no acked write can be lost (shed∩lost = ∅).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.common.errors import (
    ConfigError,
    ReplicationError,
    SimulationError,
    SnapshotFrameError,
)
from repro.fault.crash import CrashReport, power_cut
from repro.replication.frames import decode_stream
from repro.replication.ship import JournalShipper, LinkSpec, ReplicationLog
from repro.replication.store import CheckpointStore
from repro.sim.core import Event
from repro.sim.process import Interrupt, Process, spawn
from repro.system.config import SystemConfig
from repro.system.system import KvSystem

ACK_BYTES = 32
"""Modeled wire size of an ack/nack control message."""

DEFAULT_FAILOVER_DETECT_NS = 500_000
"""Time between the primary dying and the replica deciding to promote
(health-check timeout in a real deployment)."""


def state_digest(versions: Dict[int, int]) -> str:
    """Order-independent 16-hex digest of a key→version state map."""
    blob = ";".join(f"{key}:{versions[key]}" for key in sorted(versions))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class PromoteReport:
    """Everything a promote-on-failure measured and verified."""

    kill_ns: int
    promoted_ns: int
    """Replica time when its first post-failover read completed."""

    rto_ns: int
    """promoted_ns - kill_ns: simulated time to first served read."""

    rpo_ops: int
    """Primary-committed ops the promoted replica never applied."""

    primary_ops: int
    shipped_offset: int
    acked_offset: int
    applied_offset: int
    digest: str
    """Digest of the promoted replica's key→version state."""

    expected_digest: str
    """Digest of the primary log folded to ``applied_offset``."""

    verified_reads: int
    """Acked keys actually read back through the promoted engine."""

    nacks: int
    frames_refused: int

    @property
    def contract_ok(self) -> bool:
        """No acked write lost and state exactly matches the log fold."""
        return (self.acked_offset <= self.applied_offset
                and self.digest == self.expected_digest)


class ReplicaApplier:
    """Replica-side process: decode, validate, apply, ack.

    Batches arrive via :meth:`deliver` (scheduled onto the replica's
    simulator by the pair's link model).  A batch that fails frame
    validation — or opens an offset gap, meaning an earlier batch was
    lost or refused — is *refused*: the queue is purged (everything
    behind damage is suspect) and a NACK carrying ``applied_offset``
    goes back so the shipper can rewind and re-ship.
    """

    def __init__(self, system: KvSystem,
                 feedback: Callable[[str, int], None]) -> None:
        self.system = system
        self.engine = system.engine
        self.feedback = feedback
        self.applied_offset = 0
        self.replay_applied = 0
        self.batches_applied = 0
        self.frames_refused = 0
        self.queue: List[bytes] = []
        self.busy = False
        self._wake: Optional[Event] = None

    def deliver(self, data: bytes) -> None:
        """A shipped batch arrived off the wire (replica-sim callback)."""
        self.queue.append(data)
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    def _refuse(self, reason: str) -> None:
        self.frames_refused += 1
        self.engine.stats.counter("repl.frames_refused").add(1)
        self.queue.clear()
        tracer = self.system.sim.tracer
        if tracer.enabled:
            tracer.end(tracer.begin("repl", "refuse", reason=reason[:80]))
        recorder = self.system.sim.flightrec
        if recorder is not None:
            recorder.record(self.system.sim.now, "repl", "refuse", None,
                            {"reason": reason[:80],
                             "applied_offset": self.applied_offset,
                             "frames_refused": self.frames_refused})
        self.feedback("nack", self.applied_offset)

    def run(self) -> Generator[Any, Any, None]:
        """The applier daemon (spawn on the replica simulator)."""
        sim = self.system.sim
        try:
            while True:
                while not self.queue:
                    self._wake = sim.event()
                    yield self._wake
                    self._wake = None
                data = self.queue.pop(0)
                self.busy = True
                try:
                    try:
                        meta, records = decode_stream(data)
                    except SnapshotFrameError as exc:
                        self._refuse(str(exc))
                        continue
                    if meta.get("kind") != "ship":
                        self._refuse(f"unexpected stream kind "
                                     f"{meta.get('kind')!r}")
                        continue
                    gap = False
                    for offset, key, version, _nbytes in records:
                        if offset <= self.applied_offset:
                            continue  # re-shipped overlap; already applied
                        if offset != self.applied_offset + 1:
                            gap = True
                            break
                        yield from self.engine.apply_replicated(key, version)
                        self.applied_offset = offset
                        self.replay_applied += 1
                    if gap:
                        self._refuse("offset gap: an earlier batch was "
                                     "lost or refused")
                        continue
                    self.batches_applied += 1
                    self.feedback("ack", self.applied_offset)
                finally:
                    self.busy = False
        except Interrupt:
            return


class ReplicatedPair:
    """A primary and its warm replica, joined by a simulated link."""

    def __init__(self, config: SystemConfig,
                 link: Optional[LinkSpec] = None,
                 semi_sync: bool = False,
                 snapshot_retain: int = 3,
                 tamper: Optional[Callable[[bytes, int], Optional[bytes]]]
                 = None) -> None:
        if config.tenants is not None:
            raise ConfigError("replication drives single-tenant systems")
        if config.arrivals is not None and semi_sync:
            raise ConfigError("semi-sync replication needs closed-loop "
                              "clients (open-loop acks would be unbounded)")
        self.config = config
        self.link = link if link is not None else LinkSpec()
        self.semi_sync = semi_sync
        self.tamper = tamper
        self.primary = KvSystem(config)
        # The replica is the same system minus the observability the
        # experiment attached to the primary; it runs no clients.
        self.replica = KvSystem(replace(config, telemetry=None, trace=False,
                                        blame=False, arrivals=None))
        self.log = ReplicationLog()
        self.store = CheckpointStore(self.log, retain=snapshot_retain)
        self._link_free = {"ship": 0, "ack": 0}
        self._last_delivery_ns = 0
        self._batches_sent = 0
        self.shipper = JournalShipper(self.primary.sim, self.log, self.link,
                                      transmit=self._ship,
                                      stats=self.primary.ssd.stats)
        self.applier = ReplicaApplier(self.replica, feedback=self._feedback)
        engine = self.primary.engine
        engine.repl_log = self.log.append
        if semi_sync:
            engine.repl_wait = self.shipper.wait_acked
        engine.on_checkpoint.append(
            lambda _engine, _report: self.store.checkpoint())
        if self.primary.telemetry is not None:
            from repro.telemetry.probes import register_replication_probes
            register_replication_probes(self.primary.telemetry,
                                        self.shipper, self.applier)
        self._daemons: List[Process] = []
        self._t_kill: Optional[int] = None
        self._started = False

    # -- link model ----------------------------------------------------
    def _transmit(self, src: KvSystem, dst: KvSystem, nbytes: int,
                  direction: str, fn: Callable[..., None],
                  *args: Any) -> int:
        """FIFO link: serialize after the previous frame, then propagate.

        Returns the delivery timestamp.  The merged-time drive loop
        guarantees ``dst.sim.now <= src.sim.now`` at every send, so the
        computed delay is non-negative; the ``max`` guards direct use
        outside the loop.
        """
        depart = max(src.sim.now, self._link_free[direction]) \
            + self.link.transfer_ns(nbytes)
        self._link_free[direction] = depart
        deliver_at = depart + self.link.latency_ns
        dst.sim.schedule(max(0, deliver_at - dst.sim.now), fn, *args)
        return deliver_at

    def _ship(self, data: bytes, _kind: str) -> None:
        batch_index = self._batches_sent
        self._batches_sent += 1
        if self.tamper is not None:
            data = self.tamper(data, batch_index)
            if data is None:
                return  # the wire ate the batch; the gap will NACK
        self._last_delivery_ns = self._transmit(
            self.primary, self.replica, len(data), "ship",
            self.applier.deliver, data)

    def _feedback(self, kind: str, offset: int) -> None:
        fn = self.shipper.on_ack if kind == "ack" else self.shipper.on_nack
        # A crashed primary's simulator silently drops the schedule —
        # acks in flight at the kill die on the wire, as they should.
        self._transmit(self.replica, self.primary, ACK_BYTES, "ack",
                       fn, offset)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Load both systems and start engines + replication daemons."""
        if self._started:
            return
        self._started = True
        self.primary.load()
        self.replica.load()
        self.primary.engine.start()
        self.replica.engine.start()
        if self.primary.telemetry is not None:
            self.primary.telemetry.start()
        self._daemons = [
            spawn(self.primary.sim, self.shipper.run(), name="repl-shipper"),
            spawn(self.replica.sim, self.applier.run(), name="repl-applier"),
            spawn(self.primary.sim, self._ckpt_trigger(self.primary),
                  name="primary-ckpt-trigger"),
            spawn(self.replica.sim, self._ckpt_trigger(self.replica),
                  name="replica-ckpt-trigger"),
        ]

    def _ckpt_trigger(self, system: KvSystem) -> Generator[Any, Any, None]:
        """Interval/quota checkpoint policy (mirrors ``KvSystem.run``).

        On the primary each completed checkpoint also cuts a snapshot
        epoch (via ``on_checkpoint``); on the replica it is what keeps
        the journal drained — the warmth of the warm replica.
        """
        view = system.config
        engine = system.engine
        sim = system.sim
        last = sim.now
        try:
            while True:
                yield view.trigger_poll_ns
                if engine.checkpoint_running or engine.degraded:
                    continue
                if len(engine.journal.active_jmt) == 0:
                    continue
                if (sim.now - last < view.checkpoint_interval_ns
                        and engine.journal_pressure()
                        < view.checkpoint_journal_quota):
                    continue
                yield from engine.checkpoint()
                last = sim.now
        except Interrupt:
            return

    # -- merged-time drive loop ----------------------------------------
    def step(self) -> bool:
        """Fire the globally-earliest event across both simulators."""
        t_primary = self.primary.sim.peek()
        t_replica = self.replica.sim.peek()
        if t_primary is None and t_replica is None:
            return False
        if t_replica is None or (t_primary is not None
                                 and t_primary <= t_replica):
            return self.primary.sim.step()
        return self.replica.sim.step()

    def run_until(self, event: Any, name: str = "event") -> None:
        """Drive both loops until ``event`` resolves."""
        while not event.triggered:
            if not self.step():
                raise SimulationError(
                    f"both event loops drained waiting for {name}")
        if isinstance(event, Process) and not event.ok:
            raise event.exception

    def run_workload(self, kill_step: Optional[int] = None
                     ) -> Tuple[int, bool]:
        """Drive the primary's client pool; optionally stop early.

        Returns ``(steps_taken, finished)``.  With ``kill_step`` the
        loop stops after that many merged-time steps — the caller then
        kills the primary at that exact event boundary (the same
        arbitrary-boundary discipline as the fault harness).
        """
        done = self.primary.make_client_pool().start()
        steps = 0
        while not done.triggered:
            if not self.step():
                raise SimulationError("event loops drained mid-workload")
            steps += 1
            if kill_step is not None and steps >= kill_step:
                return steps, False
        return steps, True

    def drain(self, max_steps: int = 2_000_000) -> None:
        """Step both sims until the replica applied + acked the whole
        log — quiescence without a kill (tests and clean shutdowns)."""
        def settled() -> bool:
            return (self.shipper.acked_offset >= len(self.log)
                    and self.applier.applied_offset >= len(self.log)
                    and not self.applier.queue and not self.applier.busy)
        for _ in range(max_steps):
            if settled():
                return
            if not self.step():
                break
        if not settled():
            raise ReplicationError(
                f"replication did not drain: acked "
                f"{self.shipper.acked_offset}, applied "
                f"{self.applier.applied_offset} of {len(self.log)}")

    # -- failure + promote ---------------------------------------------
    def kill_primary(self, rng: Any) -> CrashReport:
        """Power-cut the primary at the current event boundary."""
        self._t_kill = self.primary.sim.now
        recorder = self.replica.sim.flightrec
        if recorder is not None:
            # The primary's recorder dies with it (power_cut records the
            # forensic event there); the surviving node logs the loss.
            recorder.record(self.replica.sim.now, "repl", "primary_lost",
                            None, {"t_kill_ns": self._t_kill,
                                   "ship_lag_ops": self.shipper.ship_lag_ops})
        self.shipper.abandon_waiters()
        return power_cut(self.primary, rng)

    def promote(self,
                failover_detect_ns: int = DEFAULT_FAILOVER_DETECT_NS,
                verify_reads: int = 8) -> PromoteReport:
        """Promote the replica; measure RTO/RPO and verify the contract.

        Must be called after :meth:`kill_primary`.  Deliveries already
        scheduled into the replica's heap at kill time were on the wire
        and still arrive; nothing new can be sent.
        """
        if self._t_kill is None:
            raise ReplicationError("promote() requires kill_primary() first")
        t_kill = self._t_kill
        replica = self.replica
        # 1. Drain the wire and the apply queue: process replica events
        #    while batches remain in flight or mid-apply.
        while True:
            if self.applier.queue or self.applier.busy:
                if not replica.sim.step():
                    raise SimulationError(
                        "replica drained mid-apply during promote")
                continue
            upcoming = replica.sim.peek()
            if upcoming is not None and upcoming <= self._last_delivery_ns:
                replica.sim.step()
                continue
            break
        # 2. Failover detection: the replica only *decides* to promote
        #    after the health-check timeout elapses.
        t_ready = max(replica.sim.now, t_kill + failover_detect_ns)
        if replica.sim.now < t_ready:
            replica.sim.run(until=t_ready)
        # 3. First served read — the RTO endpoint.
        applied = self.applier.applied_offset
        acked = self.shipper.acked_offset
        acked_state = self.log.fold(acked)
        first_key = self.log.entries[acked - 1][1] if acked > 0 \
            else next(iter(k for k, _ in self._initial_keys()), 0)
        first = spawn(replica.sim, replica.engine.get(first_key),
                      name="promote-first-read")
        replica.sim.run_until_triggered(first, name="promote-first-read")
        if not first.ok:
            raise first.exception
        promoted_ns = replica.sim.now
        # 4. Verify: exact state equality at applied_offset, and read a
        #    sample of acked keys through the promoted engine.
        expected = {key: 0 for key, _ in self._initial_keys()}
        expected.update(self.log.fold(applied))
        observed = {record.key: record.version
                    for record in replica.engine.kvmap.records()}
        reads_done = 0
        for key in sorted(acked_state)[:max(0, verify_reads)]:
            read = spawn(replica.sim, replica.engine.get(key),
                         name=f"promote-verify-{key}")
            replica.sim.run_until_triggered(read, name="promote-verify")
            if not read.ok:
                raise read.exception
            if read.value < acked_state[key]:
                raise ReplicationError(
                    f"acked write lost: key {key} acked at version "
                    f"{acked_state[key]}, promoted replica served "
                    f"{read.value}")
            reads_done += 1
        recorder = replica.sim.flightrec
        if recorder is not None:
            recorder.record(promoted_ns, "repl", "promote", None,
                            {"rto_ns": promoted_ns - t_kill,
                             "rpo_ops": len(self.log) - applied,
                             "applied_offset": applied,
                             "acked_offset": acked})
            recorder.trip(promoted_ns, "promote",
                          {"rto_ns": promoted_ns - t_kill,
                           "rpo_ops": len(self.log) - applied})
        return PromoteReport(
            kill_ns=t_kill, promoted_ns=promoted_ns,
            rto_ns=promoted_ns - t_kill,
            rpo_ops=len(self.log) - applied,
            primary_ops=len(self.log),
            shipped_offset=self.shipper.shipped_offset,
            acked_offset=acked, applied_offset=applied,
            digest=state_digest(observed),
            expected_digest=state_digest(expected),
            verified_reads=reads_done,
            nacks=self.shipper.nacks,
            frames_refused=self.applier.frames_refused)

    def _initial_keys(self):
        return ((record.key, record.version)
                for record in self.primary.engine.kvmap.records())

    def stop(self) -> None:
        """Interrupt replication daemons (post-experiment teardown)."""
        for daemon in self._daemons:
            if daemon.alive:
                daemon.interrupt("pair stopped")
        self._daemons = []
