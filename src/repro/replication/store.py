"""Aurora-shaped ``CheckpointStore``: snapshot export / restore.

The store captures *epochs* — consistent key→version maps folded from a
prefix of the primary's :class:`~repro.replication.ship.ReplicationLog`
— and serializes them as validated frame streams (full snapshots, or
deltas between retained epochs).  The interface follows the Aurora
checkpoint-store shape the roadmap calls out:

* :meth:`checkpoint` — capture the current log prefix as a new epoch
  (the primary wires this to ``engine.on_checkpoint``, so an epoch is
  cut exactly when a Check-In checkpoint completes and the journal
  prefix it covers is durable in the data region);
* :meth:`create_snapshot` — full framed snapshot of an epoch;
* :meth:`fetch_checkpoint` — the newest retained epoch's snapshot;
* :meth:`apply_snapshot` — validate a stream (typed
  :class:`~repro.common.errors.SnapshotFrameError` on any damage) and
  instantly install it into a fresh engine, returning the log offset
  from which journal replay must resume.

Epoch capture and apply are forensic (zero simulated time) — the
*simulated* cost of a cold restore (link transfer + per-record install
+ journal-replay) is modeled by the recovery-matrix experiment, which
needs the sizes and offsets this module reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import CorruptFrameError, ReplicationError
from repro.engine.engine import StorageEngine
from repro.replication.frames import decode_stream, encode_stream
from repro.replication.ship import ReplicationLog

SNAPSHOT_KIND_FULL = "snapshot.full"
SNAPSHOT_KIND_DELTA = "snapshot.delta"

INSTALL_NS_PER_RECORD = 1_500
"""Modeled per-record cost of installing a snapshot record on restore
(mapping update + tag rewrite); used by the recovery-matrix RTO model."""


@dataclass
class Epoch:
    """One captured consistent point: key→version at a log offset."""

    epoch_id: int
    log_offset: int
    state: Dict[int, int] = field(default_factory=dict)

    @property
    def keys(self) -> int:
        return len(self.state)


@dataclass
class ApplyReport:
    """What :meth:`CheckpointStore.apply_snapshot` installed."""

    kind: str
    epoch_id: int
    log_offset: int
    """Replay must resume from this replication-log offset."""

    installed: int
    skipped: int
    stream_bytes: int


class CheckpointStore:
    """Captures, serializes and restores snapshot epochs."""

    def __init__(self, log: ReplicationLog, retain: int = 3) -> None:
        if retain < 1:
            raise ReplicationError("must retain at least one epoch")
        self.log = log
        self.retain = retain
        # Epoch 0 is the bootstrap: the freshly-loaded store (every key
        # at version 0) at log offset 0 — a legitimate consistent point,
        # so a restore is possible even before the first checkpoint.
        self.epochs: List[Epoch] = [Epoch(epoch_id=0, log_offset=0)]
        self._next_epoch_id = 1

    # -- capture -------------------------------------------------------
    def checkpoint(self) -> Epoch:
        """Fold the current log prefix into a new retained epoch."""
        cut = len(self.log)
        epoch = Epoch(epoch_id=self._next_epoch_id, log_offset=cut,
                      state=self.log.fold(cut))
        self._next_epoch_id += 1
        self.epochs.append(epoch)
        del self.epochs[:-self.retain]
        return epoch

    def epoch(self, epoch_id: Optional[int] = None) -> Epoch:
        """A retained epoch by id (default: newest)."""
        if not self.epochs:
            raise ReplicationError("no epoch captured yet")
        if epoch_id is None:
            return self.epochs[-1]
        for epoch in self.epochs:
            if epoch.epoch_id == epoch_id:
                return epoch
        raise ReplicationError(f"epoch {epoch_id} is not retained")

    # -- serialize -----------------------------------------------------
    def create_snapshot(self, epoch_id: Optional[int] = None) -> bytes:
        """Full framed snapshot of an epoch (default: newest)."""
        epoch = self.epoch(epoch_id)
        records = [[key, epoch.state[key]] for key in sorted(epoch.state)]
        return encode_stream({"kind": SNAPSHOT_KIND_FULL,
                              "epoch": epoch.epoch_id,
                              "log_offset": epoch.log_offset}, records)

    def create_delta(self, base_epoch_id: int,
                     epoch_id: Optional[int] = None) -> bytes:
        """Incremental snapshot: keys that changed since ``base``.

        Applying it on top of state at ``base`` yields state at the
        target epoch — the cheap catch-up path for a replica that
        already holds a retained epoch.
        """
        base = self.epoch(base_epoch_id)
        target = self.epoch(epoch_id)
        if target.log_offset < base.log_offset:
            raise ReplicationError(
                f"delta target epoch {target.epoch_id} predates base "
                f"{base.epoch_id}")
        records = [[key, version]
                   for key, version in sorted(target.state.items())
                   if base.state.get(key) != version]
        return encode_stream({"kind": SNAPSHOT_KIND_DELTA,
                              "epoch": target.epoch_id,
                              "base_epoch": base.epoch_id,
                              "base_log_offset": base.log_offset,
                              "log_offset": target.log_offset}, records)

    def fetch_checkpoint(self) -> bytes:
        """The newest retained epoch, serialized (Aurora ``fetch``)."""
        return self.create_snapshot()

    # -- restore -------------------------------------------------------
    @staticmethod
    def apply_snapshot(data: bytes, engine: StorageEngine,
                       expect_base_offset: Optional[int] = None
                       ) -> ApplyReport:
        """Validate ``data`` and install it into ``engine`` instantly.

        Raises a typed :class:`SnapshotFrameError` subclass on any
        truncation or corruption *before touching the engine* — the
        whole stream is decoded and verified first, so a refused
        snapshot leaves the engine byte-identical to before the call.
        For deltas, ``expect_base_offset`` (the restoring side's current
        log offset) must match the delta's base.
        """
        meta, records = decode_stream(data)
        kind = meta.get("kind")
        if kind not in (SNAPSHOT_KIND_FULL, SNAPSHOT_KIND_DELTA):
            raise CorruptFrameError(f"not a snapshot stream: kind={kind!r}")
        if kind == SNAPSHOT_KIND_DELTA and expect_base_offset is not None \
                and meta.get("base_log_offset") != expect_base_offset:
            raise ReplicationError(
                f"delta base offset {meta.get('base_log_offset')} does not "
                f"match restoring state at offset {expect_base_offset}")
        installed = 0
        skipped = 0
        for key, version in records:
            record = engine.kvmap.get(key)
            if version <= record.version:
                skipped += 1
                continue
            record.version = version
            engine.ssd.ftl.preload(record.lba, record.nsectors,
                                   [record.tag] * record.nsectors,
                                   stream="data")
            installed += 1
        return ApplyReport(kind=kind, epoch_id=meta.get("epoch", 0),
                           log_offset=meta.get("log_offset", 0),
                           installed=installed, skipped=skipped,
                           stream_bytes=len(data))
