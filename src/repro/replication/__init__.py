"""Snapshot export/restore and primary→replica journal shipping.

Layered bottom-up:

* :mod:`~repro.replication.frames` — the validated frame codec every
  byte stream (snapshots, shipped batches) travels as;
* :mod:`~repro.replication.ship` — the primary's append-only
  :class:`ReplicationLog` (source of truth), the simulated
  :class:`LinkSpec` and the :class:`JournalShipper`;
* :mod:`~repro.replication.store` — the Aurora-shaped
  :class:`CheckpointStore` (``checkpoint`` / ``create_snapshot`` /
  ``fetch_checkpoint`` / ``apply_snapshot``);
* :mod:`~repro.replication.replica` — the co-simulated
  :class:`ReplicatedPair` with its warm :class:`ReplicaApplier` and
  promote-on-failure;
* :mod:`~repro.replication.campaign` — the seeded kill-the-primary
  campaign comparing warm promote vs snapshot+replay.
"""

from repro.replication.campaign import (
    CampaignPoint,
    CampaignResult,
    ColdRestoreReport,
    campaign_config,
    cold_restore,
    kill_primary_campaign,
)
from repro.replication.frames import (
    decode_frame,
    decode_stream,
    encode_frame,
    encode_stream,
    flip_bit,
)
from repro.replication.replica import (
    DEFAULT_FAILOVER_DETECT_NS,
    PromoteReport,
    ReplicaApplier,
    ReplicatedPair,
    state_digest,
)
from repro.replication.ship import JournalShipper, LinkSpec, ReplicationLog
from repro.replication.store import ApplyReport, CheckpointStore, Epoch

__all__ = [
    "ApplyReport",
    "CampaignPoint",
    "CampaignResult",
    "CheckpointStore",
    "ColdRestoreReport",
    "DEFAULT_FAILOVER_DETECT_NS",
    "Epoch",
    "JournalShipper",
    "LinkSpec",
    "PromoteReport",
    "ReplicaApplier",
    "ReplicatedPair",
    "ReplicationLog",
    "campaign_config",
    "cold_restore",
    "decode_frame",
    "decode_stream",
    "encode_frame",
    "encode_stream",
    "flip_bit",
    "kill_primary_campaign",
    "state_digest",
]
