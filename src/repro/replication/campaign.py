"""Kill-the-primary campaign: seeded crash points × recovery strategies.

Reuses the fault harness's crash-point discipline
(:func:`~repro.fault.harness.iter_crash_points`): a reference run learns
the replicated workload's merged-event-step count ``T``, then each
seeded point replays the identical workload on a fresh primary+replica
pair, power-cuts the primary after ``step ∈ [1, T]`` merged steps, and
recovers by *both* strategies from the same wreck:

* **warm** — :meth:`~repro.replication.replica.ReplicatedPair.promote`:
  the already-running replica drains the wire and serves;
* **snapshot** (cold) — :func:`cold_restore`: a fresh node fetches the
  newest exported snapshot over the link, installs it, replays the
  shipped journal suffix through the real apply path, then serves.

Both must satisfy the durability contract at every point: zero
acked-write loss (state ≥ the log folded to the acked offset) and exact
digest equality at the restored offset.  The campaign digest makes the
whole thing reproducible: same seed → same crash steps → same digests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Generator, List, Optional, Tuple

from repro.common.errors import ReplicationError
from repro.fault.harness import iter_crash_points
from repro.replication.replica import (
    DEFAULT_FAILOVER_DETECT_NS,
    PromoteReport,
    ReplicatedPair,
    state_digest,
)
from repro.replication.ship import LinkSpec
from repro.replication.store import INSTALL_NS_PER_RECORD, CheckpointStore
from repro.sim.process import spawn
from repro.system.config import SystemConfig, tiny_config
from repro.system.system import KvSystem

CAMPAIGN_STRATEGIES = ("warm", "snapshot")


def campaign_config(mode: str = "checkin", seed: int = 7, ops: int = 160,
                    num_keys: int = 64, **overrides: Any) -> SystemConfig:
    """The tiny replicated workload the campaign replays per point."""
    return tiny_config(mode=mode, seed=seed, num_keys=num_keys,
                       total_queries=ops, track_op_log=True,
                       snapshot_metadata=True, **overrides)


@dataclass
class ColdRestoreReport:
    """One snapshot+replay restore, measured on a fresh node's clock."""

    rto_ns: int
    """Kill → first served read on the cold node (its clock starts at
    the kill instant)."""

    rpo_ops: int
    snapshot_epoch: int
    snapshot_offset: int
    stream_bytes: int
    installed: int
    replayed_ops: int
    restored_offset: int
    acked_offset: int
    digest: str
    expected_digest: str
    verified_reads: int

    @property
    def contract_ok(self) -> bool:
        """No acked write lost; state matches the log fold exactly."""
        return (self.restored_offset >= self.acked_offset
                and self.digest == self.expected_digest)


@dataclass
class CampaignPoint:
    """One crash point recovered by every requested strategy."""

    index: int
    crash_step: int
    kill_ns: int
    primary_ops: int
    warm: Optional[PromoteReport] = None
    cold: Optional[ColdRestoreReport] = None

    @property
    def ok(self) -> bool:
        return ((self.warm is None or self.warm.contract_ok)
                and (self.cold is None or self.cold.contract_ok))


@dataclass
class CampaignResult:
    """All points of one (mode, seed) kill-the-primary campaign."""

    mode: str
    seed: int
    total_steps: int
    strategies: Tuple[str, ...]
    points: List[CampaignPoint] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(point.ok for point in self.points)

    def failures(self) -> List[CampaignPoint]:
        return [point for point in self.points if not point.ok]

    def digest(self) -> str:
        """Stable fingerprint of the campaign (determinism checks)."""
        digest = hashlib.sha256()
        for point in self.points:
            warm = point.warm.digest if point.warm is not None else "-"
            cold = point.cold.digest if point.cold is not None else "-"
            digest.update(f"{point.crash_step}:{warm}:{cold}".encode())
        return digest.hexdigest()[:16]

    def mean_rto_ns(self, strategy: str) -> float:
        values = [getattr(point, "warm" if strategy == "warm" else
                          "cold").rto_ns
                  for point in self.points
                  if getattr(point, "warm" if strategy == "warm" else
                             "cold") is not None]
        return sum(values) / len(values) if values else 0.0

    def mean_rpo_ops(self, strategy: str) -> float:
        attr = "warm" if strategy == "warm" else "cold"
        values = [getattr(point, attr).rpo_ops for point in self.points
                  if getattr(point, attr) is not None]
        return sum(values) / len(values) if values else 0.0

    def rto_speedup(self) -> float:
        """Cold mean RTO over warm mean RTO (>1: warm promote is faster)."""
        warm = self.mean_rto_ns("warm")
        cold = self.mean_rto_ns("snapshot")
        return cold / warm if warm > 0 else 0.0


def _fresh_standby(config: SystemConfig) -> KvSystem:
    system = KvSystem(replace(config, telemetry=None, trace=False,
                              blame=False, arrivals=None))
    system.load()
    system.engine.start()
    return system


def _replay_entries(system: KvSystem, entries: List[Tuple[int, int, int, int]]
                    ) -> Generator[Any, Any, int]:
    """Apply a log slice through the real journal path, checkpointing
    whenever the quota fills so the journal never wedges mid-replay."""
    applied = 0
    engine = system.engine
    quota = system.config.checkpoint_journal_quota
    for _offset, key, version, _nbytes in entries:
        if engine.journal_pressure() >= quota \
                and not engine.checkpoint_running:
            yield from engine.checkpoint()
        yield from engine.apply_replicated(key, version)
        applied += 1
    return applied


def cold_restore(pair: ReplicatedPair,
                 failover_detect_ns: int = DEFAULT_FAILOVER_DETECT_NS,
                 verify_reads: int = 8) -> ColdRestoreReport:
    """applySnapshot + journal-replay on a fresh node; measure RTO/RPO.

    The cold node's clock starts at the kill instant.  It pays, in
    order: failover detection, snapshot fetch over the pair's link
    (latency + serialization of the framed stream), per-record install,
    then journal replay of the shipped suffix — ``(snapshot_offset,
    acked_offset]`` — through the real ``apply_replicated`` path, and
    finally the first served read.  Acked-but-never-exported ops past
    both offsets are this strategy's RPO.
    """
    if pair._t_kill is None:
        raise ReplicationError("cold_restore() requires kill_primary() first")
    data = pair.store.fetch_checkpoint()
    acked = pair.shipper.acked_offset
    cold = _fresh_standby(pair.config)
    fetch_ns = (failover_detect_ns + pair.link.latency_ns
                + pair.link.transfer_ns(len(data)))
    cold.sim.run(until=cold.sim.now + fetch_ns)
    apply_report = CheckpointStore.apply_snapshot(data, cold.engine)
    install_ns = apply_report.installed * INSTALL_NS_PER_RECORD
    if install_ns:
        cold.sim.run(until=cold.sim.now + install_ns)
    entries = pair.log.entries[apply_report.log_offset:acked]
    replay = spawn(cold.sim, _replay_entries(cold, entries),
                   name="cold-replay")
    cold.sim.run_until_triggered(replay, name="cold-replay")
    if not replay.ok:
        raise replay.exception
    restored_to = max(apply_report.log_offset, acked)
    first_key = pair.log.entries[restored_to - 1][1] if restored_to > 0 \
        else next(record.key for record in cold.engine.kvmap.records())
    first = spawn(cold.sim, cold.engine.get(first_key),
                  name="cold-first-read")
    cold.sim.run_until_triggered(first, name="cold-first-read")
    if not first.ok:
        raise first.exception
    rto_ns = cold.sim.now
    expected = {record.key: 0 for record in cold.engine.kvmap.records()}
    expected.update(pair.log.fold(restored_to))
    observed = {record.key: record.version
                for record in cold.engine.kvmap.records()}
    acked_state = pair.log.fold(acked)
    reads_done = 0
    for key in sorted(acked_state)[:max(0, verify_reads)]:
        read = spawn(cold.sim, cold.engine.get(key),
                     name=f"cold-verify-{key}")
        cold.sim.run_until_triggered(read, name="cold-verify")
        if not read.ok:
            raise read.exception
        if read.value < acked_state[key]:
            raise ReplicationError(
                f"acked write lost in cold restore: key {key} acked at "
                f"version {acked_state[key]}, served {read.value}")
        reads_done += 1
    cold.engine.shutdown()
    return ColdRestoreReport(
        rto_ns=rto_ns, rpo_ops=len(pair.log) - restored_to,
        snapshot_epoch=apply_report.epoch_id,
        snapshot_offset=apply_report.log_offset,
        stream_bytes=apply_report.stream_bytes,
        installed=apply_report.installed,
        replayed_ops=replay.value, restored_offset=restored_to,
        acked_offset=acked, digest=state_digest(observed),
        expected_digest=state_digest(expected), verified_reads=reads_done)


def kill_primary_campaign(mode: str = "checkin", crash_points: int = 50,
                          seed: int = 7, ops: int = 160, num_keys: int = 64,
                          link: Optional[LinkSpec] = None,
                          strategies: Tuple[str, ...] = CAMPAIGN_STRATEGIES,
                          failover_detect_ns: int =
                          DEFAULT_FAILOVER_DETECT_NS,
                          **config_overrides: Any) -> CampaignResult:
    """Sweep seeded primary kills; recover each by every strategy.

    Raises :class:`ReplicationError` on the first contract violation so
    a lost acked write fails loudly; a clean return means every point's
    ``ok`` holds.  Inspect :meth:`CampaignResult.rto_speedup` for the
    warm-vs-cold RTO ratio.
    """
    unknown = set(strategies) - set(CAMPAIGN_STRATEGIES)
    if unknown:
        raise ReplicationError(f"unknown strategies: {sorted(unknown)}")
    config = campaign_config(mode=mode, seed=seed, ops=ops,
                             num_keys=num_keys, **config_overrides)

    # Reference run: learn the replicated workload's merged step count.
    pair = ReplicatedPair(config, link=link)
    pair.start()
    total_steps, _finished = pair.run_workload()
    pair.stop()

    result = CampaignResult(mode=mode, seed=seed, total_steps=total_steps,
                            strategies=tuple(strategies))
    for index, crash_step, point_rng in iter_crash_points(
            seed, total_steps, crash_points, f"repl/{mode}"):
        pair = ReplicatedPair(config, link=link)
        pair.start()
        pair.run_workload(kill_step=crash_step)
        pair.kill_primary(point_rng.fork("tear"))
        point = CampaignPoint(index=index, crash_step=crash_step,
                              kill_ns=pair.primary.sim.now,
                              primary_ops=len(pair.log))
        if "warm" in strategies:
            point.warm = pair.promote(failover_detect_ns=failover_detect_ns)
            if not point.warm.contract_ok:
                raise ReplicationError(
                    f"point {index} (step {crash_step}): warm promote "
                    f"violated the durability contract "
                    f"(acked={point.warm.acked_offset}, "
                    f"applied={point.warm.applied_offset}, "
                    f"digest {point.warm.digest} != "
                    f"{point.warm.expected_digest})")
        if "snapshot" in strategies:
            point.cold = cold_restore(
                pair, failover_detect_ns=failover_detect_ns)
            if not point.cold.contract_ok:
                raise ReplicationError(
                    f"point {index} (step {crash_step}): cold restore "
                    f"violated the durability contract")
        result.points.append(point)
    return result
