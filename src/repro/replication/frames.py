"""Snapshot / journal-shipping frame codec.

Everything replication moves between systems — full snapshots, delta
snapshots, shipped journal batches, acks — travels as a *framed byte
stream*: a sequence of self-describing, individually-checksummed chunks.
The framing is deliberately paranoid because the replica's contract is
"refuse and re-fetch, never apply silently": a single flipped bit or a
stream cut short anywhere must surface as a typed
:class:`~repro.common.errors.SnapshotFrameError` before *any* frame past
the damage is applied.

Frame layout (all integers big-endian)::

    magic   4 bytes   b"CKIN"
    version 2 bytes   FRAME_VERSION
    kind    1 byte    frame kind (see KIND_*)
    seq     4 bytes   frame index within the stream (0-based)
    length  4 bytes   payload length in bytes
    crc     4 bytes   CRC-32 of the payload
    payload N bytes   canonical JSON (sorted keys, no whitespace)

A stream is ``BEGIN`` + zero or more ``CHUNK`` frames + ``END``.  The
``BEGIN`` payload describes the stream (snapshot kind, epoch, base
epoch for deltas, record count); the ``END`` payload carries the total
record count and a CRC-32 over every chunk payload, so a stream with a
*whole frame* chopped off is caught even though each surviving frame
verifies individually.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Dict, Iterator, List, Tuple

from repro.common.errors import CorruptFrameError, TruncatedFrameError

MAGIC = b"CKIN"
FRAME_VERSION = 1

KIND_BEGIN = 0
KIND_CHUNK = 1
KIND_END = 2

_HEADER = struct.Struct(">4sHBII I".replace(" ", ""))
HEADER_BYTES = _HEADER.size

DEFAULT_CHUNK_RECORDS = 256
"""Records per CHUNK frame when encoding a snapshot stream."""


def _canon(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode()


def encode_frame(kind: int, seq: int, payload: Any) -> bytes:
    """One framed payload: header + canonical-JSON body."""
    body = _canon(payload)
    return _HEADER.pack(MAGIC, FRAME_VERSION, kind, seq, len(body),
                        zlib.crc32(body)) + body


def decode_frame(data: bytes, offset: int = 0) -> Tuple[int, int, Any, int]:
    """Decode one frame at ``offset``; returns (kind, seq, payload, next).

    Raises :class:`TruncatedFrameError` when the buffer ends inside the
    header or the body, :class:`CorruptFrameError` when the magic,
    version or CRC does not verify.
    """
    if offset + HEADER_BYTES > len(data):
        raise TruncatedFrameError(
            f"stream ends inside a frame header at byte {offset} "
            f"({len(data) - offset} of {HEADER_BYTES} header bytes)")
    magic, version, kind, seq, length, crc = _HEADER.unpack_from(data, offset)
    if magic != MAGIC:
        raise CorruptFrameError(
            f"bad frame magic {magic!r} at byte {offset}")
    if version != FRAME_VERSION:
        raise CorruptFrameError(
            f"unsupported frame version {version} at byte {offset}")
    if kind not in (KIND_BEGIN, KIND_CHUNK, KIND_END):
        raise CorruptFrameError(f"unknown frame kind {kind} at byte {offset}")
    body_start = offset + HEADER_BYTES
    body_end = body_start + length
    if body_end > len(data):
        raise TruncatedFrameError(
            f"stream ends inside frame {seq}'s body at byte {len(data)} "
            f"(frame needs {body_end})")
    body = data[body_start:body_end]
    if zlib.crc32(body) != crc:
        raise CorruptFrameError(
            f"CRC mismatch in frame {seq} (kind {kind}) at byte {offset}")
    try:
        payload = json.loads(body.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptFrameError(
            f"frame {seq} payload is not canonical JSON: {exc}") from exc
    return kind, seq, payload, body_end


def encode_stream(meta: Dict[str, Any], records: List[Any],
                  chunk_records: int = DEFAULT_CHUNK_RECORDS) -> bytes:
    """Frame ``records`` as BEGIN(meta) + CHUNKs + END."""
    if chunk_records < 1:
        chunk_records = 1
    frames = [encode_frame(KIND_BEGIN, 0, dict(meta, records=len(records)))]
    seq = 1
    body_crc = 0
    for start in range(0, len(records), chunk_records):
        chunk = records[start:start + chunk_records]
        body = _canon(chunk)
        body_crc = zlib.crc32(body, body_crc)
        frames.append(_HEADER.pack(MAGIC, FRAME_VERSION, KIND_CHUNK, seq,
                                   len(body), zlib.crc32(body)) + body)
        seq += 1
    frames.append(encode_frame(KIND_END, seq,
                               {"records": len(records),
                                "stream_crc": body_crc}))
    return b"".join(frames)


def decode_stream(data: bytes) -> Tuple[Dict[str, Any], List[Any]]:
    """Validate a whole stream; returns (meta, records).

    Every frame must verify, sequence numbers must be contiguous, the
    stream must terminate with an END frame whose record count and
    running CRC match what was actually decoded.
    """
    offset = 0
    meta: Dict[str, Any] = {}
    records: List[Any] = []
    expected_seq = 0
    body_crc = 0
    saw_begin = False
    while True:
        if offset == len(data):
            raise TruncatedFrameError(
                "stream ended without an END frame")
        kind, seq, payload, next_offset = decode_frame(data, offset)
        if seq != expected_seq:
            raise CorruptFrameError(
                f"frame sequence break: expected {expected_seq}, got {seq}")
        if expected_seq == 0:
            if kind != KIND_BEGIN:
                raise CorruptFrameError(
                    f"stream does not start with a BEGIN frame (kind {kind})")
            meta = payload
            saw_begin = True
        elif kind == KIND_CHUNK:
            body_crc = zlib.crc32(data[offset + HEADER_BYTES:next_offset],
                                  body_crc)
            records.extend(payload)
        elif kind == KIND_END:
            if payload.get("records") != len(records):
                raise CorruptFrameError(
                    f"END frame promises {payload.get('records')} records, "
                    f"stream carried {len(records)}")
            if payload.get("stream_crc") != body_crc:
                raise CorruptFrameError(
                    "stream CRC mismatch: a chunk frame is missing or "
                    "reordered")
            if next_offset != len(data):
                raise CorruptFrameError(
                    f"{len(data) - next_offset} trailing bytes after the "
                    "END frame")
            break
        else:
            raise CorruptFrameError(
                f"unexpected BEGIN frame at sequence {seq}")
        expected_seq += 1
        offset = next_offset
    if not saw_begin or meta.get("records") != len(records):
        raise CorruptFrameError(
            f"BEGIN frame promises {meta.get('records')} records, "
            f"stream carried {len(records)}")
    return meta, records


def iter_frames(data: bytes) -> Iterator[Tuple[int, int, Any]]:
    """Yield (kind, seq, payload) for each frame (validating as it goes)."""
    offset = 0
    while offset < len(data):
        kind, seq, payload, offset = decode_frame(data, offset)
        yield kind, seq, payload


def flip_bit(data: bytes, bit_index: int) -> bytes:
    """Return ``data`` with one bit flipped (corruption-injection helper)."""
    byte_index = (bit_index // 8) % max(1, len(data))
    mask = 1 << (bit_index % 8)
    mutated = bytearray(data)
    mutated[byte_index] ^= mask
    return bytes(mutated)
