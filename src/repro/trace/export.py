"""Chrome ``trace_event`` JSON export and schema validation.

The exported file loads in Perfetto / ``chrome://tracing``: every simulated
component gets its own process track (one per run, so multi-run experiment
sweeps show side by side), spans render as complete ("X") slices with
their attributes in ``args``, and instants as "i" marks.

Timestamps: the tracer clock is integer nanoseconds; trace_event wants
microseconds, so ``ts``/``dur`` are emitted as ``ns / 1000`` floats — the
viewer keeps sub-µs precision and ordering is preserved exactly.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

from repro.common.jsonl import ensure_parent_dir, read_json
from repro.trace.tracer import INSTANT_KIND, Tracer

COMPONENT_ORDER = ("client", "engine", "aligner", "journal", "ckpt", "ssd",
                   "coalescer", "isce", "ftl", "gc", "flash", "recovery")
"""Stable track ordering, host side down to the flash array."""

_PIDS_PER_RUN = 64
"""Pid namespace stride between runs in one exported file."""


def _component_sort_key(component: str) -> Tuple[int, str]:
    try:
        return (COMPONENT_ORDER.index(component), component)
    except ValueError:
        return (len(COMPONENT_ORDER), component)


def _clean(value: Any) -> Any:
    """Coerce one attribute value to something JSON-serialisable."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_clean(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _clean(item) for key, item in value.items()}
    return repr(value)


def trace_events(runs: Sequence[Tuple[str, Tracer]]) -> List[Dict[str, Any]]:
    """Flatten traced runs into a ``trace_event`` list.

    ``runs`` is ``[(label, tracer), ...]``; each run's components become
    processes named ``label/component`` with their own pid, so several
    experiment configurations coexist in one timeline.
    """
    metadata: List[Dict[str, Any]] = []
    events: List[Dict[str, Any]] = []
    for run_index, (label, tracer) in enumerate(runs):
        base_pid = 1 + run_index * _PIDS_PER_RUN
        components = sorted(tracer.components(), key=_component_sort_key)
        pids = {component: base_pid + offset
                for offset, component in enumerate(components)}
        for component, pid in pids.items():
            name = f"{label}/{component}" if label else component
            metadata.append({"ph": "M", "name": "process_name", "pid": pid,
                             "tid": 0, "ts": 0,
                             "args": {"name": name}})
            metadata.append({"ph": "M", "name": "process_sort_index",
                             "pid": pid, "tid": 0, "ts": 0,
                             "args": {"sort_index": pid}})
        for span in tracer.spans():
            if span.end_ns is None:
                continue
            event: Dict[str, Any] = {
                "name": span.name,
                "cat": span.component,
                "pid": pids[span.component],
                "tid": span.track,
                "ts": span.start_ns / 1000.0,
            }
            # span_id rides along in args: it is the cross-plane link the
            # incident bundle's flight-recorder events resolve against.
            event["args"] = {key: _clean(value)
                             for key, value in span.attrs.items()}
            event["args"]["span_id"] = span.span_id
            if span.kind == INSTANT_KIND:
                event["ph"] = "i"
                event["s"] = "t"
            else:
                event["ph"] = "X"
                event["dur"] = span.duration_ns / 1000.0
            events.append(event)
    events.sort(key=lambda event: event["ts"])
    return metadata + events


def trace_document(runs: Sequence[Tuple[str, Tracer]]) -> Dict[str, Any]:
    """The full exportable JSON object."""
    return {
        "traceEvents": trace_events(runs),
        "displayTimeUnit": "ns",
        "otherData": {
            "generator": "repro.trace",
            "runs": [label for label, _tracer in runs],
        },
    }


def write_chrome_trace(path: str,
                       runs: Sequence[Tuple[str, Tracer]]) -> int:
    """Write the Chrome trace JSON; returns the number of events."""
    document = trace_document(runs)
    with open(ensure_parent_dir(path), "w") as handle:
        json.dump(document, handle, separators=(",", ":"))
    return len(document["traceEvents"])


# ----------------------------------------------------------------------
# validation (CI smoke + tests)
# ----------------------------------------------------------------------
def validate_trace(document: Any) -> List[str]:
    """Schema-check a parsed trace document; returns problems (empty = ok).

    Checks the subset of the trace_event format the reproduction relies
    on: a ``traceEvents`` list whose "X" entries carry numeric, monotone
    ``ts`` with non-negative ``dur``, and integer ``pid``/``tid``.
    """
    problems: List[str] = []
    if not isinstance(document, dict):
        return [f"top level must be an object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    last_ts = None
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"{where}: unexpected phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: {key} must be an integer")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: ts must be numeric")
            continue
        if ph == "M":
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(f"{where}: timestamps not monotone "
                            f"({ts} after {last_ts})")
        last_ts = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0")
    return problems


def validate_trace_file(path: str) -> List[str]:
    """Parse and validate a trace JSON file."""
    document, problems = read_json(path)
    if problems:
        return problems
    return validate_trace(document)
