"""Derived observability metrics over one tracer.

These replace ad-hoc bookkeeping at call sites: everything here is
computed from the exact per-stage aggregates the tracer maintains
(ring-buffer eviction never loses them).

* :func:`summarize` — the :class:`TraceSummary` attached to a
  :class:`~repro.system.system.RunResult`;
* component time-in-stage table (count / total / mean / max, log2
  histogram peak);
* checkpoint phase breakdown (the paper's Figs. 8–13 cost decomposition:
  journal scan, CoW/remap, data write, metadata, deallocation);
* queue-wait vs service-time split for the tail-latency analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.telemetry.names import phase_totals, queue_split, safe_ratio
from repro.trace.tracer import Tracer


@dataclass
class TraceSummary:
    """Flattened derived metrics of one traced run."""

    stage_rows: List[Dict[str, Any]] = field(default_factory=list)
    """Per (component, stage): count, total/mean/max duration, bytes."""

    checkpoints: List[Dict[str, Any]] = field(default_factory=list)
    """Per checkpoint: strategy, start, duration, phase durations."""

    phase_totals: Dict[str, int] = field(default_factory=dict)
    """Total ns per checkpoint phase name, across all checkpoints."""

    queue_split: Dict[str, Dict[str, int]] = field(default_factory=dict)
    """Per component: total queue-wait ns vs service ns."""

    open_spans: int = 0
    dropped_spans: int = 0

    @property
    def checkpoint_count(self) -> int:
        """Checkpoints captured by the tracer."""
        return len(self.checkpoints)

    def phase_fraction(self, phase: str) -> float:
        """Share of total checkpoint time spent in ``phase``."""
        return safe_ratio(self.phase_totals.get(phase, 0),
                          sum(self.phase_totals.values()))


def summarize(tracer: Tracer) -> TraceSummary:
    """Build the run-level summary from a tracer's aggregates.

    Phase and queue splits go through the shared helpers in
    :mod:`repro.telemetry.names`, the same code path the telemetry
    exporters use — the two reports cannot drift apart.
    """
    summary = TraceSummary(open_spans=tracer.open_spans,
                           dropped_spans=tracer.dropped)
    for (component, name), stat in sorted(tracer.stage_stats.items()):
        summary.stage_rows.append({
            "component": component,
            "stage": name,
            "count": stat.count,
            "total_ms": stat.total_ns / 1e6,
            "mean_us": stat.mean_ns / 1e3,
            "max_us": stat.max_ns / 1e3,
            "bytes": stat.bytes,
        })
    summary.queue_split = queue_split(tracer.stage_stats)
    summary.checkpoints = [dict(ckpt)
                           for ckpt in tracer.checkpoint_summaries]
    summary.phase_totals = phase_totals(summary.checkpoints)
    return summary


# ----------------------------------------------------------------------
# renderers (ASCII tables in the repo's house style)
# ----------------------------------------------------------------------
def component_table(summary: TraceSummary, title: str = "") -> str:
    """Per-component time-in-stage table."""
    from repro.analysis.tables import format_table
    rows = [[row["component"], row["stage"], row["count"],
             row["total_ms"], row["mean_us"], row["max_us"]]
            for row in summary.stage_rows]
    return format_table(
        ["component", "stage", "count", "total_ms", "mean_us", "max_us"],
        rows, title=title or "trace: time in stage per component")


def phase_table(summary: TraceSummary, title: str = "") -> str:
    """Checkpoint phase breakdown table (one row per checkpoint)."""
    from repro.analysis.tables import format_table
    phases = sorted({phase for ckpt in summary.checkpoints
                     for phase in ckpt.get("phases", {})})
    headers = ["ckpt", "strategy", "total_ms"] + [f"{p}_ms" for p in phases]
    rows: List[List[Any]] = []
    for index, ckpt in enumerate(summary.checkpoints):
        row: List[Any] = [index, ckpt.get("strategy", "?"),
                          ckpt["duration_ns"] / 1e6]
        for phase in phases:
            row.append(ckpt.get("phases", {}).get(phase, 0) / 1e6)
        rows.append(row)
    if summary.checkpoints:
        total_row: List[Any] = ["all", "-", sum(
            c["duration_ns"] for c in summary.checkpoints) / 1e6]
        for phase in phases:
            total_row.append(summary.phase_totals.get(phase, 0) / 1e6)
        rows.append(total_row)
    return format_table(headers, rows,
                        title=title or "trace: checkpoint phase breakdown")


def queue_split_table(summary: TraceSummary, title: str = "") -> str:
    """Queue-wait vs service-time split per component."""
    from repro.analysis.tables import format_table
    rows: List[List[Any]] = []
    for component, split in sorted(summary.queue_split.items()):
        total = split["queue_ns"] + split["service_ns"]
        queue_pct = 100.0 * safe_ratio(split["queue_ns"], total)
        rows.append([component, split["queue_ns"] / 1e6,
                     split["service_ns"] / 1e6, queue_pct])
    return format_table(
        ["component", "queue_ms", "service_ms", "queue_pct"],
        rows, title=title or "trace: queue-wait vs service-time")


def histogram_rows(tracer: Tracer, component: str,
                   stage: str) -> List[Tuple[str, int]]:
    """Log2 duration histogram of one stage as (bucket label, count)."""
    stat = tracer.stage_stats.get((component, stage))
    if stat is None:
        return []
    rows: List[Tuple[str, int]] = []
    for bucket in sorted(stat.hist):
        low = 0 if bucket == 0 else 1 << (bucket - 1)
        high = (1 << bucket) - 1
        rows.append((f"{low}..{high} ns", stat.hist[bucket]))
    return rows
