"""``repro.trace`` — end-to-end span tracing for the host/SSD stack.

Public surface:

* :class:`Tracer` / :class:`NullTracer` / :data:`NULL_TRACER` — the span
  recorder (see :mod:`repro.trace.tracer` for the design constraints);
* :func:`write_chrome_trace` / :func:`validate_trace_file` — Chrome
  ``trace_event`` export, loadable in Perfetto;
* :func:`summarize` and the table renderers — derived metrics;
* the **global trace switch** below, used by the CLI: experiments build
  their own :class:`~repro.system.system.KvSystem` instances internally,
  so ``repro run <exp> --trace`` flips this process-wide switch and every
  system constructed while it is on installs a tracer and registers it in
  the run collector for one merged export.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.trace.export import (
    trace_document,
    trace_events,
    validate_trace,
    validate_trace_file,
    write_chrome_trace,
)
from repro.trace.metrics import (
    TraceSummary,
    component_table,
    histogram_rows,
    phase_table,
    queue_split_table,
    summarize,
)
from repro.trace.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    StageStat,
    TraceConfig,
    Tracer,
)

__all__ = [
    "NULL_SPAN", "NULL_TRACER", "NullTracer", "Span", "StageStat",
    "TraceConfig", "Tracer", "TraceSummary",
    "trace_document", "trace_events", "validate_trace",
    "validate_trace_file", "write_chrome_trace",
    "summarize", "component_table", "phase_table", "queue_split_table",
    "histogram_rows",
    "enable_tracing", "disable_tracing", "tracing_enabled",
    "install_tracer", "collected_runs", "clear_runs",
]

_GLOBAL_CONFIG: Optional[TraceConfig] = None
_GLOBAL_ENABLED = False
_RUNS: List[Tuple[str, Tracer]] = []
_LABEL_COUNTS: dict = {}


def enable_tracing(config: Optional[TraceConfig] = None) -> None:
    """Turn the process-wide trace switch on (CLI ``--trace``)."""
    global _GLOBAL_ENABLED, _GLOBAL_CONFIG
    _GLOBAL_ENABLED = True
    _GLOBAL_CONFIG = config


def disable_tracing() -> None:
    """Turn the switch off (new systems go back to :data:`NULL_TRACER`)."""
    global _GLOBAL_ENABLED, _GLOBAL_CONFIG
    _GLOBAL_ENABLED = False
    _GLOBAL_CONFIG = None


def tracing_enabled() -> bool:
    """True while the process-wide switch is on."""
    return _GLOBAL_ENABLED


def install_tracer(sim: Any, label: str = "run",
                   config: Optional[TraceConfig] = None) -> Tracer:
    """Attach a fresh tracer to ``sim`` and register it for export.

    Labels are uniquified (``checkin``, ``checkin#2`` …) so multi-run
    sweeps export one process group per run.
    """
    tracer = Tracer(sim, config if config is not None else _GLOBAL_CONFIG)
    sim.tracer = tracer
    count = _LABEL_COUNTS.get(label, 0) + 1
    _LABEL_COUNTS[label] = count
    unique = label if count == 1 else f"{label}#{count}"
    _RUNS.append((unique, tracer))
    return tracer


def collected_runs() -> List[Tuple[str, Tracer]]:
    """Every (label, tracer) registered since the last :func:`clear_runs`."""
    return list(_RUNS)


def clear_runs() -> None:
    """Drop collected tracers (start of a traced CLI invocation)."""
    _RUNS.clear()
    _LABEL_COUNTS.clear()
