"""Span tracer for the simulated host/SSD stack.

A :class:`Span` is one timed stage of work — a client operation, a host
command on the device, a checkpoint phase, a flash page program — carrying
a component tag, integer-ns start/end timestamps read from the simulation
clock, and key/value attributes (LPN ranges, byte counts, queue depth).

Design constraints, in order:

1. **Zero overhead when disabled.**  Every call site guards on
   ``tracer.enabled`` before building attributes, and the disabled tracer
   (:data:`NULL_TRACER`) allocates nothing — ``begin`` hands back one
   shared :data:`NULL_SPAN` singleton.  A traced run and an untraced run
   execute the identical simulated event sequence, so their counter
   snapshots are byte-identical (CI asserts this).
2. **Bounded memory.**  Finished spans land in per-component ring buffers
   (:attr:`TraceConfig.max_spans_per_component`); long runs keep the tail
   of every component's timeline instead of the head of one.  Aggregated
   stage statistics (:attr:`Tracer.stage_stats`) and checkpoint phase
   summaries are accumulated at ``end()`` time and are therefore exact
   regardless of ring eviction.
3. **Explicit parenting.**  Simulation processes interleave arbitrarily,
   so there is no implicit "current span" stack: nesting is expressed by
   passing ``parent=``.  Checkpoints use this to nest their named phases
   (journal scan, CoW/remap, data write, deallocation, mapping persist)
   under one parent span per checkpoint.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.telemetry.names import safe_ratio

SPAN_KIND = "span"
INSTANT_KIND = "instant"


class Span:
    """One timed stage of work in a single component."""

    __slots__ = ("span_id", "parent", "component", "name", "start_ns",
                 "end_ns", "track", "attrs", "kind", "phases")

    def __init__(self, span_id: int, component: str, name: str,
                 start_ns: int, parent: Optional["Span"] = None,
                 track: int = 0,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.span_id = span_id
        self.parent = parent
        self.component = component
        self.name = name
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.track = track
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        self.kind = SPAN_KIND
        self.phases: Optional[Dict[str, int]] = None
        """Per-phase child durations, accumulated on checkpoint roots."""

    @property
    def finished(self) -> bool:
        """True once :meth:`Tracer.end` ran."""
        return self.end_ns is not None

    @property
    def duration_ns(self) -> int:
        """Span length (0 while still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def parent_id(self) -> Optional[int]:
        """The parent span's id, if any."""
        return self.parent.span_id if self.parent is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = self.end_ns if self.end_ns is not None else "…"
        return (f"Span#{self.span_id}({self.component}/{self.name} "
                f"[{self.start_ns}, {end}])")


class _NullSpan:
    """The shared do-nothing span handed out by the disabled tracer."""

    __slots__ = ()
    finished = False
    duration_ns = 0
    parent = None
    parent_id = None
    phases = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NullSpan"


NULL_SPAN = _NullSpan()
"""Singleton returned by :class:`NullTracer` — never allocated per call."""


@dataclass(frozen=True)
class TraceConfig:
    """Tracer knobs."""

    max_spans_per_component: int = 4096
    """Ring-buffer capacity per component tag (bounded memory for long
    runs; the timeline export keeps the newest spans of every track)."""

    keep_instants: bool = True
    """Record zero-duration instant events (e.g. aligner layout marks)."""


@dataclass
class StageStat:
    """Exact aggregate over every finished span of one (component, name)."""

    count: int = 0
    total_ns: int = 0
    max_ns: int = 0
    queue_ns: int = 0
    """Sum of the ``queue_ns`` attribute — admission-queue wait inside the
    span, used for the queue-wait vs service-time split."""

    bytes: int = 0
    hist: Dict[int, int] = field(default_factory=dict)
    """Log2 duration histogram: ``bit_length(duration_ns) -> count``."""

    def observe(self, duration_ns: int, queue_ns: int, num_bytes: int) -> None:
        """Fold one finished span in."""
        self.count += 1
        self.total_ns += duration_ns
        if duration_ns > self.max_ns:
            self.max_ns = duration_ns
        self.queue_ns += queue_ns
        self.bytes += num_bytes
        bucket = duration_ns.bit_length()
        self.hist[bucket] = self.hist.get(bucket, 0) + 1

    @property
    def mean_ns(self) -> float:
        """Average span duration."""
        return safe_ratio(self.total_ns, self.count)

    @property
    def service_ns(self) -> int:
        """Time inside spans not spent waiting for admission."""
        return self.total_ns - self.queue_ns


class Tracer:
    """Simulation-aware span recorder for one system instance."""

    enabled = True

    def __init__(self, sim: Any = None, config: Optional[TraceConfig] = None,
                 clock: Optional[Callable[[], int]] = None) -> None:
        if sim is None and clock is None:
            raise ValueError("Tracer needs a simulator or an explicit clock")
        self._sim = sim
        self._clock = clock if clock is not None else (lambda: sim.now)
        self.config = config if config is not None else TraceConfig()
        self._next_id = 0
        self._rings: Dict[str, Deque[Span]] = {}
        self.stage_stats: Dict[Tuple[str, str], StageStat] = {}
        self.checkpoint_summaries: List[Dict[str, Any]] = []
        """One entry per completed checkpoint root span: strategy, start,
        duration and the per-phase breakdown."""

        self.started = 0
        self.finished = 0
        self.dropped = 0
        """Finished spans evicted from a full ring (aggregates keep them)."""

    @classmethod
    def wallclock(cls, config: Optional[TraceConfig] = None) -> "Tracer":
        """A tracer on the host's monotonic clock (ns).

        Used where no simulated time can pass — e.g. timing the forensic
        SPOR recovery scan after a power cut.
        """
        return cls(config=config, clock=time.perf_counter_ns)

    # ------------------------------------------------------------------
    def begin(self, component: str, name: str, parent: Optional[Span] = None,
              track: int = 0, **attrs: Any) -> Span:
        """Open a span at the current clock; close it with :meth:`end`."""
        self._next_id += 1
        self.started += 1
        return Span(self._next_id, component, name, self._clock(),
                    parent=parent, track=track, attrs=attrs)

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close a span at the current clock and record it."""
        if span.end_ns is not None:
            raise ValueError(f"span already ended: {span!r}")
        span.end_ns = self._clock()
        if attrs:
            span.attrs.update(attrs)
        self.finished += 1
        self._aggregate(span)
        self._retain(span)
        return span

    def instant(self, component: str, name: str, track: int = 0,
                **attrs: Any) -> Optional[Span]:
        """Record a zero-duration mark (an event, not a stage)."""
        if not self.config.keep_instants:
            return None
        self._next_id += 1
        now = self._clock()
        span = Span(self._next_id, component, name, now, track=track,
                    attrs=attrs)
        span.end_ns = now
        span.kind = INSTANT_KIND
        self._retain(span)
        return span

    # ------------------------------------------------------------------
    def _aggregate(self, span: Span) -> None:
        stat = self.stage_stats.get((span.component, span.name))
        if stat is None:
            stat = StageStat()
            self.stage_stats[(span.component, span.name)] = stat
        stat.observe(span.duration_ns,
                     int(span.attrs.get("queue_ns", 0)),
                     int(span.attrs.get("bytes", 0)))

        # Checkpoint phase accounting: a phase span folds its duration
        # into its checkpoint root; a finished root becomes one summary.
        parent = span.parent
        if parent is not None and parent.component == "ckpt":
            if parent.phases is None:
                parent.phases = {}
            parent.phases[span.name] = \
                parent.phases.get(span.name, 0) + span.duration_ns
        if span.component == "ckpt" and \
                (parent is None or parent.component != "ckpt"):
            summary = {"strategy": span.attrs.get("strategy", span.name),
                       "start_ns": span.start_ns,
                       "duration_ns": span.duration_ns,
                       "phases": dict(span.phases or {})}
            summary.update({key: value for key, value in span.attrs.items()
                            if key not in summary})
            self.checkpoint_summaries.append(summary)

    def _retain(self, span: Span) -> None:
        ring = self._rings.get(span.component)
        if ring is None:
            ring = deque(maxlen=self.config.max_spans_per_component)
            self._rings[span.component] = ring
        if len(ring) == ring.maxlen:
            self.dropped += 1
        ring.append(span)

    # ------------------------------------------------------------------
    def components(self) -> List[str]:
        """Component tags that recorded at least one span."""
        return sorted(self._rings)

    def spans(self, component: Optional[str] = None) -> List[Span]:
        """Retained (ring-buffered) spans, oldest first."""
        if component is not None:
            return list(self._rings.get(component, ()))
        result: List[Span] = []
        for ring in self._rings.values():
            result.extend(ring)
        result.sort(key=lambda span: (span.start_ns, span.span_id))
        return result

    @property
    def open_spans(self) -> int:
        """Spans begun but never ended (e.g. daemons killed mid-span)."""
        return self.started - self.finished

    def validate(self) -> List[str]:
        """Structural invariant check over the retained spans.

        Verifies that every finished span has ``end >= start`` and that no
        child span outlives its parent (children must close within the
        parent's window).  Returns human-readable violations.
        """
        problems: List[str] = []
        for span in self.spans():
            if span.end_ns is None:
                continue
            if span.end_ns < span.start_ns:
                problems.append(f"{span!r}: ends before it starts")
            parent = span.parent
            if parent is None:
                continue
            if span.start_ns < parent.start_ns:
                problems.append(f"{span!r}: starts before parent {parent!r}")
            if parent.end_ns is not None and span.end_ns > parent.end_ns:
                problems.append(f"{span!r}: outlives parent {parent!r}")
        return problems


class NullTracer:
    """Disabled tracer: every operation is a no-op, nothing is allocated."""

    enabled = False
    config = TraceConfig(max_spans_per_component=0, keep_instants=False)
    stage_stats: Dict[Tuple[str, str], StageStat] = {}
    checkpoint_summaries: List[Dict[str, Any]] = []
    started = 0
    finished = 0
    dropped = 0
    open_spans = 0

    def begin(self, component: str, name: str, parent: Any = None,
              track: int = 0, **attrs: Any) -> _NullSpan:
        """Return the shared null span (no allocation)."""
        return NULL_SPAN

    def end(self, span: Any, **attrs: Any) -> _NullSpan:
        """Do nothing."""
        return NULL_SPAN

    def instant(self, component: str, name: str, track: int = 0,
                **attrs: Any) -> None:
        """Do nothing."""
        return None

    def components(self) -> List[str]:
        """No components."""
        return []

    def spans(self, component: Optional[str] = None) -> List[Span]:
        """No spans."""
        return []

    def validate(self) -> List[str]:
        """Nothing to violate."""
        return []


NULL_TRACER = NullTracer()
"""The shared disabled tracer every :class:`Simulator` starts with."""
