"""Figure 9 — tail query latency.

Check-In versus baseline and ISC-C at the 99.9th and 99.99th percentiles,
for uniform and Zipfian request distributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.analysis.compare import reduction_pct
from repro.analysis.tables import format_table
from repro.experiments import expectations
from repro.experiments.base import QUICK, ExperimentScale, paper_config
from repro.system.system import run_config

TAIL_MODES = ("baseline", "isc_c", "checkin")


@dataclass
class Fig9Result:
    """Percentile latencies per (distribution, config), microseconds."""

    p999_us: Dict[Tuple[str, str], float] = field(default_factory=dict)
    p9999_us: Dict[Tuple[str, str], float] = field(default_factory=dict)

    def table(self) -> str:
        """Render the figure's rows as an ASCII table."""
        rows: List[List] = []
        for (distribution, mode), p999 in sorted(self.p999_us.items()):
            rows.append([distribution, mode, p999,
                         self.p9999_us[(distribution, mode)]])
        return format_table(["distribution", "config", "p99.9_us", "p99.99_us"],
                            rows, title="Figure 9: tail latency")

    def p999_reduction_vs_baseline(self, distribution: str) -> float:
        """Check-In's p99.9 reduction vs the baseline (%)."""
        return reduction_pct(self.p999_us[(distribution, "baseline")],
                             self.p999_us[(distribution, "checkin")])

    def p9999_reduction_vs_iscc(self, distribution: str) -> float:
        """Check-In's p99.99 reduction vs ISC-C (%)."""
        return reduction_pct(self.p9999_us[(distribution, "isc_c")],
                             self.p9999_us[(distribution, "checkin")])

    def comparison_table(self) -> str:
        """Paper-vs-measured reductions, side by side."""
        rows = [
            ["p99.9 vs baseline (uniform)",
             expectations.FIG9_P999_VS_BASELINE_UNIFORM_PCT,
             self.p999_reduction_vs_baseline("uniform")],
            ["p99.9 vs baseline (zipfian)",
             expectations.FIG9_P999_VS_BASELINE_ZIPFIAN_PCT,
             self.p999_reduction_vs_baseline("zipfian")],
            ["p99.99 vs isc_c (uniform)",
             expectations.FIG9_P9999_VS_ISCC_UNIFORM_PCT,
             self.p9999_reduction_vs_iscc("uniform")],
            ["p99.99 vs isc_c (zipfian)",
             expectations.FIG9_P9999_VS_ISCC_ZIPFIAN_PCT,
             self.p9999_reduction_vs_iscc("zipfian")],
        ]
        return format_table(["Check-In tail reduction", "paper_%", "measured_%"],
                            rows)


def run_fig9(scale: ExperimentScale = QUICK) -> Fig9Result:
    """Tail-latency comparison on a moderately utilised device.

    Uses a wider device (8 channels) at 16 threads so the steady-state
    tail is not already flash-saturated — the checkpoint burst is then
    what the percentiles see, as in the paper.
    """
    result = Fig9Result()
    for distribution in ("uniform", "zipfian"):
        for mode in TAIL_MODES:
            config = paper_config(
                mode, scale,
                distribution=distribution,
                threads=16,
                channels=8,
                total_queries=scale.scaled_queries(1.25),
            )
            metrics = run_config(config).metrics
            tails = metrics.latency_all.p(99.9, 99.99)  # one sort
            result.p999_us[(distribution, mode)] = tails[99.9] / 1e3
            result.p9999_us[(distribution, mode)] = tails[99.99] / 1e3
    return result
