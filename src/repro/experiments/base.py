"""Shared scaffolding for the per-figure experiment modules.

Every experiment runs :class:`~repro.system.config.SystemConfig` instances
derived from one *paper-scale* preset via :func:`paper_config`, at a
chosen :class:`ExperimentScale`.  ``QUICK`` keeps the whole benchmark
suite in minutes; ``FULL`` runs several times longer for tighter numbers.

Scaling stance (see DESIGN.md §2): the device, interval and query volumes
are uniformly scaled from the paper's testbed; flash latencies are
realistic, so ratios and orderings are the meaningful output.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Sequence

from repro.common.units import MIB, MS
from repro.system.config import SystemConfig
from repro.system.system import RunResult, run_config

ALL_MODES = ("baseline", "isc_a", "isc_b", "isc_c", "checkin")
HEADLINE_MODES = ("baseline", "isc_c", "checkin")


@dataclass(frozen=True)
class ExperimentScale:
    """Volume knobs shared by every experiment."""

    name: str = "quick"
    queries: int = 16_000
    keys: int = 4_096
    threads: int = 32
    interval_ns: int = 60 * MS
    quota_bytes: int = 16 * MIB
    thread_sweep: Sequence[int] = (4, 16, 64, 128)

    def scaled_queries(self, factor: float) -> int:
        """Query budget scaled by ``factor`` (at least 1000)."""
        return max(1_000, int(self.queries * factor))


QUICK = ExperimentScale()
FULL = ExperimentScale(name="full", queries=48_000, keys=8_192)


def paper_config(mode: str, scale: ExperimentScale = QUICK,
                 **overrides) -> SystemConfig:
    """The experiment-default configuration for one evaluated system."""
    base = SystemConfig(
        mode=mode,
        threads=scale.threads,
        num_keys=scale.keys,
        total_queries=scale.queries,
        checkpoint_interval_ns=scale.interval_ns,
        checkpoint_journal_quota=scale.quota_bytes,
        journal_area_bytes=48 * MIB,
        verify_reads=False,
    )
    return replace(base, **overrides) if overrides else base


def run_modes(modes: Iterable[str],
              make_config: Callable[[str], SystemConfig]
              ) -> Dict[str, RunResult]:
    """Run one config per mode; returns results keyed by mode."""
    return {mode: run_config(make_config(mode)) for mode in modes}


def sweep(values: Iterable, make_config: Callable) -> List[RunResult]:
    """Run one config per sweep value, in order."""
    return [run_config(make_config(value)) for value in values]
