"""Table I — the simulated machine configuration.

Renders the resolved configuration of this reproduction in the paper's
three groups (DBMS, host system, storage), so every run's parameters are
documented the way Table I documents the authors' setup.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.common.units import format_bytes, format_time
from repro.experiments.base import QUICK, ExperimentScale, paper_config
from repro.system.config import DEFAULT_MAPPING_UNITS, SystemConfig


def render_table1(config: SystemConfig = None) -> str:
    """The Table-I analog for one configuration (defaults to paper scale)."""
    if config is None:
        config = paper_config("checkin", QUICK)
    geometry = config.geometry()
    timing = config.timing()
    rows = [
        ["DBMS", "Record size", config.size_spec],
        ["DBMS", "Checkpoint interval",
         format_time(config.checkpoint_interval_ns) +
         f" (or {format_bytes(config.checkpoint_journal_quota)} of logs)"],
        ["DBMS", "Key population", str(config.num_keys)],
        ["DBMS", "Total query count", str(config.total_queries)],
        ["DBMS", "Workload / distribution",
         f"YCSB {config.workload} / {config.distribution}"],
        ["Host", "Client threads", str(config.threads)],
        ["Host", "Group commit window", format_time(config.group_commit_ns)],
        ["Host", "Engine block cache", f"{config.mem_cache_records} records"],
        ["Host", "PCIe", f"{config.pcie_bandwidth / 1e9:.1f} GB/s, "
         f"queue depth {config.queue_depth}"],
        ["Storage", "Embedded processors", str(config.ssd_cpu_cores)],
        ["Storage", "Data cache",
         f"{config.read_cache_units} units read / "
         f"{format_bytes(config.write_buffer_bytes)} staging"],
        ["Storage", "Mapping unit",
         " / ".join(f"{mode}:{unit}" for mode, unit in
                    sorted(DEFAULT_MAPPING_UNITS.items()))],
        ["Storage", "Flash topology",
         f"{geometry.channels} ch x {geometry.packages_per_channel} pkg x "
         f"{geometry.dies_per_package} die x {geometry.planes_per_die} plane, "
         f"{geometry.blocks_per_plane} blk x {geometry.pages_per_block} pg x "
         f"{format_bytes(geometry.page_size)}"],
        ["Storage", "Raw capacity", format_bytes(geometry.capacity_bytes)],
        ["Storage", "Flash timing",
         f"read {format_time(timing.read_ns)}, program "
         f"{format_time(timing.program_ns)}, erase "
         f"{format_time(timing.erase_ns)}"],
        ["Storage", "Channel bandwidth",
         f"{timing.channel_bandwidth / 1e6:.0f} MB/s"],
        ["Storage", "Endurance", f"{config.max_pe_cycles} P/E cycles"],
    ]
    return format_table(["group", "parameter", "value"], rows,
                        title="Table I: simulated machine configuration "
                              "(scaled; see DESIGN.md)")


def run_table1(scale: ExperimentScale = QUICK) -> str:
    """Registry entry point: render the configuration table."""
    return render_table1(paper_config("checkin", scale))
