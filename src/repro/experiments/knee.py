"""Latency-vs-offered-load knee curves per checkpoint mode.

The paper's closed-loop YCSB threads self-throttle: past saturation the
clients simply slow down, so "baseline collapses under checkpoint storms"
never shows up as a number.  The knee experiment re-validates Check-In's
headline under *open-loop* load (JASS showed checkpoint overhead is
highly sensitive to offered load):

1. calibrate each mode's closed-loop throughput under an aggressive
   checkpoint cadence (the storm regime where modes differ most) — the
   search anchor;
2. probe offered-load points with open-loop Poisson arrivals behind a
   bounded front door, each point exposed for the same fixed simulated
   span so every point sees the same number of checkpoint cycles;
3. a point is *sustained* when client-visible p99 (measured from the
   arrival instant, queueing included) stays under one fixed SLO and
   the shed rate stays under 1%;
4. the knee — the highest sustained offered load — is located by
   doubling until a point fails, then bisecting the bracket.

``sustainable_ops(mode)`` is the located knee; the acceptance claim is
``sustainable_ops("checkin") > sustainable_ops("baseline")`` —
in-storage checkpointing moves the knee right.  :func:`bench_knee_probe`
distills the same search into the single gated ``knee_sustainable_ops``
bench metric.

Everything runs in simulated time, so results are seed-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.units import KIB, MIB, MS, SEC
from repro.engine.admission import AdmissionConfig
from repro.experiments.base import QUICK, ExperimentScale, paper_config
from repro.system.config import SystemConfig
from repro.system.system import run_config
from repro.workload.arrivals import ArrivalSpec

KNEE_MODES = ("baseline", "checkin")

SLO_P99_US = 10_000.0
"""Fixed client-visible p99 SLO (10 ms, measured from the arrival
instant).  Absolute rather than relative: flash latencies are absolute
in the simulator, so one SLO is comparable across scales and modes —
roughly two checkpoint intervals' worth of queueing."""

SHED_SLO = 0.01
"""A sustained point may shed at most 1% of offered load."""

POINT_SPAN_NS = 80 * MS
"""Simulated exposure per offered-load point: every point sees the same
~16 checkpoint-trigger cycles, so short runs can't hide a storm."""

BISECT_ROUNDS = 3
"""Bracket-halving rounds after the doubling phase (12.5% resolution)."""


def knee_config(mode: str, scale: ExperimentScale,
                **overrides) -> SystemConfig:
    """The storm-regime config the knee is measured under.

    Aggressive checkpoint cadence (small interval and quota against a
    small journal) keeps checkpoints continuously in the picture, and
    queries take the checkpoint lock — the freeze-consistency semantics
    under which checkpoint stalls are fully client-visible.  This is the
    regime where the paper's modes diverge hardest: the host-level
    journal round-trip freezes the front door for the whole checkpoint,
    while the in-storage remap keeps the freeze window tiny.
    """
    params = dict(
        total_queries=scale.scaled_queries(0.25),
        threads=max(8, scale.threads // 2),
        checkpoint_interval_ns=5 * MS,
        checkpoint_journal_quota=256 * KIB,
        journal_area_bytes=8 * MIB,
        lock_queries_during_checkpoint=True)
    params.update(overrides)
    return paper_config(mode, scale, **params)


@dataclass
class KneePoint:
    """One (mode, offered-load) measurement."""

    offered_qps: float
    submitted: int
    completed: int
    shed: int
    p99_us: float
    goodput_qps: float
    checkpoints: int

    @property
    def shed_rate(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0

    def met(self, slo_p99_us: float) -> bool:
        """Did this offered load stay inside the SLO envelope?"""
        return self.p99_us <= slo_p99_us and self.shed_rate <= SHED_SLO


@dataclass
class KneeResult:
    """The full knee search across checkpoint modes."""

    scale: str
    modes: Tuple[str, ...]
    capacity_qps: Dict[str, float]
    """Closed-loop calibrated throughput per mode (the search anchor)."""

    slo_p99_us: float
    """The fixed p99 SLO every mode is held to."""

    points: Dict[str, List[KneePoint]] = field(default_factory=dict)
    """Every probed point per mode, sorted by offered load — the curve."""

    knee_qps: Dict[str, float] = field(default_factory=dict)
    """The located knee (highest sustained offered load) per mode."""

    def sustainable_ops(self, mode: str) -> float:
        """Highest offered load the mode sustained inside the SLO."""
        return self.knee_qps[mode]

    def checkin_beats_baseline(self) -> bool:
        """The headline: in-storage checkpointing moves the knee right."""
        return self.sustainable_ops("checkin") > \
            self.sustainable_ops("baseline")

    def knee_gain(self) -> float:
        """checkin's sustainable load as a multiple of baseline's."""
        base = self.sustainable_ops("baseline")
        return self.sustainable_ops("checkin") / base if base \
            else float("inf")

    def table(self) -> str:
        lines = [f"knee search ({self.scale} scale, "
                 f"SLO p99 <= {self.slo_p99_us:.0f} us, "
                 f"shed <= {SHED_SLO:.0%})",
                 f"{'mode':>10} {'offered/s':>10} {'p99 us':>9} "
                 f"{'shed %':>7} {'goodput/s':>10} {'ckpts':>5} "
                 f"{'in SLO':>6}"]
        for mode in self.modes:
            for point in sorted(self.points[mode],
                                key=lambda p: p.offered_qps):
                lines.append(
                    f"{mode:>10} {point.offered_qps:>10.0f} "
                    f"{point.p99_us:>9.1f} {point.shed_rate:>6.1%} "
                    f"{point.goodput_qps:>10.0f} {point.checkpoints:>5} "
                    f"{'yes' if point.met(self.slo_p99_us) else 'NO':>6}")
            lines.append(f"{mode:>10} sustainable: "
                         f"{self.sustainable_ops(mode):.0f} ops/s")
        lines.append(f"knee gain (checkin / baseline): "
                     f"{self.knee_gain():.2f}x")
        return "\n".join(lines)


def _probe_point(mode: str, scale: ExperimentScale, offered: float,
                 threads: int) -> KneePoint:
    """Run one offered-load point in open loop and summarise it."""
    queries = max(1_000, int(offered * POINT_SPAN_NS / SEC))
    config = knee_config(
        mode, scale,
        total_queries=queries,
        arrivals=ArrivalSpec(rate_ops_per_sec=offered),
        admission=AdmissionConfig(policy="queue", max_inflight=threads,
                                  max_waiting=4 * threads))
    result = run_config(config)
    report = result.admission
    summary = result.metrics.summary()
    return KneePoint(
        offered_qps=offered,
        submitted=report.submitted,
        completed=report.completed,
        shed=report.shed_total,
        p99_us=summary["latency_p99_us"],
        goodput_qps=summary["throughput_qps"],
        checkpoints=result.checkpoint_count)


def _find_knee(mode: str, scale: ExperimentScale, anchor_qps: float,
               slo_p99_us: float, threads: int
               ) -> Tuple[float, List[KneePoint]]:
    """Locate the knee by doubling to a failing bracket, then bisecting."""
    probed: List[KneePoint] = []
    cache: Dict[float, KneePoint] = {}

    def sustained(offered: float) -> bool:
        # The walkdown and doubling phases can land on the same load;
        # the sweep is deterministic, so re-running it is pure waste.
        point = cache.get(offered)
        if point is None:
            point = _probe_point(mode, scale, offered, threads)
            cache[offered] = point
            probed.append(point)
        return point.met(slo_p99_us)

    lo = max(1_000.0, 0.5 * anchor_qps)
    # The anchor should be comfortably sustainable; if the closed-loop
    # estimate was optimistic, walk down until a point holds.
    for _ in range(3):
        if sustained(lo):
            break
        lo *= 0.5
    else:
        return 0.0, probed
    hi = lo
    for _ in range(4):
        hi *= 2.0
        if not sustained(hi):
            break
    else:
        # Never failed inside the doubling budget: report the last
        # sustained load rather than pretending the search converged.
        return hi, probed
    for _ in range(BISECT_ROUNDS):
        mid = (lo + hi) / 2.0
        if sustained(mid):
            lo = mid
        else:
            hi = mid
    return lo, probed


def run_knee(scale: ExperimentScale = QUICK,
             modes: Tuple[str, ...] = KNEE_MODES,
             slo_p99_us: float = SLO_P99_US) -> KneeResult:
    """Calibrate per-mode anchors, then bisect each mode's knee."""
    threads = max(8, scale.threads // 2)
    capacity: Dict[str, float] = {}
    for mode in modes:
        calibration = run_config(knee_config(mode, scale))
        capacity[mode] = calibration.metrics.summary()["throughput_qps"]
    points: Dict[str, List[KneePoint]] = {}
    knees: Dict[str, float] = {}
    for mode in modes:
        knee, probed = _find_knee(mode, scale, capacity[mode],
                                  slo_p99_us, threads)
        knees[mode] = knee
        points[mode] = probed
    return KneeResult(scale=scale.name, modes=modes,
                      capacity_qps=capacity, slo_p99_us=slo_p99_us,
                      points=points, knee_qps=knees)


KNEE_PROBE_SCALE = ExperimentScale(name="knee-probe", queries=10_000,
                                   keys=1_024, threads=8,
                                   thread_sweep=(8,))
"""Compact scale for the bench-artifact probe and tier-1 tests: small
enough to ride along every ``repro bench`` invocation, large enough that
the knee separation is stable across seeds."""


def bench_knee_probe(modes: Tuple[str, ...] = KNEE_MODES) -> float:
    """The gated ``knee_sustainable_ops`` bench metric.

    Returns checkin's sustainable offered load (ops/s) from a compact
    two-mode knee search — the number the paper's headline rides on.
    Fully deterministic (simulated time), so ``benchmarks/regress.py``
    can hold it to a tolerance band.
    """
    result = run_knee(scale=KNEE_PROBE_SCALE, modes=modes)
    return result.sustainable_ops("checkin")
