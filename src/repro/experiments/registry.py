"""Experiment registry: one entry per paper table/figure.

``run_experiment("fig8a")`` executes the experiment at the requested scale
and returns its result object (every result has a ``table()`` renderer;
``table1`` returns the rendered string directly).
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.experiments.base import QUICK, ExperimentScale
from repro.experiments.fig3 import run_fig3a, run_fig3b, run_fig3c
from repro.experiments.fig8 import run_fig8a, run_fig8b
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10
from repro.experiments.fig11 import run_fig11
from repro.experiments.fig12 import run_fig12
from repro.experiments.fig13 import run_fig13a, run_fig13b
from repro.experiments.interference import run_burst_storm, run_interference
from repro.experiments.knee import run_knee
from repro.experiments.recovery_matrix import run_recovery_matrix
from repro.experiments.table1 import run_table1

EXPERIMENT_ALIASES: Dict[str, str] = {
    "fig3": "fig3a",
    "fig8": "fig8a",
    "fig13": "fig13a",
}
"""Paper-figure shorthands: the bare figure number maps to its (a) panel."""

EXPERIMENTS: Dict[str, Callable[[ExperimentScale], Any]] = {
    "fig3a": run_fig3a,
    "fig3b": run_fig3b,
    "fig3c": run_fig3c,
    "fig8a": run_fig8a,
    "fig8b": run_fig8b,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
    "fig13a": run_fig13a,
    "fig13b": run_fig13b,
    "table1": run_table1,
    "interference": run_interference,
    "knee": run_knee,
    "burst_storm": run_burst_storm,
    "recovery_matrix": run_recovery_matrix,
}
"""Every reproducible table/figure, keyed by its paper id."""


def resolve_experiment_id(experiment_id: str) -> str:
    """Map an alias (e.g. ``fig8``) to its canonical id (``fig8a``)."""
    return EXPERIMENT_ALIASES.get(experiment_id, experiment_id)


def run_experiment(experiment_id: str,
                   scale: ExperimentScale = QUICK) -> Any:
    """Run one registered experiment (aliases accepted)."""
    experiment_id = resolve_experiment_id(experiment_id)
    try:
        runner = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(EXPERIMENTS)}") from None
    return runner(scale)
