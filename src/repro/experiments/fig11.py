"""Figure 11 — overall query throughput and latency.

Workloads A, F and WO (all write-heavy, Zipfian requests), swept over the
thread count for every configuration.  The paper's headline: +8.1 %
average throughput and -10.2 % average latency for Check-In over the
baseline at 128 threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.compare import improvement_pct, reduction_pct
from repro.analysis.tables import format_table
from repro.experiments import expectations
from repro.experiments.base import ALL_MODES, QUICK, ExperimentScale, paper_config
from repro.system.system import run_config

Key = Tuple[str, str, int]  # (workload, mode, threads)


@dataclass
class Fig11Result:
    """Throughput (qps) and mean latency (us) per (workload, mode, threads)."""

    workloads: List[str] = field(default_factory=list)
    threads: List[int] = field(default_factory=list)
    throughput_qps: Dict[Key, float] = field(default_factory=dict)
    latency_us: Dict[Key, float] = field(default_factory=dict)

    def table(self) -> str:
        """Both panels of the figure."""
        return self.throughput_table() + "\n\n" + self.latency_table()

    def throughput_table(self) -> str:
        """Render the throughput panel."""
        rows = []
        for workload in self.workloads:
            for thread_count in self.threads:
                rows.append([workload, thread_count] + [
                    self.throughput_qps[(workload, mode, thread_count)]
                    for mode in ALL_MODES])
        return format_table(["workload", "threads"] + list(ALL_MODES), rows,
                            float_format=".0f",
                            title="Figure 11(a): throughput (qps)")

    def latency_table(self) -> str:
        """Render the latency panel."""
        rows = []
        for workload in self.workloads:
            for thread_count in self.threads:
                rows.append([workload, thread_count] + [
                    self.latency_us[(workload, mode, thread_count)]
                    for mode in ALL_MODES])
        return format_table(["workload", "threads"] + list(ALL_MODES), rows,
                            float_format=".1f",
                            title="Figure 11(b): mean latency (us)")

    def _mean_over_workloads(self, data: Dict[Key, float], mode: str,
                             threads: int) -> float:
        values = [data[(w, mode, threads)] for w in self.workloads]
        return sum(values) / len(values)

    def throughput_gain_pct(self, threads: int = None) -> float:
        """Check-In over baseline, averaged across workloads."""
        threads = threads if threads is not None else self.threads[-1]
        return improvement_pct(
            self._mean_over_workloads(self.throughput_qps, "baseline", threads),
            self._mean_over_workloads(self.throughput_qps, "checkin", threads))

    def latency_reduction_pct(self, threads: int = None) -> float:
        """Check-In's mean-latency reduction vs baseline (%)."""
        threads = threads if threads is not None else self.threads[-1]
        return reduction_pct(
            self._mean_over_workloads(self.latency_us, "baseline", threads),
            self._mean_over_workloads(self.latency_us, "checkin", threads))

    def comparison_table(self) -> str:
        """Paper-vs-measured headline numbers."""
        rows = [
            ["throughput gain @max threads",
             expectations.FIG11_THROUGHPUT_GAIN_PCT,
             self.throughput_gain_pct()],
            ["latency reduction @max threads",
             expectations.FIG11_LATENCY_REDUCTION_PCT,
             self.latency_reduction_pct()],
        ]
        return format_table(["Check-In vs baseline", "paper_%", "measured_%"],
                            rows)


def run_fig11(scale: ExperimentScale = QUICK,
              workloads: Sequence[str] = ("A", "F", "WO"),
              thread_sweep: Sequence[int] = None) -> Fig11Result:
    """Full throughput/latency sweep over workloads, threads and configs."""
    threads_list = list(thread_sweep if thread_sweep is not None
                        else scale.thread_sweep)
    result = Fig11Result(workloads=list(workloads), threads=threads_list)
    for workload in workloads:
        for mode in ALL_MODES:
            for threads in threads_list:
                # Scale the budget with the thread count so every run
                # spans several checkpoint intervals; otherwise the
                # high-thread points finish before a single checkpoint
                # fires and only measure the final-checkpoint tail.
                queries = scale.scaled_queries(
                    0.75 * max(1.0, threads / 16.0))
                config = paper_config(
                    mode, scale,
                    workload=workload,
                    distribution="zipfian",
                    threads=threads,
                    total_queries=queries,
                )
                metrics = run_config(config).metrics
                key = (workload, mode, threads)
                result.throughput_qps[key] = metrics.throughput_qps()
                result.latency_us[key] = metrics.latency_all.mean() / 1e3
    return result
