"""The paper's reported numbers, one constant per claim.

Used by benchmarks and EXPERIMENTS.md generation to print side-by-side
paper-vs-measured comparisons.  All values are taken verbatim from the
text of the ISCA 2020 paper.
"""

# --- Figure 3(a): motivation — amplification under the baseline -----------
FIG3A_IO_AMP_UNIFORM = 2.98
FIG3A_IO_AMP_ZIPFIAN = 1.91
FIG3A_FLASH_AMP_UNIFORM = 7.9
FIG3A_FLASH_AMP_ZIPFIAN = 4.7

# --- Figure 3(b): latest-version ratio, uniform vs zipfian at 128 threads --
FIG3B_LATEST_RATIO_FACTOR = 5.02

# --- Figure 3(c): latency during checkpointing vs average ------------------
FIG3C_READ_SLOWDOWN = 4.0
FIG3C_WRITE_SLOWDOWN = 21.0

# --- Figure 8(a): redundant writes --------------------------------------
FIG8A_CHECKIN_VS_BASELINE_PCT = 94.3
FIG8A_CHECKIN_VS_ISCC_PCT = 45.6

# --- Figure 8(b) + Equation (1): GC and lifetime --------------------------
FIG8B_GC_VS_BASELINE_PCT = 74.1
FIG8B_GC_VS_ISCC_PCT = 44.8
EQ1_LIFETIME_VS_BASELINE = 3.86
EQ1_LIFETIME_VS_ISCC = 1.81

# --- Figure 9: tail latency ------------------------------------------------
FIG9_P999_VS_BASELINE_UNIFORM_PCT = 92.1
FIG9_P999_VS_BASELINE_ZIPFIAN_PCT = 92.4
FIG9_P9999_VS_ISCC_UNIFORM_PCT = 51.3
FIG9_P9999_VS_ISCC_ZIPFIAN_PCT = 50.8

# --- Figure 11: overall throughput / latency ------------------------------
FIG11_THROUGHPUT_GAIN_PCT = 8.1
FIG11_LATENCY_REDUCTION_PCT = 10.2

# --- Figure 13(b): space overhead ------------------------------------------
FIG13B_SPACE_OVERHEAD_AT_4096_PCT = 3.0
