"""Per-figure experiment harness (one module per paper table/figure)."""

from repro.experiments.base import (
    ALL_MODES,
    FULL,
    HEADLINE_MODES,
    QUICK,
    ExperimentScale,
    paper_config,
    run_modes,
    sweep,
)

__all__ = [
    "ALL_MODES",
    "FULL",
    "HEADLINE_MODES",
    "QUICK",
    "ExperimentScale",
    "paper_config",
    "run_modes",
    "sweep",
]
